//! # localavg — node and edge averaged complexities of local graph problems
//!
//! Facade crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of Balliu, Ghaffari, Kuhn, Olivetti, *Node and Edge Averaged
//! Complexities of Local Graph Problems* (PODC 2022, arXiv:2208.08213).
//!
//! The workspace layers, bottom to top:
//!
//! * [`graph`] ([`localavg_graph`]) — graph substrate: structures,
//!   generators, lifts, line/power graphs, analysis and validators.
//! * [`sim`] ([`localavg_sim`]) — the synchronous LOCAL/CONGEST round
//!   engine with per-node/per-edge commit-time tracking (Definition 1).
//! * [`core`] ([`localavg_core`]) — every algorithm in the paper: Luby and
//!   degree-guided MIS, the randomized (2,2)-ruling set of Theorem 2, the
//!   deterministic ruling sets of Theorem 3, randomized (Theorem 4) and
//!   deterministic (Theorem 5) maximal matching, deterministic
//!   (Theorem 6) and randomized sinkless orientation, coloring
//!   subroutines, plus the averaged-complexity metrics of Definition 1 and
//!   Appendix A — all reachable through the unified
//!   [`core::algo::Algorithm`] trait and the string-keyed
//!   [`core::algo::registry`].
//! * [`lowerbound`] ([`localavg_lowerbound`]) — the KMW-style lower-bound
//!   machinery of §4: cluster-tree skeletons, base graphs, random lifts,
//!   the view-isomorphism Algorithm 1, and the doubled matching
//!   construction.
//!
//! # Quickstart
//!
//! ```
//! use localavg::graph::{gen, rng::Rng};
//! use localavg::core::algo::{registry, RunSpec};
//!
//! let mut rng = Rng::seed_from(7);
//! let g = gen::random_regular(64, 4, &mut rng).expect("regular graph");
//! let run = registry()
//!     .get("mis/luby")
//!     .expect("registered")
//!     .execute(&g, &RunSpec::new(123));
//! run.verify(&g).expect("valid MIS");
//! assert!(run.worst_case() < 64);
//! // Constant-degree graphs: Luby decides most nodes in O(1) rounds.
//! assert!(run.report(&g).node_averaged < 16.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use localavg_core as core;
pub use localavg_graph as graph;
pub use localavg_lowerbound as lowerbound;
pub use localavg_sim as sim;
