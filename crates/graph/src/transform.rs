//! Structural graph transforms.
//!
//! * [`line_graph`] — the paper (§1.1) reduces maximal matching to MIS on
//!   the line graph: the edge-averaged complexity of maximal matching on
//!   `G` equals the node-averaged complexity of MIS on `L(G)`.
//! * [`power_graph`] — `G^k` connects nodes at distance `<= k`; Theorem 6
//!   clusters via an MIS of `G^{2r+1}`.
//! * [`induced_subgraph`] — restriction to a node subset (used when the
//!   algorithms "remove decided nodes and recurse", e.g. Theorem 2).
//! * [`disjoint_union`] — parallel composition of instances.

use crate::analysis::{bfs_distances, UNREACHED};
use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};

/// The line graph `L(G)`: one node per edge of `G`; two nodes adjacent iff
/// the corresponding edges of `G` share an endpoint.
///
/// Node `e` of `L(G)` corresponds to edge id `e` of `G`.
///
/// # Example
///
/// ```
/// use localavg_graph::{gen, transform};
/// let g = gen::star(4);            // 3 edges through the center
/// let l = transform::line_graph(&g);
/// assert_eq!(l.n(), 3);
/// assert_eq!(l.m(), 3);            // K_3: all edges share the center
/// ```
pub fn line_graph(g: &Graph) -> Graph {
    let mut lg = GraphBuilder::new(g.m());
    for v in g.nodes() {
        let inc = g.neighbors(v);
        for i in 0..inc.len() {
            for j in (i + 1)..inc.len() {
                let (e1, e2) = (inc[i].1, inc[j].1);
                // Each pair of incident edges shares exactly one endpoint
                // (simple graph), so this pair is visited exactly once.
                lg.add_edge(e1, e2).expect("line graph edge");
            }
        }
    }
    lg.build()
}

/// The `k`-th power `G^k`: nodes of `G`, edges between distinct nodes at
/// distance `1..=k` in `G`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn power_graph(g: &Graph, k: usize) -> Graph {
    assert!(k >= 1, "power_graph requires k >= 1");
    let mut pg = GraphBuilder::new(g.n());
    for v in g.nodes() {
        let dist = bfs_distances(g, v, k);
        for u in g.nodes() {
            if u > v && dist[u] != UNREACHED && dist[u] <= k {
                pg.add_edge(v, u).expect("power graph edge");
            }
        }
    }
    pg.build()
}

/// Induced subgraph on `keep` (indicator per node).
///
/// Returns the subgraph together with the mapping from new node ids to
/// original node ids (`new_to_old`) and from original edge ids to new edge
/// ids where retained.
pub fn induced_subgraph(g: &Graph, keep: &[bool]) -> (Graph, Vec<NodeId>, Vec<Option<EdgeId>>) {
    debug_assert_eq!(keep.len(), g.n());
    let mut old_to_new = vec![usize::MAX; g.n()];
    let mut new_to_old = Vec::new();
    for v in g.nodes() {
        if keep[v] {
            old_to_new[v] = new_to_old.len();
            new_to_old.push(v);
        }
    }
    let mut sub = GraphBuilder::new(new_to_old.len());
    let mut edge_map = vec![None; g.m()];
    for (e, u, v) in g.edges() {
        if keep[u] && keep[v] {
            let ne = sub
                .add_edge(old_to_new[u], old_to_new[v])
                .expect("induced edge");
            edge_map[e] = Some(ne);
        }
    }
    (sub.build(), new_to_old, edge_map)
}

/// Disjoint union `G ⊔ H`; the nodes of `h` are shifted by `g.n()` and the
/// edges of `h` by `g.m()`.
pub fn disjoint_union(g: &Graph, h: &Graph) -> Graph {
    let mut u = GraphBuilder::with_edge_capacity(g.n() + h.n(), g.m() + h.m());
    for (_, a, b) in g.edges() {
        u.add_edge(a, b).expect("union edge");
    }
    for (_, a, b) in h.edges() {
        u.add_edge(g.n() + a, g.n() + b).expect("union edge");
    }
    u.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::gen;

    #[test]
    fn line_graph_of_path() {
        let g = gen::path(5); // 4 edges in a path -> L is a path on 4 nodes
        let l = line_graph(&g);
        assert_eq!(l.n(), 4);
        assert_eq!(l.m(), 3);
        assert!(analysis::is_forest(&l));
        assert!(analysis::is_connected(&l));
    }

    #[test]
    fn line_graph_of_cycle_is_cycle() {
        let g = gen::cycle(6);
        let l = line_graph(&g);
        assert_eq!(l.n(), 6);
        assert_eq!(l.m(), 6);
        assert!(l.degrees().all(|d| d == 2));
    }

    #[test]
    fn line_graph_edge_count_formula() {
        // |E(L(G))| = sum_v C(deg v, 2)
        let g = gen::complete_bipartite(3, 4);
        let l = line_graph(&g);
        let expect: usize = g.degrees().map(|d| d * (d - 1) / 2).sum();
        assert_eq!(l.m(), expect);
    }

    #[test]
    fn power_of_path() {
        let g = gen::path(6);
        let p2 = power_graph(&g, 2);
        assert_eq!(p2.m(), 5 + 4); // distance-1 and distance-2 pairs
        assert!(p2.has_edge(0, 2));
        assert!(!p2.has_edge(0, 3));
        let p_big = power_graph(&g, 10);
        assert_eq!(p_big.m(), 6 * 5 / 2); // complete
    }

    #[test]
    fn power_one_is_identity_shape() {
        let g = gen::petersen();
        let p1 = power_graph(&g, 1);
        assert_eq!(p1.m(), g.m());
        for (_, u, v) in g.edges() {
            assert!(p1.has_edge(u, v));
        }
    }

    #[test]
    fn induced_subgraph_maps() {
        let g = gen::cycle(5);
        let keep = vec![true, true, false, true, true];
        let (sub, new_to_old, edge_map) = induced_subgraph(&g, &keep);
        assert_eq!(sub.n(), 4);
        assert_eq!(new_to_old, vec![0, 1, 3, 4]);
        // Surviving edges: {0,1}, {3,4}, {4,0}.
        assert_eq!(sub.m(), 3);
        let kept = edge_map.iter().filter(|e| e.is_some()).count();
        assert_eq!(kept, 3);
    }

    #[test]
    fn induced_subgraph_empty_keep() {
        let g = gen::complete(4);
        let (sub, map, _) = induced_subgraph(&g, &[false; 4]);
        assert_eq!(sub.n(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn union_counts() {
        let g = gen::path(3);
        let h = gen::cycle(4);
        let u = disjoint_union(&g, &h);
        assert_eq!(u.n(), 7);
        assert_eq!(u.m(), 2 + 4);
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(2, 3));
        let (_, c) = analysis::components(&u);
        assert_eq!(c, 2);
    }
}
