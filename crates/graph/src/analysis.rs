//! Graph analysis: traversal, structure tests, and output validators.
//!
//! Two groups of functionality live here:
//!
//! 1. **Structural probes** the lower-bound machinery needs — girth,
//!    "tree-like view" tests (`G_k(v)` is a tree, the precondition of the
//!    paper's Theorem 11), short-cycle membership (Lemma 12 / Corollary 15
//!    statistics), and independence numbers (Lemma 13 audits).
//! 2. **Validators** for every output object produced by the paper's
//!    algorithms: independent sets and their maximality, (α,β)-ruling sets,
//!    matchings and their maximality, sinkless orientations, and proper
//!    colorings. The test-suite and the experiment harness re-validate
//!    every algorithm run with these.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// Marker for "unreached" in distance arrays.
pub const UNREACHED: usize = usize::MAX;

/// BFS distances from `source`, exploring only up to `radius` hops
/// (`usize::MAX` for unbounded). Unreached nodes get [`UNREACHED`].
pub fn bfs_distances(g: &Graph, source: NodeId, radius: usize) -> Vec<usize> {
    let mut dist = vec![UNREACHED; g.n()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        if dist[v] >= radius {
            continue;
        }
        for &(u, _) in g.neighbors(v) {
            if dist[u] == UNREACHED {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected components; returns `(component id per node, #components)`.
pub fn components(g: &Graph) -> (Vec<usize>, usize) {
    let mut comp = vec![UNREACHED; g.n()];
    let mut next = 0;
    for s in g.nodes() {
        if comp[s] != UNREACHED {
            continue;
        }
        comp[s] = next;
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &(u, _) in g.neighbors(v) {
                if comp[u] == UNREACHED {
                    comp[u] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || components(g).1 == 1
}

/// Whether the graph is acyclic.
pub fn is_forest(g: &Graph) -> bool {
    let (_, c) = components(g);
    g.m() + c == g.n()
}

/// Exact girth (length of the shortest cycle), or `None` for forests.
///
/// Runs a BFS from every node — O(n·m) — which is fine at the scales the
/// experiments use; for a cheap upper-bounded probe use
/// [`shortest_cycle_through`] on sampled nodes.
pub fn girth(g: &Graph) -> Option<usize> {
    let mut best: Option<usize> = None;
    for s in g.nodes() {
        if let Some(c) = shortest_cycle_through(g, s, best.map_or(usize::MAX, |b| b - 1)) {
            best = Some(best.map_or(c, |b| b.min(c)));
            if best == Some(3) {
                return best;
            }
        }
    }
    best
}

/// Length of the shortest cycle through `v` of length `<= cap`, if any.
///
/// Standard BFS argument: a non-tree edge `{x, y}` with
/// `dist(x) + dist(y) + 1 <= cap` where `x`'s and `y`'s BFS branches leave
/// `v` through different first hops closes a cycle through `v`. The value
/// returned is the exact shortest-cycle-through-`v` length whenever that
/// length is `<= cap`.
pub fn shortest_cycle_through(g: &Graph, v: NodeId, cap: usize) -> Option<usize> {
    if cap < 3 {
        return None;
    }
    let mut dist = vec![UNREACHED; g.n()];
    // First hop out of v on the BFS tree path ("branch"); v gets itself.
    let mut branch = vec![UNREACHED; g.n()];
    let mut parent_edge: Vec<EdgeId> = vec![EdgeId::MAX; g.n()];
    dist[v] = 0;
    branch[v] = v;
    let mut queue = VecDeque::from([v]);
    let mut best = usize::MAX;
    let limit = cap.saturating_add(1);
    while let Some(x) = queue.pop_front() {
        if 2 * dist[x] >= best || 2 * dist[x] >= limit {
            continue;
        }
        for &(y, e) in g.neighbors(x) {
            if e == parent_edge[x] {
                continue;
            }
            if dist[y] == UNREACHED {
                dist[y] = dist[x] + 1;
                branch[y] = if x == v { y } else { branch[x] };
                parent_edge[y] = e;
                queue.push_back(y);
            } else if branch[x] != branch[y] || (x == v || y == v) {
                // Non-tree edge joining two different branches: cycle through v.
                let len = dist[x] + dist[y] + 1;
                if len <= cap {
                    best = best.min(len);
                }
            }
        }
    }
    (best != usize::MAX).then_some(best)
}

/// Whether the paper's radius-`k` view `G_k(v)` is a tree.
///
/// `G_k(v)` is the subgraph induced by nodes at distance `<= k` from `v`,
/// *excluding* edges between two nodes both at distance exactly `k`
/// (paper §C.1). Theorem 11's indistinguishability applies to nodes whose
/// views are trees; Corollary 15 bounds the probability that they are not.
pub fn view_is_tree(g: &Graph, v: NodeId, k: usize) -> bool {
    let dist = bfs_distances(g, v, k);
    let nodes = g.nodes().filter(|&x| dist[x] != UNREACHED).count();
    let mut edges = 0usize;
    for (_, x, y) in g.edges() {
        if dist[x] != UNREACHED && dist[y] != UNREACHED && !(dist[x] == k && dist[y] == k) {
            edges += 1;
        }
    }
    // The view is connected by construction (every node has a BFS path to v),
    // so tree ⇔ |E| = |V| - 1.
    edges == nodes.saturating_sub(1)
}

/// Fraction of nodes whose radius-`k` view is a tree (Corollary 15 probe).
pub fn tree_like_fraction(g: &Graph, k: usize) -> f64 {
    if g.n() == 0 {
        return 1.0;
    }
    let cnt = g.nodes().filter(|&v| view_is_tree(g, v, k)).count();
    cnt as f64 / g.n() as f64
}

/// Exact independence number by branch and bound.
///
/// Exponential time; intended for the small gadget graphs of the
/// lower-bound audits (Lemma 13 checks individual cliques/clusters).
///
/// # Panics
///
/// Panics if `g.n() > 64` — use [`greedy_independent_set`] at larger sizes.
pub fn independence_number_exact(g: &Graph) -> usize {
    assert!(
        g.n() <= 64,
        "independence_number_exact is exponential; n={} too large",
        g.n()
    );
    let n = g.n();
    let mut adj_mask = vec![0u64; n];
    for (_, u, v) in g.edges() {
        adj_mask[u] |= 1 << v;
        adj_mask[v] |= 1 << u;
    }
    fn solve(alive: u64, adj: &[u64]) -> usize {
        if alive == 0 {
            return 0;
        }
        // Pick the alive vertex of maximum alive-degree as pivot.
        let mut pivot = usize::MAX;
        let mut pivot_deg = 0;
        let mut bits = alive;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let deg = (adj[v] & alive).count_ones() as usize;
            if pivot == usize::MAX || deg > pivot_deg {
                pivot = v;
                pivot_deg = deg;
            }
        }
        if pivot_deg <= 1 {
            // Alive graph is a disjoint union of edges and isolated vertices:
            // take one endpoint per edge plus all isolated vertices.
            let mut count = 0;
            let mut rem = alive;
            while rem != 0 {
                let v = rem.trailing_zeros() as usize;
                rem &= !(1u64 << v);
                let nb = adj[v] & rem;
                rem &= !nb;
                count += 1;
            }
            return count;
        }
        // Branch: either exclude pivot, or include it (dropping N[pivot]).
        let without = solve(alive & !(1u64 << pivot), adj);
        let with = 1 + solve(alive & !(1u64 << pivot) & !adj[pivot], adj);
        without.max(with)
    }
    let alive = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    solve(alive, &adj_mask)
}

/// Greedy independent set by ascending degree; returns the set (a lower
/// bound witness for the independence number).
pub fn greedy_independent_set(g: &Graph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| g.degree(v));
    let mut blocked = vec![false; g.n()];
    let mut set = Vec::new();
    for v in order {
        if !blocked[v] {
            set.push(v);
            for &(u, _) in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    set
}

// ---------------------------------------------------------------------------
// Structural topology metrics (per-instance sweep statistics)
// ---------------------------------------------------------------------------

/// Per-instance structural metrics emitted with every sweep group so runs
/// can correlate topology with averaged complexity (ROADMAP item 5, in
/// the spirit of the brainGraph-style efficiency metrics: the shape of
/// the degree distribution is what separates a heavy-tailed instance
/// from a regular one long before any algorithm runs on it).
///
/// Every float field is always finite: empty-set means are 0.0, and the
/// assortativity of a graph whose degrees have no variance (regular
/// graphs — the correlation is undefined there) is reported as 0.0 by
/// convention.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Smallest degree (0 on the empty graph).
    pub min_degree: usize,
    /// Largest degree (0 on the empty graph).
    pub max_degree: usize,
    /// Mean degree `2m/n` (0.0 on the empty graph).
    pub mean_degree: f64,
    /// Log2-bucketed degree histogram: bucket 0 counts isolated nodes,
    /// bucket `b >= 1` counts degrees in `[2^(b-1), 2^b)`; the counts sum
    /// to `nodes`.
    pub degree_histogram: Vec<u64>,
    /// Degree-degree Pearson correlation over the edges (assortativity):
    /// positive when high-degree nodes attach to high-degree nodes,
    /// negative for hub-and-spoke topologies (a star is exactly -1), and
    /// 0.0 by convention when the correlation is undefined (no edges, or
    /// zero degree variance across edge endpoints).
    pub degree_assortativity: f64,
    /// Number of connected components.
    pub components: usize,
}

/// Computes [`TopologyStats`] for one instance in O(n + m).
pub fn topology_stats(g: &Graph) -> TopologyStats {
    let n = g.n();
    let m = g.m();
    let degrees: Vec<usize> = g.degrees().collect();
    let min_degree = degrees.iter().copied().min().unwrap_or(0);
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let mean_degree = if n == 0 {
        0.0
    } else {
        2.0 * m as f64 / n as f64
    };
    let bucket = |d: usize| -> usize {
        if d == 0 {
            0
        } else {
            usize::BITS as usize - d.leading_zeros() as usize
        }
    };
    let mut degree_histogram = vec![0u64; if n == 0 { 0 } else { bucket(max_degree) + 1 }];
    for &d in &degrees {
        degree_histogram[bucket(d)] += 1;
    }
    // Pearson correlation over the symmetrized endpoint-degree pairs
    // {(deg u, deg v), (deg v, deg u)}: both marginals coincide, so one
    // mean and one variance suffice. Integer accumulation keeps the
    // moments exact until the final divisions.
    let degree_assortativity = if m == 0 {
        0.0
    } else {
        let (mut s1, mut s2, mut sp) = (0u128, 0u128, 0u128);
        for (_, u, v) in g.edges() {
            let (du, dv) = (degrees[u] as u128, degrees[v] as u128);
            s1 += du + dv;
            s2 += du * du + dv * dv;
            sp += 2 * du * dv;
        }
        let k = (2 * m) as f64;
        let mean = s1 as f64 / k;
        let var = s2 as f64 / k - mean * mean;
        if var <= 0.0 {
            0.0 // zero variance: regular-ish endpoints, correlation undefined
        } else {
            (sp as f64 / k - mean * mean) / var
        }
    };
    TopologyStats {
        nodes: n,
        edges: m,
        min_degree,
        max_degree,
        mean_degree,
        degree_histogram,
        degree_assortativity,
        components: components(g).1,
    }
}

// ---------------------------------------------------------------------------
// Validators
// ---------------------------------------------------------------------------

/// Whether `in_set` (indicator per node) is an independent set.
pub fn is_independent_set(g: &Graph, in_set: &[bool]) -> bool {
    debug_assert_eq!(in_set.len(), g.n());
    g.edges().all(|(_, u, v)| !(in_set[u] && in_set[v]))
}

/// Whether `in_set` is a *maximal* independent set.
pub fn is_maximal_independent_set(g: &Graph, in_set: &[bool]) -> bool {
    is_independent_set(g, in_set)
        && g.nodes()
            .all(|v| in_set[v] || g.neighbor_ids(v).any(|u| in_set[u]))
}

/// Whether `in_set` is an (α, β)-ruling set (paper §1.1, \[AGLP89\]):
/// members are pairwise at distance `>= alpha`, and every node is within
/// distance `<= beta` of a member.
///
/// # Panics
///
/// Panics if `alpha == 0`.
pub fn is_ruling_set(g: &Graph, in_set: &[bool], alpha: usize, beta: usize) -> bool {
    assert!(alpha >= 1, "alpha must be positive");
    debug_assert_eq!(in_set.len(), g.n());
    // Multi-source BFS from the set measures distance-to-set for every node.
    let mut dist = vec![UNREACHED; g.n()];
    let mut queue = VecDeque::new();
    for v in g.nodes() {
        if in_set[v] {
            dist[v] = 0;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if dist[u] == UNREACHED {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    if g.nodes().any(|v| dist[v] == UNREACHED || dist[v] > beta) {
        return false;
    }
    // Pairwise distance >= alpha: BFS to depth alpha-1 from each member must
    // meet no other member.
    for v in g.nodes().filter(|&v| in_set[v]) {
        let local = bfs_distances(g, v, alpha - 1);
        for u in g.nodes() {
            if u != v && in_set[u] && local[u] != UNREACHED {
                return false;
            }
        }
    }
    true
}

/// Whether `in_matching` (indicator per edge) is a matching.
pub fn is_matching(g: &Graph, in_matching: &[bool]) -> bool {
    debug_assert_eq!(in_matching.len(), g.m());
    let mut used = vec![false; g.n()];
    for (e, u, v) in g.edges() {
        if in_matching[e] {
            if used[u] || used[v] {
                return false;
            }
            used[u] = true;
            used[v] = true;
        }
    }
    true
}

/// Whether `in_matching` is a *maximal* matching.
pub fn is_maximal_matching(g: &Graph, in_matching: &[bool]) -> bool {
    debug_assert_eq!(in_matching.len(), g.m());
    let mut used = vec![false; g.n()];
    for (e, u, v) in g.edges() {
        if in_matching[e] {
            if used[u] || used[v] {
                return false;
            }
            used[u] = true;
            used[v] = true;
        }
    }
    g.edges().all(|(_, u, v)| used[u] || used[v])
}

/// Orientation of an edge, named from the canonical endpoint order
/// (`endpoints(e) = (u, v)` with `u < v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Oriented from the smaller endpoint to the larger (`u -> v`).
    Forward,
    /// Oriented from the larger endpoint to the smaller (`v -> u`).
    Backward,
}

impl Orientation {
    /// The head (target node) of edge `e` under this orientation.
    pub fn head(self, g: &Graph, e: EdgeId) -> NodeId {
        let (u, v) = g.endpoints(e);
        match self {
            Orientation::Forward => v,
            Orientation::Backward => u,
        }
    }

    /// The tail (source node) of edge `e` under this orientation.
    pub fn tail(self, g: &Graph, e: EdgeId) -> NodeId {
        let (u, v) = g.endpoints(e);
        match self {
            Orientation::Forward => u,
            Orientation::Backward => v,
        }
    }

    /// Orientation that makes `from` the tail of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `e`.
    pub fn away_from(g: &Graph, e: EdgeId, from: NodeId) -> Self {
        let (u, v) = g.endpoints(e);
        if from == u {
            Orientation::Forward
        } else {
            assert_eq!(from, v, "node {from} is not an endpoint of edge {e}");
            Orientation::Backward
        }
    }
}

/// Out-degree of every node under a full orientation.
pub fn out_degrees(g: &Graph, orientation: &[Orientation]) -> Vec<usize> {
    debug_assert_eq!(orientation.len(), g.m());
    let mut out = vec![0usize; g.n()];
    for (e, _, _) in g.edges() {
        out[orientation[e].tail(g, e)] += 1;
    }
    out
}

/// Whether `orientation` is a *sinkless* orientation: every node with at
/// least one incident edge has out-degree `>= 1` (paper §3.3; isolated
/// nodes are vacuously fine).
pub fn is_sinkless_orientation(g: &Graph, orientation: &[Orientation]) -> bool {
    out_degrees(g, orientation)
        .iter()
        .enumerate()
        .all(|(v, &d)| d >= 1 || g.degree(v) == 0)
}

/// Whether `colors` is a proper coloring (no monochromatic edge).
pub fn is_proper_coloring(g: &Graph, colors: &[usize]) -> bool {
    debug_assert_eq!(colors.len(), g.n());
    g.edges().all(|(_, u, v)| colors[u] != colors[v])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::rng::Rng;

    #[test]
    fn bfs_on_path() {
        let g = gen::path(5);
        let d = bfs_distances(&g, 0, usize::MAX);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let capped = bfs_distances(&g, 0, 2);
        assert_eq!(capped, vec![0, 1, 2, UNREACHED, UNREACHED]);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = gen::path(3);
        assert!(is_connected(&g));
        g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let (comp, c) = components(&g);
        assert_eq!(c, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn forest_detection() {
        assert!(is_forest(&gen::path(6)));
        assert!(is_forest(&gen::binary_tree(10)));
        assert!(!is_forest(&gen::cycle(4)));
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&gen::cycle(7)), Some(7));
        assert_eq!(girth(&gen::complete(4)), Some(3));
        assert_eq!(girth(&gen::path(9)), None);
        assert_eq!(girth(&gen::complete_bipartite(3, 3)), Some(4));
        assert_eq!(girth(&gen::hypercube(3)), Some(4));
        assert_eq!(girth(&gen::petersen()), Some(5));
    }

    #[test]
    fn shortest_cycle_through_node() {
        // Triangle with a pendant path: node 3 is not on any cycle.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap();
        assert_eq!(shortest_cycle_through(&g, 0, usize::MAX), Some(3));
        assert_eq!(shortest_cycle_through(&g, 3, usize::MAX), None);
        assert_eq!(shortest_cycle_through(&g, 0, 2), None); // cap below girth
    }

    #[test]
    fn view_tree_test() {
        let g = gen::cycle(8);
        // Radius 3 view of C_8 sees 7 nodes, 6 edges (the two far edges are
        // between distance-3/distance-4... here dist max 3 on both sides and
        // the closing edge joins two distance-3... wait n=8: distances go to 4).
        assert!(view_is_tree(&g, 0, 3));
        assert!(!view_is_tree(&g, 0, 4));
        let t = gen::binary_tree(15);
        for k in 0..5 {
            assert!(view_is_tree(&t, 0, k));
        }
    }

    #[test]
    fn tree_like_fraction_cycle() {
        let g = gen::cycle(10);
        assert_eq!(tree_like_fraction(&g, 4), 1.0);
        assert_eq!(tree_like_fraction(&g, 5), 0.0);
    }

    #[test]
    fn independence_exact_small() {
        assert_eq!(independence_number_exact(&gen::complete(5)), 1);
        assert_eq!(independence_number_exact(&gen::cycle(5)), 2);
        assert_eq!(independence_number_exact(&gen::cycle(6)), 3);
        assert_eq!(independence_number_exact(&gen::path(7)), 4);
        assert_eq!(independence_number_exact(&gen::complete_bipartite(3, 5)), 5);
        assert_eq!(independence_number_exact(&gen::petersen()), 4);
        assert_eq!(independence_number_exact(&Graph::empty(6)), 6);
    }

    #[test]
    fn greedy_independent_is_independent_and_maximal() {
        let mut rng = Rng::seed_from(9);
        let g = gen::gnp(60, 0.1, &mut rng);
        let set = greedy_independent_set(&g);
        let mut ind = vec![false; g.n()];
        for v in set {
            ind[v] = true;
        }
        assert!(is_maximal_independent_set(&g, &ind));
    }

    #[test]
    fn mis_validator() {
        let g = gen::path(4); // 0-1-2-3
        let mis = vec![true, false, false, false];
        assert!(is_independent_set(&g, &mis));
        assert!(!is_maximal_independent_set(&g, &mis)); // nodes 2, 3 uncovered
        let mis3 = vec![false, true, false, true];
        assert!(is_maximal_independent_set(&g, &mis3));
        let not_ind = vec![true, true, false, false];
        assert!(!is_independent_set(&g, &not_ind));
    }

    #[test]
    fn mis_validator_edge_case_cover() {
        let g = gen::path(4);
        // {0,3}: 1 covered by 0, 2 covered by 3 -> maximal.
        let m = vec![true, false, false, true];
        assert!(is_maximal_independent_set(&g, &m));
    }

    #[test]
    fn ruling_set_validator() {
        let g = gen::path(7);
        // {0, 3, 6} is an MIS -> (2,1)-ruling set.
        let s: Vec<bool> = (0..7).map(|v| v % 3 == 0).collect();
        assert!(is_ruling_set(&g, &s, 2, 1));
        // {0, 6} is a (2,3)-ruling set but not (2,2).
        let s2: Vec<bool> = (0..7).map(|v| v == 0 || v == 6).collect();
        assert!(is_ruling_set(&g, &s2, 2, 3));
        assert!(!is_ruling_set(&g, &s2, 2, 2));
        // Adjacent members violate alpha = 2.
        let s3: Vec<bool> = (0..7).map(|v| v <= 1).collect();
        assert!(!is_ruling_set(&g, &s3, 2, 6));
        // ... but satisfy alpha = 1.
        assert!(is_ruling_set(&g, &s3, 1, 6));
        // Empty set never rules a nonempty graph.
        let s4 = vec![false; 7];
        assert!(!is_ruling_set(&g, &s4, 2, 100));
    }

    #[test]
    fn matching_validator() {
        let g = gen::path(4); // edges 0:{0,1} 1:{1,2} 2:{2,3}
        assert!(is_matching(&g, &[true, false, true]));
        assert!(is_maximal_matching(&g, &[true, false, true]));
        assert!(!is_matching(&g, &[true, true, false]));
        assert!(is_matching(&g, &[false, true, false]));
        assert!(is_maximal_matching(&g, &[false, true, false]));
        assert!(!is_maximal_matching(&g, &[false, false, false]));
    }

    #[test]
    fn orientation_validator() {
        let g = gen::cycle(4);
        // Orient every edge "around" the cycle: each node out-degree 1.
        let orient: Vec<Orientation> = g
            .edges()
            .map(|(e, u, _)| {
                // edges of cycle(4): (0,1),(1,2),(2,3),(0,3). Send u->v except last.
                if e == 3 {
                    Orientation::Backward // 3 -> 0
                } else {
                    let _ = u;
                    Orientation::Forward
                }
            })
            .collect();
        assert!(is_sinkless_orientation(&g, &orient));
        assert_eq!(out_degrees(&g, &orient), vec![1, 1, 1, 1]);
        // Both of node 2's edges oriented into node 2: it becomes a sink.
        // Edges: 0:{0,1} 1:{1,2} 2:{2,3} 3:{0,3}.
        let bad = vec![
            Orientation::Forward,  // 0 -> 1
            Orientation::Forward,  // 1 -> 2
            Orientation::Backward, // 3 -> 2
            Orientation::Forward,  // 0 -> 3
        ];
        assert!(!is_sinkless_orientation(&g, &bad));
        assert_eq!(out_degrees(&g, &bad)[2], 0);
    }

    #[test]
    fn orientation_helpers() {
        let g = gen::path(2);
        let e = 0;
        assert_eq!(Orientation::Forward.tail(&g, e), 0);
        assert_eq!(Orientation::Forward.head(&g, e), 1);
        assert_eq!(Orientation::Backward.tail(&g, e), 1);
        assert_eq!(Orientation::away_from(&g, e, 1), Orientation::Backward);
        assert_eq!(Orientation::away_from(&g, e, 0), Orientation::Forward);
    }

    #[test]
    fn coloring_validator() {
        let g = gen::cycle(4);
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1]));
        assert!(!is_proper_coloring(&g, &[0, 1, 1, 0]));
    }

    #[test]
    fn isolated_nodes_are_not_sinks() {
        let g = Graph::empty(3);
        assert!(is_sinkless_orientation(&g, &[]));
    }

    #[test]
    fn topology_stats_on_a_regular_graph() {
        let g = gen::cycle(8);
        let t = topology_stats(&g);
        assert_eq!(t.nodes, 8);
        assert_eq!(t.edges, 8);
        assert_eq!((t.min_degree, t.max_degree), (2, 2));
        assert_eq!(t.mean_degree, 2.0);
        // Degree 2 lands in bucket 2; all 8 nodes there.
        assert_eq!(t.degree_histogram, vec![0, 0, 8]);
        // Zero degree variance: assortativity is 0.0 by convention, not NaN.
        assert_eq!(t.degree_assortativity, 0.0);
        assert_eq!(t.components, 1);
    }

    #[test]
    fn topology_stats_star_is_maximally_disassortative() {
        let g = gen::star(9); // hub degree 8, eight leaves of degree 1
        let t = topology_stats(&g);
        assert_eq!((t.min_degree, t.max_degree), (1, 8));
        assert!((t.degree_assortativity - (-1.0)).abs() < 1e-12);
        assert_eq!(t.degree_histogram.iter().sum::<u64>(), 9);
        assert_eq!(t.degree_histogram[4], 1); // the hub: 8 is in [8, 16)
    }

    #[test]
    fn topology_stats_edge_cases_stay_finite() {
        let empty = topology_stats(&Graph::empty(0));
        assert_eq!(empty.nodes, 0);
        assert_eq!(empty.mean_degree, 0.0);
        assert_eq!(empty.degree_assortativity, 0.0);
        assert!(empty.degree_histogram.is_empty());
        assert_eq!(empty.components, 0);
        let isolated = topology_stats(&Graph::empty(4));
        assert_eq!(isolated.mean_degree, 0.0);
        assert_eq!(isolated.degree_histogram, vec![4]);
        assert_eq!(isolated.components, 4);
        assert!(isolated.degree_assortativity.is_finite());
        let two_comp = topology_stats(&Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap());
        assert_eq!(two_comp.components, 3);
        assert_eq!(two_comp.degree_assortativity, 0.0); // all endpoint degrees equal
    }

    #[test]
    fn topology_assortativity_sign_tracks_structure() {
        // A path's interior creates mixed pairs: deg-1 ends attach to
        // deg-2 nodes -> negative correlation.
        let t = topology_stats(&gen::path(10));
        assert!(t.degree_assortativity < 0.0);
        assert!(t.degree_assortativity >= -1.0 - 1e-12);
        // Complete graph: regular, so 0.0 by the variance convention.
        assert_eq!(topology_stats(&gen::complete(5)).degree_assortativity, 0.0);
    }
}
