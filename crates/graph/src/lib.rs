//! Graph substrate for the `localavg` workspace.
//!
//! This crate provides everything the LOCAL-model simulator and the paper's
//! algorithms need from a graph library:
//!
//! * [`Graph`] — a compact undirected simple graph with stable *edge
//!   identifiers* and per-node *port numbering* (the LOCAL model addresses
//!   neighbors through ports).
//! * [`gen`] — deterministic and randomized graph generators (paths, cycles,
//!   trees, d-regular graphs, G(n,p), bipartite/biregular graphs, grids,
//!   hypercubes, ...), all driven by the reproducible [`rng::Rng`].
//! * [`transform`] — structural transforms used throughout the paper: the
//!   *line graph* (maximal matching = MIS on the line graph, §1.1), the
//!   *power graph* `G^k` (clustering in Theorem 6), induced subgraphs and
//!   disjoint unions.
//! * [`lift`] — random lifts of order `q` in the sense of Amit–Linial–Matoušek
//!   \[ALM02\], the key tool of the paper's §4.5 (Lemma 12).
//! * [`decomp`] — deterministic rake-and-compress decompositions of trees
//!   and forests (the substrate of the `*/tree-rc` node-averaged
//!   algorithms), with typed rejection of non-tree inputs.
//! * [`analysis`] — BFS, connectivity, girth, tree-like view tests
//!   (`G_k(v)` in the paper's notation), independence numbers, and validators
//!   for every output object the paper's algorithms produce (independent
//!   sets, ruling sets, matchings, sinkless orientations, colorings).
//! * [`rng`] — a self-contained, cross-platform-stable pseudorandom number
//!   generator (SplitMix64-seeded xoshiro256++) so that every simulation in
//!   the workspace is bit-reproducible from a single master seed.
//! * [`dot`] — Graphviz DOT export for figures (used to regenerate Figure 1).
//!
//! # Example
//!
//! ```
//! use localavg_graph::{Graph, gen, rng::Rng};
//!
//! let mut rng = Rng::seed_from(42);
//! let g = gen::random_regular(100, 4, &mut rng).expect("4-regular graph");
//! assert_eq!(g.n(), 100);
//! assert!(g.degrees().all(|d| d == 4));
//! let path = gen::path(5);
//! assert_eq!(path.m(), 4);
//! # let _ = Graph::empty(0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod decomp;
pub mod dot;
pub mod gen;
pub mod graph;
pub mod io;
pub mod lift;
pub mod rng;
pub mod suggest;
pub mod transform;

pub use graph::{EdgeId, Graph, GraphBuilder, GraphError, NodeId};
