//! Graphviz DOT export.
//!
//! Used by the experiment harness to regenerate Figure 1 (the cluster-tree
//! skeletons `CT_0`, `CT_1`, `CT_2`) and to eyeball small gadget graphs.

use crate::graph::{EdgeId, Graph, NodeId};
use std::fmt::Write as _;

/// Renders `g` as an undirected Graphviz DOT document.
///
/// `node_label` and `edge_label` provide per-element labels; return an
/// empty string to omit the label.
///
/// # Example
///
/// ```
/// use localavg_graph::{gen, dot};
/// let g = gen::path(3);
/// let s = dot::to_dot(&g, |v| format!("n{v}"), |_e| String::new());
/// assert!(s.starts_with("graph"));
/// assert!(s.contains("0 -- 1"));
/// ```
pub fn to_dot(
    g: &Graph,
    node_label: impl Fn(NodeId) -> String,
    edge_label: impl Fn(EdgeId) -> String,
) -> String {
    let mut out = String::new();
    out.push_str("graph G {\n");
    for v in g.nodes() {
        let label = node_label(v);
        if label.is_empty() {
            let _ = writeln!(out, "  {v};");
        } else {
            let _ = writeln!(out, "  {v} [label=\"{label}\"];");
        }
    }
    for (e, u, v) in g.edges() {
        let label = edge_label(e);
        if label.is_empty() {
            let _ = writeln!(out, "  {u} -- {v};");
        } else {
            let _ = writeln!(out, "  {u} -- {v} [label=\"{label}\"];");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders `g` with default labels (node ids, no edge labels).
pub fn to_dot_plain(g: &Graph) -> String {
    to_dot(g, |_| String::new(), |_| String::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dot_contains_all_edges() {
        let g = gen::cycle(4);
        let s = to_dot_plain(&g);
        for (_, u, v) in g.edges() {
            assert!(s.contains(&format!("{u} -- {v}")));
        }
        assert!(s.starts_with("graph G {"));
        assert!(s.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_labels() {
        let g = gen::path(2);
        let s = to_dot(&g, |v| format!("node{v}"), |e| format!("edge{e}"));
        assert!(s.contains("label=\"node0\""));
        assert!(s.contains("label=\"edge0\""));
    }
}
