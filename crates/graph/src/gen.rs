//! Graph generators.
//!
//! The experiments sweep over the standard families used in the paper's
//! statements and proofs: bounded-degree graphs (cycles, d-regular graphs,
//! grids), trees (Theorem 16's tree lower bound), Erdős–Rényi graphs, and
//! bipartite/biregular gadgets (the cluster-tree constructions of §4.6 wire
//! groups of nodes with complete bipartite graphs `K_{a,b}` and perfect
//! matchings).
//!
//! All randomized generators take the workspace [`Rng`] so results are
//! reproducible from a master seed.

use crate::graph::{Graph, GraphBuilder, GraphError, NodeId};
use crate::rng::Rng;

/// Path `P_n` on `n` nodes (`n-1` edges).
///
/// # Example
///
/// ```
/// let g = localavg_graph::gen::path(4);
/// assert_eq!(g.m(), 3);
/// ```
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(v - 1, v).expect("path edges are valid");
    }
    b.build()
}

/// Cycle `C_n` on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3` (a 2-cycle would be a multi-edge).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3, got {n}");
    let mut b = GraphBuilder::with_edge_capacity(n, n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("path edges are valid");
    }
    b.add_edge(n - 1, 0).expect("closing edge is valid");
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("complete edges are valid");
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`; the first `a` nodes form one side.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::with_edge_capacity(a + b, a * b);
    for u in 0..a {
        for v in 0..b {
            builder
                .add_edge(u, a + v)
                .expect("bipartite edges are valid");
        }
    }
    builder.build()
}

/// Star `K_{1,n-1}` with node 0 at the center.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star requires at least one node");
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    for v in 1..n {
        b.add_edge(0, v).expect("star edges are valid");
    }
    b.build()
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("grid edge");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("grid edge");
            }
        }
    }
    b.build()
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::with_edge_capacity(n, n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u).expect("hypercube edge");
            }
        }
    }
    b.build()
}

/// Complete binary tree with `n` nodes (heap indexing: children of `v` are
/// `2v+1`, `2v+2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(v, (v - 1) / 2).expect("tree edge");
    }
    b.build()
}

/// Caterpillar: a path of `spine` nodes, each with `legs` pendant leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..spine {
        b.add_edge(v - 1, v).expect("spine edge");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l).expect("leg edge");
        }
    }
    b.build()
}

/// Spider `S(legs, len)`: `legs` disjoint paths of `len` nodes, all
/// attached to a central node 0 (`n = 1 + legs·len`).
///
/// A canonical hard shape for node-averaged measures on trees: the
/// center's completion is gated by every leg, while deep leg nodes look
/// locally like a path.
///
/// # Panics
///
/// Panics if `legs == 0` or `len == 0`.
pub fn spider(legs: usize, len: usize) -> Graph {
    assert!(legs >= 1 && len >= 1, "spider requires legs, len >= 1");
    let n = 1 + legs * len;
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    for l in 0..legs {
        let base = 1 + l * len;
        b.add_edge(0, base).expect("spider hub edge");
        for i in 1..len {
            b.add_edge(base + i - 1, base + i).expect("spider leg edge");
        }
    }
    b.build()
}

/// Random tree on `n` nodes with maximum degree `<= dmax`, by random
/// attachment: node `v` joins a uniformly random earlier node that still
/// has spare degree capacity.
///
/// Degree-bounded trees are exactly where the node-averaged landscape
/// papers place the interesting separations (bounded-degree trees admit
/// the full ω(1)…O(log n) spectrum), so the sweep needs them as a
/// first-class family.
///
/// # Panics
///
/// Panics if `n == 0` or `dmax < 2` (a path already needs degree 2).
pub fn bounded_random_tree(n: usize, dmax: usize, rng: &mut Rng) -> Graph {
    assert!(n >= 1, "bounded_random_tree requires at least one node");
    assert!(dmax >= 2, "dmax must be >= 2 (paths need degree 2)");
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    let mut degree = vec![0usize; n];
    // Nodes with degree < dmax, in no particular order (swap_remove keeps
    // selection O(1) and fully determined by the rng stream).
    let mut open: Vec<NodeId> = Vec::with_capacity(n);
    if n >= 1 {
        open.push(0);
    }
    for v in 1..n {
        let slot = rng.index(open.len());
        let parent = open[slot];
        b.add_edge(parent, v).expect("tree edge");
        degree[parent] += 1;
        degree[v] += 1;
        if degree[parent] == dmax {
            open.swap_remove(slot);
        }
        if degree[v] < dmax {
            open.push(v);
        }
    }
    b.build()
}

/// Uniformly random labelled tree on `n` nodes via Prüfer sequences.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, rng: &mut Rng) -> Graph {
    assert!(n >= 1, "random_tree requires at least one node");
    if n == 1 {
        return Graph::empty(1);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("valid 2-node tree");
    }
    let prufer: Vec<NodeId> = (0..n - 2).map(|_| rng.index(n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    // Min-heap over current leaves.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut leaves: BinaryHeap<Reverse<NodeId>> =
        (0..n).filter(|&v| degree[v] == 1).map(Reverse).collect();
    let mut builder = GraphBuilder::with_edge_capacity(n, n - 1);
    for &v in &prufer {
        let Reverse(leaf) = leaves.pop().expect("Prüfer decoding always has a leaf");
        builder.add_edge(leaf, v).expect("tree edge");
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(Reverse(v));
        }
    }
    let Reverse(a) = leaves.pop().expect("two leaves remain");
    let Reverse(b) = leaves.pop().expect("two leaves remain");
    builder.add_edge(a, b).expect("final tree edge");
    builder.build()
}

/// Erdős–Rényi graph `G(n, p)`: each pair is an edge independently with
/// probability `p`.
pub fn gnp(n: usize, p: f64, rng: &mut Rng) -> Graph {
    if p <= 0.0 {
        return Graph::empty(n);
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut b = GraphBuilder::new(n);
    // Geometric skipping (Batagelj–Brandes) for sparse p.
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: isize = -1;
    while v < n {
        let r = rng.f64_unit().max(f64::MIN_POSITIVE);
        w += 1 + (r.ln() / log_q).floor() as isize;
        while w >= v as isize && v < n {
            w -= v as isize;
            v += 1;
        }
        if v < n {
            b.add_edge(w as usize, v).expect("gnp edge");
        }
    }
    b.build()
}

/// Random `d`-regular graph on `n` nodes via the configuration model with
/// restarts (pairings with self-loops or multi-edges are rejected).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n * d` is odd or `d >= n`,
/// or if no simple pairing is found after many restarts (only plausible for
/// extreme parameters).
///
/// # Example
///
/// ```
/// use localavg_graph::{gen, rng::Rng};
/// let mut rng = Rng::seed_from(1);
/// let g = gen::random_regular(50, 3, &mut rng)?;
/// assert!(g.degrees().all(|d| d == 3));
/// # Ok::<(), localavg_graph::GraphError>(())
/// ```
pub fn random_regular(n: usize, d: usize, rng: &mut Rng) -> Result<Graph, GraphError> {
    if d == 0 {
        return Ok(Graph::empty(n));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!(
            "n*d must be even for a d-regular graph (n={n}, d={d})"
        )));
    }
    if d >= n {
        return Err(GraphError::InvalidParameters(format!(
            "degree d={d} must be < n={n}"
        )));
    }
    // Steger–Wormald pairing: repeatedly connect two random unmatched stubs
    // that form a legal edge; restart only when the remaining stubs are
    // (nearly) stuck. Far more robust than rejecting whole pairings.
    let stubs_template: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    const MAX_RESTARTS: usize = 200;
    'restart: for _ in 0..MAX_RESTARTS {
        let mut stubs = stubs_template.clone();
        let mut b = GraphBuilder::new(n);
        while stubs.len() >= 2 {
            let mut tries = 0usize;
            loop {
                let i = rng.index(stubs.len());
                let mut j = rng.index(stubs.len() - 1);
                if j >= i {
                    j += 1;
                }
                let (u, v) = (stubs[i], stubs[j]);
                if u != v && !b.contains(u, v) {
                    b.try_add(u, v);
                    let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                    stubs.swap_remove(hi);
                    stubs.swap_remove(lo);
                    break;
                }
                tries += 1;
                if tries > 100 + 20 * stubs.len() {
                    continue 'restart;
                }
            }
        }
        return Ok(b.build());
    }
    Err(GraphError::InvalidParameters(format!(
        "failed to sample a simple {d}-regular graph on {n} nodes after {MAX_RESTARTS} restarts"
    )))
}

/// Random bipartite `(d_a, d_b)`-biregular graph: `a` left nodes of degree
/// `d_a`, `b` right nodes of degree `d_b` (requires `a * d_a == b * d_b`).
///
/// Left nodes are `0..a`, right nodes are `a..a+b`. Used to realize the
/// cluster-tree edge constraints of §4.3 in tests and ablations.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if the degree equation fails,
/// if a side would need more distinct neighbors than exist, or if sampling
/// keeps producing multi-edges after many restarts.
pub fn random_biregular(
    a: usize,
    b: usize,
    d_a: usize,
    d_b: usize,
    rng: &mut Rng,
) -> Result<Graph, GraphError> {
    if a * d_a != b * d_b {
        return Err(GraphError::InvalidParameters(format!(
            "biregular requires a*d_a == b*d_b ({a}*{d_a} != {b}*{d_b})"
        )));
    }
    if d_a > b || d_b > a {
        return Err(GraphError::InvalidParameters(format!(
            "degrees too large for simple biregular graph (d_a={d_a} > b={b} or d_b={d_b} > a={a})"
        )));
    }
    if a == 0 {
        return Ok(Graph::empty(b));
    }
    let left_template: Vec<NodeId> = (0..a).flat_map(|v| std::iter::repeat_n(v, d_a)).collect();
    let right_template: Vec<NodeId> = (0..b)
        .flat_map(|v| std::iter::repeat_n(a + v, d_b))
        .collect();
    const MAX_RESTARTS: usize = 200;
    'restart: for _ in 0..MAX_RESTARTS {
        let mut left = left_template.clone();
        let mut right = right_template.clone();
        let mut builder = GraphBuilder::new(a + b);
        while !left.is_empty() {
            let mut tries = 0usize;
            loop {
                let i = rng.index(left.len());
                let j = rng.index(right.len());
                if builder.try_add(left[i], right[j]) {
                    left.swap_remove(i);
                    right.swap_remove(j);
                    break;
                }
                tries += 1;
                if tries > 100 + 20 * left.len() {
                    continue 'restart;
                }
            }
        }
        return Ok(builder.build());
    }
    Err(GraphError::InvalidParameters(format!(
        "failed to sample simple ({d_a},{d_b})-biregular graph after {MAX_RESTARTS} restarts"
    )))
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance `<= radius`.
///
/// Models the sensor-network deployments that motivate node-averaged
/// complexity as an energy measure (paper §1, \[CGP20\]).
pub fn random_geometric(n: usize, radius: f64, rng: &mut Rng) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.f64_unit(), rng.f64_unit())).collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(u, v).expect("rgg edge");
            }
        }
    }
    b.build()
}

/// Chung–Lu weight sequence for a power-law degree distribution with
/// exponent `beta`, scaled so the weights average `avg_degree`.
///
/// Node `v` gets weight proportional to `(v + 1)^(-1/(beta - 1))` — the
/// standard Chung–Lu parameterization whose expected degree sequence
/// follows a power law with exponent `beta`.
fn chung_lu_weights(n: usize, beta: f64, avg_degree: f64) -> Vec<f64> {
    assert!(beta > 2.0, "chung-lu exponent must be > 2, got {beta}");
    let exp = -1.0 / (beta - 1.0);
    let mut w: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(exp)).collect();
    let sum: f64 = w.iter().sum();
    if sum > 0.0 {
        let scale = avg_degree * n as f64 / sum;
        for x in &mut w {
            *x *= scale;
        }
    }
    w
}

/// Emits the Chung–Lu edge stream for `weights` into `edge`, consuming
/// `rng`. Each unordered pair `{u, v}` is an edge independently with
/// probability `min(1, w_u · w_v / Σw)`; pairs are visited once, so the
/// stream is duplicate-free by construction.
///
/// Uses the Miller–Hagberg skipping algorithm: weights are decreasing in
/// the node id, so for fixed `u` the acceptance probability only shrinks
/// as `v` grows and a geometric jump skips the expected run of rejected
/// candidates — O(n + m) expected work instead of O(n²).
fn chung_lu_emit(weights: &[f64], rng: &mut Rng, mut edge: impl FnMut(NodeId, NodeId)) {
    let n = weights.len();
    let s: f64 = weights.iter().sum();
    if s <= 0.0 {
        return;
    }
    for u in 0..n.saturating_sub(1) {
        let mut v = u + 1;
        let mut p = (weights[u] * weights[v] / s).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r = rng.f64_unit().max(f64::MIN_POSITIVE);
                // Geometric skip: number of consecutive rejections at
                // probability p. `as usize` saturates, and saturating_add
                // keeps the huge-skip case a clean loop exit.
                v = v.saturating_add((r.ln() / (1.0 - p).ln()) as usize);
            }
            if v < n {
                let q = (weights[u] * weights[v] / s).min(1.0);
                if q >= p || rng.f64_unit() < q / p {
                    edge(u, v);
                }
                p = q;
                v += 1;
            }
        }
    }
}

/// Chung–Lu power-law graph: `n` nodes whose expected degree sequence
/// follows a power law with exponent `beta` (> 2) and mean `avg_degree`.
///
/// The heavy-tailed regime of the paper's averaged-complexity story: a
/// few hub nodes of very high degree, a long tail of low-degree nodes.
/// Built through [`GraphBuilder::stream_edges`], so peak memory is ~1×
/// the final CSR even at 10⁷+ nodes.
pub fn powerlaw(n: usize, beta: f64, avg_degree: f64, rng: &mut Rng) -> Graph {
    let weights = chung_lu_weights(n, beta, avg_degree);
    let pass_seed = rng.next_u64();
    GraphBuilder::stream_edges(n, |sink| {
        let mut pass_rng = Rng::seed_from(pass_seed);
        chung_lu_emit(&weights, &mut pass_rng, |u, v| sink.edge(u, v));
    })
    .expect("chung-lu edges are valid and replay identically")
}

/// Barabási–Albert preferential attachment: starts from a complete graph
/// on `attach + 1` nodes, then every new node connects to `attach`
/// distinct existing nodes chosen with probability proportional to their
/// current degree (via the repeated-endpoints list).
///
/// Minimum degree is `attach` whenever `n > attach`; the oldest nodes
/// become hubs of degree Θ(√(n/i)) — the classic scale-free topology.
/// Built through [`GraphBuilder::stream_edges`].
///
/// # Panics
///
/// Panics if `attach == 0` or `n > u32::MAX as usize`.
pub fn pref_attach(n: usize, attach: usize, rng: &mut Rng) -> Graph {
    assert!(attach >= 1, "pref_attach requires attach >= 1");
    assert!(
        n <= u32::MAX as usize,
        "pref_attach node ids must fit in u32"
    );
    let pass_seed = rng.next_u64();
    GraphBuilder::stream_edges(n, |sink| {
        let mut pass_rng = Rng::seed_from(pass_seed);
        let n0 = n.min(attach + 1);
        let clique_edges = n0 * n0.saturating_sub(1) / 2;
        let mut reps: Vec<u32> = Vec::with_capacity(2 * (clique_edges + attach * (n - n0)));
        for u in 0..n0 {
            for v in (u + 1)..n0 {
                sink.edge(u, v);
                reps.push(u as u32);
                reps.push(v as u32);
            }
        }
        let mut targets: Vec<u32> = Vec::with_capacity(attach);
        for v in n0..n {
            targets.clear();
            while targets.len() < attach {
                let t = reps[pass_rng.index(reps.len())];
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for &t in &targets {
                sink.edge(t as usize, v);
                reps.push(t);
                reps.push(v as u32);
            }
        }
    })
    .expect("pref-attach edges are valid and replay identically")
}

/// R-MAT graph on `2^scale` nodes from `edges_target` recursive-quadrant
/// samples with the classic Graph500 split (a, b, c, d) =
/// (0.57, 0.19, 0.19, 0.05).
///
/// Self-loops are dropped and duplicate samples collapsed (sort + dedup),
/// so the realized edge count is somewhat below `edges_target` — the
/// usual R-MAT behaviour. Node ids are assigned by the bit-recursive
/// quadrant descent, which concentrates edges on low-id nodes.
///
/// # Panics
///
/// Panics if `scale > 31` (ids must fit in u32).
pub fn rmat(scale: u32, edges_target: usize, rng: &mut Rng) -> Graph {
    assert!(scale <= 31, "rmat scale must be <= 31, got {scale}");
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    let n = 1usize << scale;
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges_target);
    for _ in 0..edges_target {
        let mut u = 0u32;
        let mut v = 0u32;
        for bit in (0..scale).rev() {
            let r = rng.f64_unit();
            let (bu, bv) = if r < A {
                (0, 0)
            } else if r < A + B {
                (0, 1)
            } else if r < A + B + C {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= bu << bit;
            v |= bv << bit;
        }
        if u == v {
            continue;
        }
        pairs.push(if u < v { (u, v) } else { (v, u) });
    }
    pairs.sort_unstable();
    pairs.dedup();
    GraphBuilder::stream_edges(n, |sink| {
        for &(u, v) in &pairs {
            sink.edge(u as usize, v as usize);
        }
    })
    .expect("deduplicated rmat edges are valid")
}

/// The Petersen graph (3-regular, girth 5) — a handy fixed test instance
/// with minimum degree 3 for sinkless-orientation tests.
pub fn petersen() -> Graph {
    let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
    let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
    let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
    let edges: Vec<(NodeId, NodeId)> = outer
        .iter()
        .chain(spokes.iter())
        .chain(inner.iter())
        .copied()
        .collect();
    Graph::from_edges(10, &edges).expect("Petersen is simple")
}

// ---------------------------------------------------------------------------
// The string-keyed generator registry (DESIGN.md §6).
// ---------------------------------------------------------------------------

/// A named, seedable graph family — one entry of the generator
/// [`registry`].
///
/// Entries mirror the algorithm registry of `localavg-core`: sweep drivers
/// reference families through stable string keys (`"regular/3"`,
/// `"gnp/0.05"`, `"tree/random"`, …) instead of calling the typed
/// generator functions directly. Every family maps a *target size* `n` and
/// a seed to a concrete graph; families with structural size constraints
/// (regular parity, hypercube powers of two, near-square grids) round the
/// target to the nearest legal size deterministically, so the realized
/// node count is a pure function of `(key, n)`.
#[derive(Clone, Copy)]
pub struct NamedGenerator {
    name: &'static str,
    description: &'static str,
    min_degree_of: fn(usize) -> usize,
    build_fn: fn(usize, u64) -> Result<Graph, GraphError>,
    is_tree: bool,
}

impl NamedGenerator {
    /// Declares a named family. Public so downstream crates can
    /// contribute entries (the lower-bound hard instances of
    /// `localavg-lowerbound` cannot live here without a dependency
    /// cycle); compose them with [`GenRegistry::from_entries`]. Families
    /// whose every instance is a tree or forest additionally call
    /// [`NamedGenerator::tree`].
    pub fn new(
        name: &'static str,
        description: &'static str,
        min_degree_of: fn(usize) -> usize,
        build_fn: fn(usize, u64) -> Result<Graph, GraphError>,
    ) -> NamedGenerator {
        NamedGenerator {
            name,
            description,
            min_degree_of,
            build_fn,
            is_tree: false,
        }
    }

    /// Marks this family as guaranteed acyclic: every instance, at every
    /// size and seed, is a tree or forest. This is the static domain
    /// guarantee the sweep and fuzz drivers use to pair `*/tree-rc`
    /// algorithms only with inputs their [`crate::decomp`] layer accepts
    /// — the tree-shaped counterpart of [`NamedGenerator::min_degree`].
    pub fn tree(mut self) -> NamedGenerator {
        self.is_tree = true;
        self
    }

    /// Stable registry key, e.g. `"regular/3"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line human-readable description (used by
    /// `exp sweep --list-generators`).
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Minimum degree every instance of target size `n` is guaranteed to
    /// have — the static domain filter sweep drivers use to decide whether
    /// an algorithm (e.g. sinkless orientation, min degree 3) can run on
    /// this family without building the graph first.
    pub fn min_degree(&self, n: usize) -> usize {
        (self.min_degree_of)(n)
    }

    /// Whether every instance of this family is guaranteed to be a tree
    /// or forest (see [`NamedGenerator::tree`]).
    pub fn is_tree(&self) -> bool {
        self.is_tree
    }

    /// Builds an instance of target size `n` from `seed`.
    ///
    /// Deterministic: the result is a pure function of `(key, n, seed)` on
    /// every platform (the randomized families draw from
    /// [`Rng::seed_from`]`(seed)`).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::InvalidParameters`] from the underlying
    /// generator for degenerate targets (e.g. regular sampling failures).
    pub fn build(&self, n: usize, seed: u64) -> Result<Graph, GraphError> {
        (self.build_fn)(n, seed)
    }
}

/// The string-keyed catalog of named graph families.
pub struct GenRegistry {
    entries: Vec<NamedGenerator>,
}

impl GenRegistry {
    /// Builds a registry from explicit entries — how downstream crates
    /// compose the base families here with their own contributions (e.g.
    /// the `lb/*` hard instances of `localavg-lowerbound`).
    ///
    /// # Panics
    ///
    /// Panics on duplicate keys: two families answering to one name would
    /// make sweep results ambiguous.
    pub fn from_entries(entries: Vec<NamedGenerator>) -> GenRegistry {
        let mut keys: Vec<&str> = entries.iter().map(|g| g.name).collect();
        keys.sort_unstable();
        for w in keys.windows(2) {
            assert_ne!(w[0], w[1], "duplicate generator key `{}`", w[0]);
        }
        GenRegistry { entries }
    }

    /// Looks a family up by its registry key.
    pub fn get(&self, name: &str) -> Option<&NamedGenerator> {
        self.entries.iter().find(|g| g.name == name)
    }

    /// The registered key closest to `name` by edit distance — the same
    /// "did you mean …" policy as the algorithm registry (see
    /// [`crate::suggest::closest_match`]).
    pub fn suggest(&self, name: &str) -> Option<&'static str> {
        crate::suggest::closest_match(self.names(), name)
    }

    /// All registered families, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &NamedGenerator> + '_ {
        self.entries.iter()
    }

    /// All registry keys, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|g| g.name)
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty (it never is).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn md_zero(_n: usize) -> usize {
    0
}

fn md_cycle(_n: usize) -> usize {
    2
}

fn md_tree(n: usize) -> usize {
    usize::from(n >= 2)
}

fn md_grid(n: usize) -> usize {
    // isqrt(n) >= 2 and the column count >= 2 once n >= 4.
    if n >= 4 {
        2
    } else {
        0
    }
}

fn md_regular<const D: usize>(_n: usize) -> usize {
    D
}

fn md_hypercube(n: usize) -> usize {
    n.max(2).ilog2() as usize
}

fn build_path(n: usize, _seed: u64) -> Result<Graph, GraphError> {
    Ok(path(n))
}

fn build_cycle(n: usize, _seed: u64) -> Result<Graph, GraphError> {
    Ok(cycle(n.max(3)))
}

fn build_grid(n: usize, _seed: u64) -> Result<Graph, GraphError> {
    let rows = n.max(1).isqrt().max(1);
    let cols = n.max(1).div_ceil(rows);
    Ok(grid(rows, cols))
}

fn build_hypercube(n: usize, _seed: u64) -> Result<Graph, GraphError> {
    Ok(hypercube(n.max(2).ilog2()))
}

fn build_tree_random(n: usize, seed: u64) -> Result<Graph, GraphError> {
    Ok(random_tree(n.max(1), &mut Rng::seed_from(seed)))
}

fn build_tree_binary(n: usize, _seed: u64) -> Result<Graph, GraphError> {
    Ok(binary_tree(n.max(1)))
}

fn build_tree_bounded<const D: usize>(n: usize, seed: u64) -> Result<Graph, GraphError> {
    Ok(bounded_random_tree(n.max(1), D, &mut Rng::seed_from(seed)))
}

fn build_tree_caterpillar(n: usize, _seed: u64) -> Result<Graph, GraphError> {
    // Spine carries 3 legs per node: realized size 4·spine ≈ n.
    let spine = (n / 4).max(1);
    Ok(caterpillar(spine, 3))
}

fn build_tree_spider(n: usize, _seed: u64) -> Result<Graph, GraphError> {
    // Near-balanced shape: ~√n legs of ~√n nodes each.
    let n = n.max(5);
    let legs = (n - 1).isqrt().max(2);
    let len = ((n - 1) / legs).max(1);
    Ok(spider(legs, len))
}

fn build_regular<const D: usize>(n: usize, seed: u64) -> Result<Graph, GraphError> {
    let n = n.max(D + 1);
    let n = if (n * D) % 2 == 1 { n + 1 } else { n };
    random_regular(n, D, &mut Rng::seed_from(seed))
}

fn build_gnp_001(n: usize, seed: u64) -> Result<Graph, GraphError> {
    Ok(gnp(n, 0.01, &mut Rng::seed_from(seed)))
}

fn build_gnp_005(n: usize, seed: u64) -> Result<Graph, GraphError> {
    Ok(gnp(n, 0.05, &mut Rng::seed_from(seed)))
}

fn build_gnp_deg8(n: usize, seed: u64) -> Result<Graph, GraphError> {
    let p = 8.0 / n.max(9) as f64;
    Ok(gnp(n, p, &mut Rng::seed_from(seed)))
}

fn md_pref_attach(n: usize) -> usize {
    // Builds round the target up to 5 nodes, so every node has at least
    // the 4 attachment edges (the seed clique K_5 is 4-regular).
    let _ = n;
    4
}

/// `B10` is the power-law exponent × 10 (const generics take no floats).
fn build_powerlaw<const B10: usize>(n: usize, seed: u64) -> Result<Graph, GraphError> {
    Ok(powerlaw(
        n,
        B10 as f64 / 10.0,
        8.0,
        &mut Rng::seed_from(seed),
    ))
}

fn build_pref_attach(n: usize, seed: u64) -> Result<Graph, GraphError> {
    Ok(pref_attach(n.max(5), 4, &mut Rng::seed_from(seed)))
}

fn build_rmat(n: usize, seed: u64) -> Result<Graph, GraphError> {
    let scale = n.max(2).ilog2();
    // Average degree ~16 before dedup: m_target = 8 · 2^scale.
    Ok(rmat(scale, 8usize << scale, &mut Rng::seed_from(seed)))
}

/// The global registry of named graph families.
///
/// Keys follow `family[/variant]`:
///
/// | key | family | size rounding |
/// |---|---|---|
/// | `path` | path `P_n` | exact |
/// | `cycle` | cycle `C_n` | `max(n, 3)` |
/// | `grid` | near-square grid | `isqrt(n) × ceil(n/isqrt(n))` |
/// | `hypercube` | hypercube `Q_d` | largest `2^d <= n` |
/// | `tree/random` | uniform labelled tree (Prüfer) | exact |
/// | `tree/binary` | complete binary tree | exact |
/// | `tree/bounded/3` `tree/bounded/8` | random degree-bounded tree | exact |
/// | `tree/caterpillar` | spine with 3 leaves per node | `4 · max(n/4, 1)` |
/// | `tree/spider` | ~√n legs of ~√n nodes | `1 + legs·len` |
/// | `regular/3` `regular/4` `regular/8` `regular/16` | random d-regular | parity-adjusted |
/// | `gnp/0.01` `gnp/0.05` | Erdős–Rényi `G(n, p)` | exact |
/// | `gnp/deg8` | `G(n, 8/n)` — constant average degree | exact |
/// | `powerlaw/2.1` `powerlaw/2.5` | Chung–Lu power law, mean degree ~8 | exact |
/// | `pref-attach/4` | Barabási–Albert, 4 edges per new node | `max(n, 5)` |
/// | `rmat/16` | R-MAT (0.57/0.19/0.19/0.05), ~16 avg degree | largest `2^d <= n` |
pub fn registry() -> &'static GenRegistry {
    static REGISTRY: std::sync::OnceLock<GenRegistry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| GenRegistry {
        entries: vec![
            NamedGenerator {
                name: "path",
                description: "path P_n",
                min_degree_of: md_zero,
                build_fn: build_path,
                is_tree: true,
            },
            NamedGenerator {
                name: "cycle",
                description: "cycle C_n (n rounded up to 3)",
                min_degree_of: md_cycle,
                build_fn: build_cycle,
                is_tree: false,
            },
            NamedGenerator {
                name: "grid",
                description: "near-square grid of ~n nodes",
                min_degree_of: md_grid,
                build_fn: build_grid,
                is_tree: false,
            },
            NamedGenerator {
                name: "hypercube",
                description: "hypercube Q_d on the largest 2^d <= n nodes",
                min_degree_of: md_hypercube,
                build_fn: build_hypercube,
                is_tree: false,
            },
            NamedGenerator {
                name: "tree/random",
                description: "uniform random labelled tree (Prüfer)",
                min_degree_of: md_tree,
                build_fn: build_tree_random,
                is_tree: true,
            },
            NamedGenerator {
                name: "tree/binary",
                description: "complete binary tree",
                min_degree_of: md_tree,
                build_fn: build_tree_binary,
                is_tree: true,
            },
            NamedGenerator {
                name: "tree/bounded/3",
                description: "random tree with maximum degree 3 (random attachment)",
                min_degree_of: md_tree,
                build_fn: build_tree_bounded::<3>,
                is_tree: true,
            },
            NamedGenerator {
                name: "tree/bounded/8",
                description: "random tree with maximum degree 8 (random attachment)",
                min_degree_of: md_tree,
                build_fn: build_tree_bounded::<8>,
                is_tree: true,
            },
            NamedGenerator {
                name: "tree/caterpillar",
                description: "caterpillar: ~n/4 spine nodes with 3 pendant leaves each",
                min_degree_of: md_tree,
                build_fn: build_tree_caterpillar,
                is_tree: true,
            },
            NamedGenerator {
                name: "tree/spider",
                description: "spider: ~sqrt(n) legs of ~sqrt(n) nodes on a central hub",
                min_degree_of: md_tree,
                build_fn: build_tree_spider,
                is_tree: true,
            },
            NamedGenerator {
                name: "regular/3",
                description: "random 3-regular graph (parity-adjusted n)",
                min_degree_of: md_regular::<3>,
                build_fn: build_regular::<3>,
                is_tree: false,
            },
            NamedGenerator {
                name: "regular/4",
                description: "random 4-regular graph",
                min_degree_of: md_regular::<4>,
                build_fn: build_regular::<4>,
                is_tree: false,
            },
            NamedGenerator {
                name: "regular/8",
                description: "random 8-regular graph",
                min_degree_of: md_regular::<8>,
                build_fn: build_regular::<8>,
                is_tree: false,
            },
            NamedGenerator {
                name: "regular/16",
                description: "random 16-regular graph",
                min_degree_of: md_regular::<16>,
                build_fn: build_regular::<16>,
                is_tree: false,
            },
            NamedGenerator {
                name: "gnp/0.01",
                description: "Erdős–Rényi G(n, 0.01)",
                min_degree_of: md_zero,
                build_fn: build_gnp_001,
                is_tree: false,
            },
            NamedGenerator {
                name: "gnp/0.05",
                description: "Erdős–Rényi G(n, 0.05)",
                min_degree_of: md_zero,
                build_fn: build_gnp_005,
                is_tree: false,
            },
            NamedGenerator {
                name: "gnp/deg8",
                description: "Erdős–Rényi G(n, 8/n), constant average degree",
                min_degree_of: md_zero,
                build_fn: build_gnp_deg8,
                is_tree: false,
            },
            NamedGenerator {
                name: "powerlaw/2.1",
                description: "Chung–Lu power law, exponent 2.1, mean degree ~8",
                min_degree_of: md_zero,
                build_fn: build_powerlaw::<21>,
                is_tree: false,
            },
            NamedGenerator {
                name: "powerlaw/2.5",
                description: "Chung–Lu power law, exponent 2.5, mean degree ~8",
                min_degree_of: md_zero,
                build_fn: build_powerlaw::<25>,
                is_tree: false,
            },
            NamedGenerator {
                name: "pref-attach/4",
                description: "Barabási–Albert preferential attachment, 4 edges per node",
                min_degree_of: md_pref_attach,
                build_fn: build_pref_attach,
                is_tree: false,
            },
            NamedGenerator {
                name: "rmat/16",
                description: "R-MAT 0.57/0.19/0.19/0.05 on 2^d <= n nodes, ~16 avg degree",
                min_degree_of: md_zero,
                build_fn: build_rmat,
                is_tree: false,
            },
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn tree_flags_match_reality() {
        // Every family flagged as a tree must build forests at every
        // probed size and seed; the probe also pins the exact flagged
        // set, so a new tree family missing its `.tree()` (or a cyclic
        // family gaining one) fails here.
        let flagged: Vec<&str> = registry()
            .iter()
            .filter(|g| g.is_tree())
            .map(|g| g.name())
            .collect();
        assert_eq!(
            flagged,
            [
                "path",
                "tree/random",
                "tree/binary",
                "tree/bounded/3",
                "tree/bounded/8",
                "tree/caterpillar",
                "tree/spider",
            ]
        );
        for fam in registry().iter() {
            for n in [1usize, 2, 7, 64] {
                for seed in [0u64, 9] {
                    let g = fam.build(n, seed).expect("family builds");
                    if fam.is_tree() {
                        assert!(
                            analysis::is_forest(&g),
                            "{} claims tree but built a cycle at n={n}",
                            fam.name()
                        );
                    }
                }
            }
        }
        assert!(!registry().get("cycle").unwrap().is_tree());
        assert!(!registry().get("gnp/deg8").unwrap().is_tree());
    }

    #[test]
    fn path_and_cycle() {
        let p = path(5);
        assert_eq!(p.n(), 5);
        assert_eq!(p.m(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let c = cycle(5);
        assert!(c.degrees().all(|d| d == 2));
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    fn complete_graph() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert!(g.degrees().all(|d| d == 5));
    }

    #[test]
    fn complete_bipartite_graph() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        for u in 0..3 {
            assert_eq!(g.degree(u), 4);
        }
        for v in 3..7 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn star_graph() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert!(g.neighbor_ids(3).eq([0]));
    }

    #[test]
    fn grid_graph() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn hypercube_graph() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!(g.degrees().all(|d| d == 4));
        assert_eq!(g.m(), 32);
    }

    #[test]
    fn binary_tree_graph() {
        let g = binary_tree(7);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
        assert!(analysis::is_connected(&g));
        assert!(analysis::is_forest(&g));
    }

    #[test]
    fn caterpillar_graph() {
        let g = caterpillar(4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 + 8);
        assert!(analysis::is_forest(&g));
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn spider_structure() {
        let g = spider(4, 3);
        assert_eq!(g.n(), 13);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(0), 4);
        assert!(analysis::is_forest(&g));
        assert!(analysis::is_connected(&g));
        // Leaf tips have degree 1, interior leg nodes degree 2.
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn bounded_random_tree_respects_cap() {
        let mut rng = Rng::seed_from(11);
        for (n, dmax) in [(1usize, 2usize), (2, 2), (50, 3), (200, 8)] {
            let g = bounded_random_tree(n, dmax, &mut rng);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(analysis::is_connected(&g));
            assert!(analysis::is_forest(&g));
            assert!(g.max_degree() <= dmax, "n={n}, dmax={dmax}");
        }
    }

    #[test]
    fn tree_families_are_trees_at_registry_sizes() {
        for key in [
            "tree/bounded/3",
            "tree/bounded/8",
            "tree/caterpillar",
            "tree/spider",
        ] {
            let fam = registry()
                .get(key)
                .unwrap_or_else(|| panic!("missing {key}"));
            for n in [16usize, 64, 257] {
                let g = fam.build(n, 3).unwrap();
                assert!(analysis::is_connected(&g), "{key} at n={n}");
                assert!(analysis::is_forest(&g), "{key} at n={n}");
                // Size rounding stays near the target.
                assert!(
                    g.n() >= n / 2 && g.n() <= n + 4,
                    "{key}: n={} for target {n}",
                    g.n()
                );
            }
        }
        // Degree caps hold at the family level too.
        let g = registry()
            .get("tree/bounded/3")
            .unwrap()
            .build(300, 7)
            .unwrap();
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn registry_suggest_and_from_entries() {
        assert_eq!(registry().suggest("tree/spiderr"), Some("tree/spider"));
        assert_eq!(registry().suggest("regullar/4"), Some("regular/4"));
        assert_eq!(registry().suggest("qqqqqq"), None);
        let composed = GenRegistry::from_entries(vec![
            NamedGenerator::new("path", "path", md_zero, build_path),
            NamedGenerator::new("x/y", "custom", md_zero, build_path),
        ]);
        assert_eq!(composed.len(), 2);
        assert!(composed.get("x/y").is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate generator key")]
    fn from_entries_rejects_duplicates() {
        let _ = GenRegistry::from_entries(vec![
            NamedGenerator::new("path", "path", md_zero, build_path),
            NamedGenerator::new("path", "again", md_zero, build_path),
        ]);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = Rng::seed_from(5);
        for n in [1usize, 2, 3, 10, 64] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(analysis::is_connected(&g));
            assert!(analysis::is_forest(&g));
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = Rng::seed_from(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = Rng::seed_from(2);
        let n = 300;
        let p = 0.05;
        let g = gnp(n, p, &mut rng);
        let expect = (n * (n - 1) / 2) as f64 * p;
        let m = g.m() as f64;
        assert!((m - expect).abs() < expect * 0.25, "m={m}, expect={expect}");
    }

    #[test]
    fn regular_graph_degrees() {
        let mut rng = Rng::seed_from(3);
        for (n, d) in [(10, 3), (40, 4), (25, 6)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert!(g.degrees().all(|deg| deg == d), "n={n}, d={d}");
        }
    }

    #[test]
    fn regular_graph_bad_parity() {
        let mut rng = Rng::seed_from(4);
        assert!(random_regular(5, 3, &mut rng).is_err());
        assert!(random_regular(4, 4, &mut rng).is_err());
    }

    #[test]
    fn regular_zero_degree() {
        let mut rng = Rng::seed_from(4);
        let g = random_regular(5, 0, &mut rng).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn biregular_degrees() {
        let mut rng = Rng::seed_from(6);
        let g = random_biregular(6, 4, 2, 3, &mut rng).unwrap();
        for u in 0..6 {
            assert_eq!(g.degree(u), 2);
        }
        for v in 6..10 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn biregular_rejects_mismatch() {
        let mut rng = Rng::seed_from(6);
        assert!(random_biregular(3, 4, 2, 3, &mut rng).is_err());
        assert!(random_biregular(2, 4, 5, 1, &mut rng).is_err()); // d_a > b impossible
    }

    #[test]
    fn geometric_graph_monotone_in_radius() {
        let mut rng = Rng::seed_from(7);
        let sparse = random_geometric(100, 0.05, &mut rng);
        let mut rng = Rng::seed_from(7);
        let dense = random_geometric(100, 0.3, &mut rng);
        assert!(dense.m() > sparse.m());
    }

    #[test]
    fn registry_keys_unique_and_present() {
        let names: Vec<&str> = registry().names().collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate generator keys");
        for key in ["regular/3", "gnp/0.05", "tree/random", "grid", "hypercube"] {
            assert!(registry().get(key).is_some(), "missing {key}");
        }
        assert!(!registry().is_empty());
        assert_eq!(registry().len(), names.len());
        assert!(registry().get("no-such-family").is_none());
    }

    #[test]
    fn registry_builds_are_deterministic() {
        for g in registry().iter() {
            let a = g.build(70, 5).unwrap();
            let b = g.build(70, 5).unwrap();
            assert_eq!(a.n(), b.n(), "{} node count unstable", g.name());
            let ea: Vec<_> = a.edges().collect();
            let eb: Vec<_> = b.edges().collect();
            assert_eq!(ea, eb, "{} edges unstable", g.name());
        }
    }

    #[test]
    fn registry_min_degree_guarantees_hold() {
        for g in registry().iter() {
            for n in [32usize, 100] {
                let built = g.build(n, 9).unwrap();
                assert!(
                    built.min_degree() >= g.min_degree(n),
                    "{} at n={n}: realized min degree {} below declared {}",
                    g.name(),
                    built.min_degree(),
                    g.min_degree(n)
                );
            }
        }
    }

    #[test]
    fn registry_size_rounding() {
        let r = registry();
        assert_eq!(r.get("hypercube").unwrap().build(100, 0).unwrap().n(), 64);
        assert_eq!(r.get("path").unwrap().build(17, 0).unwrap().n(), 17);
        // 3-regular needs even n*d: 33*3 is odd, so the target is bumped.
        let g = r.get("regular/3").unwrap().build(33, 1).unwrap();
        assert_eq!(g.n(), 34);
        assert!(g.degrees().all(|d| d == 3));
        // Grid lands near the target on a near-square shape.
        let g = r.get("grid").unwrap().build(128, 0).unwrap();
        assert!(g.n() >= 128 && g.n() <= 140, "grid n={}", g.n());
    }

    #[test]
    fn powerlaw_degree_sequence_is_heavy_tailed() {
        let mut rng = Rng::seed_from(8);
        let g = powerlaw(2000, 2.1, 8.0, &mut rng);
        assert_eq!(g.n(), 2000);
        // Mean degree lands near the target (capping pulls it below 8).
        let mean = g.degree_sum() as f64 / g.n() as f64;
        assert!((2.0..=9.0).contains(&mean), "mean degree {mean}");
        // Hubs exist: max degree far above the mean.
        assert!(
            g.max_degree() as f64 > 4.0 * mean,
            "max {} vs mean {mean}",
            g.max_degree()
        );
        // Early (high-weight) nodes dominate late ones on average.
        let head: usize = (0..20).map(|v| g.degree(v)).sum();
        let tail: usize = (1980..2000).map(|v| g.degree(v)).sum();
        assert!(head > 4 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn powerlaw_steeper_exponent_thins_the_tail() {
        let flat = powerlaw(1500, 2.1, 8.0, &mut Rng::seed_from(3));
        let steep = powerlaw(1500, 2.5, 8.0, &mut Rng::seed_from(3));
        // A steeper exponent concentrates less weight in the hubs.
        assert!(steep.max_degree() < flat.max_degree());
    }

    #[test]
    fn pref_attach_min_degree_and_hubs() {
        let mut rng = Rng::seed_from(9);
        let g = pref_attach(500, 4, &mut rng);
        assert_eq!(g.n(), 500);
        assert_eq!(g.m(), 10 + 4 * 495); // K_5 + 4 per later node
        assert!(g.min_degree() >= 4);
        assert!(g.max_degree() >= 20, "max {}", g.max_degree());
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn pref_attach_tiny_sizes() {
        let mut rng = Rng::seed_from(1);
        let g = pref_attach(1, 4, &mut rng);
        assert_eq!((g.n(), g.m()), (1, 0));
        let g = pref_attach(3, 4, &mut rng);
        assert_eq!((g.n(), g.m()), (3, 3)); // clamped seed clique K_3
        let g = pref_attach(5, 4, &mut rng);
        assert_eq!((g.n(), g.m()), (5, 10)); // exactly the K_5 seed
    }

    #[test]
    fn rmat_shape_and_determinism() {
        let g = rmat(10, 4096, &mut Rng::seed_from(6));
        assert_eq!(g.n(), 1024);
        // Dedup and self-loop drops shrink the target somewhat.
        assert!(g.m() > 2048 && g.m() <= 4096, "m={}", g.m());
        // Quadrant skew concentrates edges on low ids.
        let low: usize = (0..128).map(|v| g.degree(v)).sum();
        assert!(low * 2 > g.degree_sum() / 2, "low-id mass {low}");
        let h = rmat(10, 4096, &mut Rng::seed_from(6));
        assert_eq!(g, h);
    }

    #[test]
    fn heavy_tailed_registry_families_present() {
        for key in ["powerlaw/2.1", "powerlaw/2.5", "pref-attach/4", "rmat/16"] {
            let fam = registry()
                .get(key)
                .unwrap_or_else(|| panic!("missing {key}"));
            let g = fam.build(256, 2).unwrap();
            assert!(
                g.min_degree() >= fam.min_degree(256),
                "{key}: min degree {} below declared {}",
                g.min_degree(),
                fam.min_degree(256)
            );
        }
        // rmat rounds down to a power of two; pref-attach rounds up to 5.
        let r = registry();
        assert_eq!(r.get("rmat/16").unwrap().build(100, 0).unwrap().n(), 64);
        assert_eq!(r.get("pref-attach/4").unwrap().build(2, 0).unwrap().n(), 5);
    }

    #[test]
    fn petersen_structure() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!(g.degrees().all(|d| d == 3));
        assert_eq!(analysis::girth(&g), Some(5));
    }
}
