//! The core undirected simple-graph data structure.
//!
//! The LOCAL model (paper §2) works on an undirected graph `G = (V, E)`
//! where nodes exchange messages over edges. Two representation details
//! matter for a faithful simulation:
//!
//! * **Ports.** A node of degree `d` addresses its neighbors through ports
//!   `0..d`; [`Graph::neighbors`] returns neighbors in port order, and the
//!   port order is a stable function of insertion order, so the simulator's
//!   behaviour is deterministic.
//! * **Edge identifiers.** The paper's edge-averaged complexity
//!   (Definition 1) assigns a completion time to every *edge*; stable
//!   [`EdgeId`]s let the simulator keep a per-edge commit ledger and let
//!   algorithms output edge labellings (matchings, orientations).

use std::collections::HashSet;
use std::fmt;

/// Index of a node; nodes are always `0..n`.
pub type NodeId = usize;

/// Index of an undirected edge; edges are `0..m` in insertion order.
pub type EdgeId = usize;

/// Errors produced when constructing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `{v, v}` was inserted; the paper's graphs are simple.
    SelfLoop(NodeId),
    /// The same undirected edge was inserted twice.
    DuplicateEdge(NodeId, NodeId),
    /// A generator was asked for an impossible parameter combination
    /// (for example an odd number of odd-degree nodes).
    InvalidParameters(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} (graphs are simple)"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph with stable edge ids and port numbering.
///
/// # Example
///
/// ```
/// use localavg_graph::Graph;
///
/// # fn main() -> Result<(), localavg_graph::GraphError> {
/// let mut g = Graph::empty(3);
/// let e01 = g.add_edge(0, 1)?;
/// let e12 = g.add_edge(1, 2)?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.endpoints(e01), (0, 1));
/// assert_eq!(g.other_endpoint(e12, 2), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Graph {
    /// adjacency\[v\] = (neighbor, edge id) in port order.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// edges\[e\] = (u, v) with u < v.
    edges: Vec<(NodeId, NodeId)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops, or duplicate
    /// edges.
    ///
    /// # Example
    ///
    /// ```
    /// use localavg_graph::Graph;
    /// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
    /// assert_eq!(g.m(), 4);
    /// # Ok::<(), localavg_graph::GraphError>(())
    /// ```
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut g = Graph::empty(n);
        let mut seen = HashSet::with_capacity(edges.len());
        for &(u, v) in edges {
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge(u, v));
            }
            g.add_edge_raw(u, v)?;
        }
        Ok(g)
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// This checks range and self-loops but, for performance, **not**
    /// duplicates; use [`Graph::from_edges`], [`GraphBuilder`], or
    /// [`Graph::has_edge`] when duplicate protection is needed. Duplicate
    /// insertion is caught by `debug_assert!` in debug builds.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        debug_assert!(
            !self.has_edge(u, v),
            "duplicate edge {{{u}, {v}}} inserted via add_edge"
        );
        self.add_edge_raw(u, v)
    }

    fn add_edge_raw(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let n = self.n();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let id = self.edges.len();
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        self.adj[u].push((v, id));
        self.adj[v].push((u, id));
        Ok(id)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Iterator over all node degrees, in node order.
    pub fn degrees(&self) -> impl Iterator<Item = usize> + '_ {
        self.adj.iter().map(Vec::len)
    }

    /// Maximum degree Δ (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.degrees().max().unwrap_or(0)
    }

    /// Minimum degree (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.degrees().min().unwrap_or(0)
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs, in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v]
    }

    /// Iterator over just the neighbor ids of `v`, in port order.
    pub fn neighbor_ids(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v].iter().map(|&(u, _)| u)
    }

    /// Endpoints `(u, v)` of edge `e`, with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.edges[e];
        if v == a {
            b
        } else {
            assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Iterator over `(edge id, u, v)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u, v))
    }

    /// Returns the id of edge `{u, v}` if present (O(min degree) scan).
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n() || v >= self.n() {
            return None;
        }
        let (scan, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[scan]
            .iter()
            .find(|&&(w, _)| w == target)
            .map(|&(_, e)| e)
    }

    /// Whether edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n()
    }

    /// Sorts every adjacency list by neighbor id (re-normalizing ports).
    ///
    /// Useful when a canonical port order is wanted, e.g. before comparing
    /// two graphs for structural equality.
    pub fn sort_adjacency(&mut self) {
        for list in &mut self.adj {
            list.sort_unstable();
        }
    }

    /// Sum of all degrees (= 2m); used as a cheap sanity invariant.
    pub fn degree_sum(&self) -> usize {
        self.degrees().sum()
    }
}

/// Incremental graph builder with duplicate-edge protection.
///
/// [`Graph::add_edge`] skips the duplicate check for performance;
/// `GraphBuilder` performs it with a hash set, which is what constructions
/// like the paper's cluster-tree graphs (§4.6) use while wiring groups of
/// nodes together.
///
/// # Example
///
/// ```
/// use localavg_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// assert!(b.try_add(0, 1));
/// assert!(!b.try_add(1, 0)); // duplicate: rejected, not an error
/// let g = b.build();
/// assert_eq!(g.m(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    graph: Graph,
    seen: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            graph: Graph::empty(n),
            seen: HashSet::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// Adds edge `{u, v}` if it is new; returns whether it was added.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops — those indicate a
    /// bug in the calling construction rather than recoverable input.
    pub fn try_add(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        if self.seen.insert(key) {
            self.graph
                .add_edge_raw(u, v)
                .expect("GraphBuilder::try_add: invalid endpoint");
            true
        } else {
            false
        }
    }

    /// Whether `{u, v}` has already been added.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.seen.contains(&key)
    }

    /// Finishes the build and returns the graph.
    pub fn build(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.degree_sum(), 0);
    }

    #[test]
    fn add_edges_and_query() {
        let mut g = Graph::empty(4);
        let e0 = g.add_edge(0, 1).unwrap();
        let e1 = g.add_edge(2, 1).unwrap();
        assert_eq!(e0, 0);
        assert_eq!(e1, 1);
        assert_eq!(g.endpoints(e1), (1, 2)); // normalized u < v
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.other_endpoint(e0, 0), 1);
        assert_eq!(g.other_endpoint(e0, 1), 0);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.find_edge(1, 2), Some(e1));
        assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn port_order_is_insertion_order() {
        let mut g = Graph::empty(4);
        g.add_edge(1, 3).unwrap();
        g.add_edge(1, 0).unwrap();
        g.add_edge(1, 2).unwrap();
        let ports: Vec<NodeId> = g.neighbor_ids(1).collect();
        assert_eq!(ports, vec![3, 0, 2]);
    }

    #[test]
    fn sort_adjacency_normalizes_ports() {
        let mut g = Graph::empty(4);
        g.add_edge(1, 3).unwrap();
        g.add_edge(1, 0).unwrap();
        g.add_edge(1, 2).unwrap();
        g.sort_adjacency();
        let ports: Vec<NodeId> = g.neighbor_ids(1).collect();
        assert_eq!(ports, vec![0, 2, 3]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::empty(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::empty(2);
        assert!(matches!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        ));
    }

    #[test]
    fn from_edges_rejects_duplicates() {
        let r = Graph::from_edges(3, &[(0, 1), (1, 0)]);
        assert!(matches!(r, Err(GraphError::DuplicateEdge(1, 0))));
    }

    #[test]
    fn from_edges_builds_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(g.degrees().all(|d| d == 2));
    }

    #[test]
    fn builder_dedups() {
        let mut b = GraphBuilder::new(3);
        assert!(b.try_add(0, 1));
        assert!(!b.try_add(1, 0));
        assert!(b.contains(0, 1));
        assert!(!b.contains(1, 2));
        assert!(b.try_add(1, 2));
        let g = b.build();
        assert_eq!(g.m(), 2);
    }

    #[test]
    #[should_panic]
    fn builder_panics_on_self_loop() {
        let mut b = GraphBuilder::new(3);
        b.try_add(2, 2);
    }

    #[test]
    fn error_display() {
        let e = GraphError::DuplicateEdge(1, 2);
        assert!(e.to_string().contains("duplicate"));
        let e = GraphError::SelfLoop(3);
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::InvalidParameters("odd".into());
        assert!(e.to_string().contains("odd"));
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Graph::empty(2);
        assert_eq!(format!("{g:?}"), "Graph(n=2, m=0)");
    }
}
