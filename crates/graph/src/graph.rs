//! The core undirected simple-graph data structure (immutable CSR).
//!
//! The LOCAL model (paper §2) works on an undirected graph `G = (V, E)`
//! where nodes exchange messages over edges. Two representation details
//! matter for a faithful simulation:
//!
//! * **Ports.** A node of degree `d` addresses its neighbors through ports
//!   `0..d`; [`Graph::neighbors`] returns neighbors in port order, and the
//!   port order is a stable function of edge insertion order, so the
//!   simulator's behaviour is deterministic.
//! * **Edge identifiers.** The paper's edge-averaged complexity
//!   (Definition 1) assigns a completion time to every *edge*; stable
//!   [`EdgeId`]s let the simulator keep a per-edge commit ledger and let
//!   algorithms output edge labellings (matchings, orientations).
//!
//! # Representation
//!
//! [`Graph`] is **frozen**: it is produced by a [`GraphBuilder`] (or the
//! [`Graph::from_edges`] convenience) and never mutated afterwards. The
//! adjacency lives in compressed-sparse-row (CSR) form — one flat
//! `(neighbor, edge)` array indexed by per-node offsets — so the
//! simulator's hot loops walk contiguous memory instead of chasing one
//! heap allocation per node. Two flat side tables are precomputed at
//! build time for the round engine's message routing:
//!
//! * the **edge-port table** ([`Graph::edge_ports`]): for edge
//!   `e = {u, v}` with `u < v`, the port of `e` at `u` and at `v`;
//! * the **reverse-port table** ([`Graph::rev_port`]): for every directed
//!   *arc* (a `(node, port)` pair, globally indexed by
//!   `csr_offset(node) + port`), the port of the same edge at the other
//!   endpoint — exactly the lookup a message delivery needs.

use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

/// Index of a node; nodes are always `0..n`.
pub type NodeId = usize;

/// Index of an undirected edge; edges are `0..m` in insertion order.
pub type EdgeId = usize;

/// Errors produced when constructing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `{v, v}` was inserted; the paper's graphs are simple.
    SelfLoop(NodeId),
    /// The same undirected edge was inserted twice.
    DuplicateEdge(NodeId, NodeId),
    /// A generator was asked for an impossible parameter combination
    /// (for example an odd number of odd-degree nodes).
    InvalidParameters(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} (graphs are simple)"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable undirected simple graph in CSR form, with stable edge ids
/// and port numbering.
///
/// Construction goes through [`GraphBuilder`] (incremental) or
/// [`Graph::from_edges`] (one shot); see the [module docs](self) for the
/// layout. All read accessors are cheap slice/offset arithmetic.
///
/// # Example
///
/// ```
/// use localavg_graph::GraphBuilder;
///
/// # fn main() -> Result<(), localavg_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// let e01 = b.add_edge(0, 1)?;
/// let e12 = b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.endpoints(e01), (0, 1));
/// assert_eq!(g.other_endpoint(e12, 2), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Graph {
    /// CSR offsets: node `v`'s ports occupy `nbrs[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    /// Flat adjacency: `(neighbor, edge id)` per arc, in port order.
    nbrs: Vec<(NodeId, EdgeId)>,
    /// Edge-endpoint table: `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(NodeId, NodeId)>,
    /// Edge-port table: `edge_ports[e] = (port at u, port at v)`.
    edge_ports: Vec<(u32, u32)>,
    /// Reverse-port table per arc: the same edge's port at the *other*
    /// endpoint (what a delivered message reports as its receiver port).
    rev_ports: Vec<u32>,
    /// Lazily-built cache for [`Graph::sorted_port_order`]; `Some(None)`
    /// once computed on an already-sorted adjacency. Excluded from
    /// equality: it is a pure function of the fields above.
    sorted_order: OnceLock<Option<Vec<u32>>>,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.nbrs == other.nbrs
            && self.edges == other.edges
            && self.edge_ports == other.edge_ports
            && self.rev_ports == other.rev_ports
    }
}

impl Eq for Graph {}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::empty(0)
    }
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            nbrs: Vec::new(),
            edges: Vec::new(),
            edge_ports: Vec::new(),
            rev_ports: Vec::new(),
            sorted_order: OnceLock::new(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops, or duplicate
    /// edges.
    ///
    /// # Example
    ///
    /// ```
    /// use localavg_graph::Graph;
    /// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
    /// assert_eq!(g.m(), 4);
    /// # Ok::<(), localavg_graph::GraphError>(())
    /// ```
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::with_edge_capacity(n, edges.len());
        let mut seen = HashSet::with_capacity(edges.len());
        for &(u, v) in edges {
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge(u, v));
            }
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The CSR offset of node `v`: its ports are the arcs
    /// `csr_offset(v) .. csr_offset(v) + degree(v)` of [`Graph::arcs`].
    ///
    /// # Panics
    ///
    /// Panics if `v > n`.
    #[inline]
    pub fn csr_offset(&self, v: NodeId) -> usize {
        self.offsets[v]
    }

    /// The global arc-index range of node `v`'s ports.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn arc_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v]..self.offsets[v + 1]
    }

    /// The whole flat `(neighbor, edge id)` arc array (`2m` entries, node
    /// by node in port order).
    #[inline]
    pub fn arcs(&self) -> &[(NodeId, EdgeId)] {
        &self.nbrs
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterator over all node degrees, in node order.
    pub fn degrees(&self) -> impl Iterator<Item = usize> + '_ {
        self.offsets.windows(2).map(|w| w[1] - w[0])
    }

    /// Maximum degree Δ (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.degrees().max().unwrap_or(0)
    }

    /// Minimum degree (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.degrees().min().unwrap_or(0)
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs, in port order — a
    /// contiguous slice of the CSR arc array.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.nbrs[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterator over just the neighbor ids of `v`, in port order.
    pub fn neighbor_ids(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(v).iter().map(|&(u, _)| u)
    }

    /// Endpoints `(u, v)` of edge `e`, with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// The ports of edge `e` at its two endpoints, in
    /// [`Graph::endpoints`] order.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn edge_ports(&self, e: EdgeId) -> (usize, usize) {
        let (pu, pv) = self.edge_ports[e];
        (pu as usize, pv as usize)
    }

    /// For the arc `csr_offset(v) + port`, the port of the same edge at
    /// the other endpoint — the receiver-side port of a message sent by
    /// `v` over `port`.
    ///
    /// # Panics
    ///
    /// Panics if `arc >= 2m`.
    #[inline]
    pub fn rev_port(&self, arc: usize) -> usize {
        self.rev_ports[arc] as usize
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.edges[e];
        if v == a {
            b
        } else {
            assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Iterator over `(edge id, u, v)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u, v))
    }

    /// Returns the id of edge `{u, v}` if present (O(min degree) scan).
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n() || v >= self.n() {
            return None;
        }
        let (scan, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(scan)
            .iter()
            .find(|&&(w, _)| w == target)
            .map(|&(_, e)| e)
    }

    /// Whether edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n()
    }

    /// Sum of all degrees (= 2m); used as a cheap sanity invariant.
    pub fn degree_sum(&self) -> usize {
        self.nbrs.len()
    }

    /// Heap footprint of the CSR arrays in bytes — the resident cost of
    /// keeping this instance loaded (offsets, arcs, edge endpoints, and
    /// both port tables; the lazily-built sort cache is excluded, like in
    /// equality).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.len() * size_of::<usize>()
            + self.nbrs.len() * size_of::<(NodeId, EdgeId)>()
            + self.edges.len() * size_of::<(NodeId, NodeId)>()
            + self.edge_ports.len() * size_of::<(u32, u32)>()
            + self.rev_ports.len() * size_of::<u32>()
    }

    /// Borrows the five frozen CSR arrays, in declaration order — what the
    /// `localavg-csr/v1` writer serializes (see [`crate::io`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(
        &self,
    ) -> (
        &[usize],
        &[(NodeId, EdgeId)],
        &[(NodeId, NodeId)],
        &[(u32, u32)],
        &[u32],
    ) {
        (
            &self.offsets,
            &self.nbrs,
            &self.edges,
            &self.edge_ports,
            &self.rev_ports,
        )
    }

    /// Reassembles a graph from its raw CSR arrays. The caller (the
    /// `localavg-csr/v1` reader) is responsible for having validated the
    /// invariants the accessors rely on; see `crate::io::read_graph`.
    pub(crate) fn from_raw_parts(
        offsets: Vec<usize>,
        nbrs: Vec<(NodeId, EdgeId)>,
        edges: Vec<(NodeId, NodeId)>,
        edge_ports: Vec<(u32, u32)>,
        rev_ports: Vec<u32>,
    ) -> Graph {
        debug_assert_eq!(offsets.last(), Some(&nbrs.len()));
        debug_assert_eq!(nbrs.len(), 2 * edges.len());
        Graph {
            offsets,
            nbrs,
            edges,
            edge_ports,
            rev_ports,
            sorted_order: OnceLock::new(),
        }
    }

    /// A flat permutation table visiting every node's ports in **ascending
    /// neighbor id** order, or `None` when every adjacency is already
    /// sorted (then ports `0..degree` are the sorted order and no table is
    /// needed).
    ///
    /// When present, entry `csr_offset(v) + i` is the port of `v`'s
    /// `i`-th smallest neighbor. The round engine's gather pass walks a
    /// receiver's senders in this order so inboxes come out sorted by
    /// sender id — the ordering the `Process` contract promises —
    /// regardless of the builder's insertion-order port numbering.
    ///
    /// Computed lazily on first use and cached for the (immutable)
    /// graph's lifetime; the check-only pass on a sorted adjacency costs
    /// O(Σdeg) once and allocates nothing.
    pub fn sorted_port_order(&self) -> Option<&[u32]> {
        self.sorted_order
            .get_or_init(|| {
                let sorted =
                    (0..self.n()).all(|v| self.neighbors(v).windows(2).all(|w| w[0].0 < w[1].0));
                if sorted {
                    return None;
                }
                let mut order = vec![0u32; self.nbrs.len()];
                for v in 0..self.n() {
                    let base = self.offsets[v];
                    let nbrs = self.neighbors(v);
                    let slot = &mut order[base..base + nbrs.len()];
                    for (i, p) in slot.iter_mut().enumerate() {
                        *p = i as u32;
                    }
                    slot.sort_unstable_by_key(|&p| nbrs[p as usize].0);
                }
                Some(order)
            })
            .as_deref()
    }
}

/// Incremental builder — the only way to construct a non-empty [`Graph`].
///
/// All mutation lives here: [`GraphBuilder::add_edge`] (unchecked-
/// duplicate, for generators that cannot produce duplicates),
/// [`GraphBuilder::try_add`] (hash-set deduplicated, what constructions
/// like the paper's cluster-tree graphs of §4.6 use while wiring groups
/// of nodes together), and [`GraphBuilder::sort_adjacency`] (canonical
/// port order). [`GraphBuilder::build`] freezes the edge list into the
/// CSR arrays; a node's port order is the insertion order of its
/// incident edges (or sorted by neighbor id after `sort_adjacency`).
///
/// # Example
///
/// ```
/// use localavg_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// assert!(b.try_add(0, 1));
/// assert!(!b.try_add(1, 0)); // duplicate: rejected, not an error
/// let g = b.build();
/// assert_eq!(g.m(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    /// Normalized `(u, v)` with `u < v`, in insertion order (= edge id).
    edges: Vec<(NodeId, NodeId)>,
    /// Duplicate-detection set, materialized lazily on the first
    /// [`GraphBuilder::try_add`] so plain [`GraphBuilder::add_edge`]
    /// construction pays no hashing.
    seen: Option<HashSet<(NodeId, NodeId)>>,
    sorted_ports: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: None,
            sorted_ports: false,
        }
    }

    /// Creates a builder with preallocated room for `m` edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            seen: None,
            sorted_ports: false,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    fn normalize(&self, u: NodeId, v: NodeId) -> Result<(NodeId, NodeId), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        Ok(if u < v { (u, v) } else { (v, u) })
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// This checks range and self-loops but, for performance, **not**
    /// duplicates; use [`GraphBuilder::try_add`] or
    /// [`Graph::from_edges`] when duplicate protection is needed.
    /// Duplicate insertion is caught by `debug_assert!` in debug builds.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let key = self.normalize(u, v)?;
        #[cfg(debug_assertions)]
        {
            // Debug builds always maintain the hash set so the duplicate
            // check stays O(1) even for generators that never call
            // `try_add` (a linear scan here would make large debug-mode
            // constructions quadratic).
            let edges = &self.edges;
            let seen = self
                .seen
                .get_or_insert_with(|| edges.iter().copied().collect());
            assert!(
                seen.insert(key),
                "duplicate edge {{{u}, {v}}} inserted via add_edge"
            );
        }
        #[cfg(not(debug_assertions))]
        if let Some(seen) = &mut self.seen {
            seen.insert(key);
        }
        let id = self.edges.len();
        self.edges.push(key);
        Ok(id)
    }

    /// Adds edge `{u, v}` if it is new; returns whether it was added.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops — those indicate a
    /// bug in the calling construction rather than recoverable input.
    pub fn try_add(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = self
            .normalize(u, v)
            .expect("GraphBuilder::try_add: invalid endpoint");
        let edges = &self.edges;
        let seen = self
            .seen
            .get_or_insert_with(|| edges.iter().copied().collect());
        if seen.insert(key) {
            self.edges.push(key);
            true
        } else {
            false
        }
    }

    /// Whether `{u, v}` has already been added.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        match &self.seen {
            Some(seen) => seen.contains(&key),
            None => self.edges.contains(&key),
        }
    }

    /// Requests canonical port order: at [`GraphBuilder::build`] every
    /// node's ports are sorted by `(neighbor id, edge id)` instead of
    /// keeping insertion order. Useful before comparing two graphs for
    /// structural equality.
    pub fn sort_adjacency(&mut self) {
        self.sorted_ports = true;
    }

    /// Freezes the builder into the CSR [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.n;
        let m = self.edges.len();
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        // Fill pass in edge-id order: each node's ports end up in the
        // insertion order of its incident edges.
        let mut nbrs = vec![(0 as NodeId, 0 as EdgeId); 2 * m];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            nbrs[cursor[u]] = (v, e);
            cursor[u] += 1;
            nbrs[cursor[v]] = (u, e);
            cursor[v] += 1;
        }
        if self.sorted_ports {
            for v in 0..n {
                nbrs[offsets[v]..offsets[v + 1]].sort_unstable();
            }
        }
        let (edge_ports, rev_ports) = port_tables(&offsets, &nbrs, &self.edges);
        Graph {
            offsets,
            nbrs,
            edges: self.edges,
            edge_ports,
            rev_ports,
            sorted_order: OnceLock::new(),
        }
    }

    /// Builds a graph in **two streaming passes** over an edge source,
    /// without materializing the intermediate edge list or a dedup
    /// seen-set — peak memory is ~1× the final CSR (plus an 8-byte-per-
    /// node cursor), versus ~3× for the buffer-then-[`build`] path. This
    /// is what makes 10⁷⁺-node instances fit in RAM (DESIGN.md §10).
    ///
    /// `emit` is called exactly twice with an [`EdgeSink`]; it must feed
    /// **the identical duplicate-free edge stream** both times (pass 1
    /// counts degrees, pass 2 fills the CSR arrays). Generators replay a
    /// seeded [`crate::rng::Rng`] to satisfy this for free. A stream that
    /// changes between passes is detected and reported; **duplicate
    /// edges are not detected in release builds** (that is the memory
    /// trade), so callers must guarantee a duplicate-free stream — every
    /// debug build re-checks it after the fact.
    ///
    /// [`build`]: GraphBuilder::build
    ///
    /// # Errors
    ///
    /// Returns the first validation error from the stream (out-of-range
    /// endpoint, self-loop), or [`GraphError::InvalidParameters`] when
    /// the two passes disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use localavg_graph::GraphBuilder;
    ///
    /// let g = GraphBuilder::stream_edges(4, |sink| {
    ///     for v in 1..4 {
    ///         sink.edge(v - 1, v);
    ///     }
    /// })?;
    /// assert_eq!((g.n(), g.m()), (4, 3));
    /// # Ok::<(), localavg_graph::GraphError>(())
    /// ```
    pub fn stream_edges<F>(n: usize, mut emit: F) -> Result<Graph, GraphError>
    where
        F: FnMut(&mut EdgeSink<'_>),
    {
        // Pass 1: count each endpoint's degree into offsets[v + 1].
        let mut offsets = vec![0usize; n + 1];
        let mut m = 0usize;
        let mut error = None;
        emit(&mut EdgeSink {
            n,
            error: &mut error,
            mode: SinkMode::Count {
                counts: &mut offsets,
                m: &mut m,
            },
        });
        if let Some(e) = error {
            return Err(e);
        }
        assert!(
            m < u32::MAX as usize / 2,
            "graph too large for u32 port tables"
        );
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        // Pass 2: fill the CSR arrays in edge-id (= stream) order.
        let mut nbrs = vec![(0 as NodeId, 0 as EdgeId); 2 * m];
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        emit(&mut EdgeSink {
            n,
            error: &mut error,
            mode: SinkMode::Fill {
                offsets: &offsets,
                cursor: &mut cursor,
                nbrs: &mut nbrs,
                edges: &mut edges,
            },
        });
        if let Some(e) = error {
            return Err(e);
        }
        if edges.len() != m {
            return Err(GraphError::InvalidParameters(format!(
                "stream_edges pass 2 emitted {} edges, pass 1 counted {m}",
                edges.len()
            )));
        }
        #[cfg(debug_assertions)]
        for v in 0..n {
            let mut ids: Vec<NodeId> = nbrs[offsets[v]..offsets[v + 1]]
                .iter()
                .map(|&(u, _)| u)
                .collect();
            ids.sort_unstable();
            debug_assert!(
                ids.windows(2).all(|w| w[0] != w[1]),
                "duplicate edge in stream at node {v}"
            );
        }
        let (edge_ports, rev_ports) = port_tables(&offsets, &nbrs, &edges);
        Ok(Graph {
            offsets,
            nbrs,
            edges,
            edge_ports,
            rev_ports,
            sorted_order: OnceLock::new(),
        })
    }
}

/// Builds the edge-port and reverse-port tables from finished CSR
/// adjacency — the shared tail of [`GraphBuilder::build`] and
/// [`GraphBuilder::stream_edges`]. Ports fit in u32: a port index is
/// bounded by the degree, and 2m entries already cap the usable range
/// far below `u32::MAX` at any realistic scale.
fn port_tables(
    offsets: &[usize],
    nbrs: &[(NodeId, EdgeId)],
    edges: &[(NodeId, NodeId)],
) -> (Vec<(u32, u32)>, Vec<u32>) {
    let n = offsets.len() - 1;
    let m = edges.len();
    assert!(
        m < u32::MAX as usize / 2,
        "graph too large for u32 port tables"
    );
    let mut edge_ports = vec![(u32::MAX, u32::MAX); m];
    for v in 0..n {
        let base = offsets[v];
        for (port, &(_, e)) in nbrs[base..offsets[v + 1]].iter().enumerate() {
            let (a, _) = edges[e];
            if v == a {
                edge_ports[e].0 = port as u32;
            } else {
                edge_ports[e].1 = port as u32;
            }
        }
    }
    let mut rev_ports = vec![0u32; 2 * m];
    for v in 0..n {
        let base = offsets[v];
        for (i, &(_, e)) in nbrs[base..offsets[v + 1]].iter().enumerate() {
            let (a, _) = edges[e];
            rev_ports[base + i] = if v == a {
                edge_ports[e].1
            } else {
                edge_ports[e].0
            };
        }
    }
    (edge_ports, rev_ports)
}

/// The per-pass edge receiver of [`GraphBuilder::stream_edges`].
///
/// The sink validates every edge (range, self-loops) and either counts
/// degrees (pass 1) or fills the CSR arrays (pass 2); the first error is
/// latched and subsequent edges are ignored, so generator loops don't
/// need per-edge error plumbing.
pub struct EdgeSink<'a> {
    n: usize,
    error: &'a mut Option<GraphError>,
    mode: SinkMode<'a>,
}

enum SinkMode<'a> {
    Count {
        /// `counts[v + 1]` accumulates node `v`'s degree (the layout
        /// prefix-summed into CSR offsets between the passes).
        counts: &'a mut [usize],
        m: &'a mut usize,
    },
    Fill {
        offsets: &'a [usize],
        cursor: &'a mut [usize],
        nbrs: &'a mut [(NodeId, EdgeId)],
        edges: &'a mut Vec<(NodeId, NodeId)>,
    },
}

impl EdgeSink<'_> {
    /// Feeds one undirected edge `{u, v}` to the current pass.
    ///
    /// Invalid edges latch an error into the enclosing
    /// [`GraphBuilder::stream_edges`] call instead of panicking; once an
    /// error is latched the remaining stream is drained without effect.
    pub fn edge(&mut self, u: NodeId, v: NodeId) {
        if self.error.is_some() {
            return;
        }
        if u >= self.n {
            *self.error = Some(GraphError::NodeOutOfRange { node: u, n: self.n });
            return;
        }
        if v >= self.n {
            *self.error = Some(GraphError::NodeOutOfRange { node: v, n: self.n });
            return;
        }
        if u == v {
            *self.error = Some(GraphError::SelfLoop(u));
            return;
        }
        match &mut self.mode {
            SinkMode::Count { counts, m } => {
                counts[u + 1] += 1;
                counts[v + 1] += 1;
                **m += 1;
            }
            SinkMode::Fill {
                offsets,
                cursor,
                nbrs,
                edges,
            } => {
                // A stream that grew between passes would overrun a
                // node's CSR region (or the edge table) — catch both.
                if edges.len() == edges.capacity()
                    || cursor[u] >= offsets[u + 1]
                    || cursor[v] >= offsets[v + 1]
                {
                    *self.error = Some(GraphError::InvalidParameters(
                        "stream_edges: edge stream changed between passes".into(),
                    ));
                    return;
                }
                let e = edges.len();
                edges.push(if u < v { (u, v) } else { (v, u) });
                nbrs[cursor[u]] = (v, e);
                cursor[u] += 1;
                nbrs[cursor[v]] = (u, e);
                cursor[v] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.degree_sum(), 0);
        assert_eq!(Graph::default(), Graph::empty(0));
    }

    #[test]
    fn add_edges_and_query() {
        let mut b = GraphBuilder::new(4);
        let e0 = b.add_edge(0, 1).unwrap();
        let e1 = b.add_edge(2, 1).unwrap();
        assert_eq!(e0, 0);
        assert_eq!(e1, 1);
        assert_eq!((b.n(), b.m()), (4, 2));
        let g = b.build();
        assert_eq!(g.endpoints(e1), (1, 2)); // normalized u < v
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.other_endpoint(e0, 0), 1);
        assert_eq!(g.other_endpoint(e0, 1), 0);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.find_edge(1, 2), Some(e1));
        assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn port_order_is_insertion_order() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(1, 3).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        let ports: Vec<NodeId> = g.neighbor_ids(1).collect();
        assert_eq!(ports, vec![3, 0, 2]);
    }

    #[test]
    fn sort_adjacency_normalizes_ports() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(1, 3).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(1, 2).unwrap();
        b.sort_adjacency();
        let g = b.build();
        let ports: Vec<NodeId> = g.neighbor_ids(1).collect();
        assert_eq!(ports, vec![0, 2, 3]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        ));
    }

    #[test]
    fn from_edges_rejects_duplicates() {
        let r = Graph::from_edges(3, &[(0, 1), (1, 0)]);
        assert!(matches!(r, Err(GraphError::DuplicateEdge(1, 0))));
    }

    #[test]
    fn from_edges_builds_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(g.degrees().all(|d| d == 2));
    }

    #[test]
    fn builder_dedups() {
        let mut b = GraphBuilder::new(3);
        assert!(b.try_add(0, 1));
        assert!(!b.try_add(1, 0));
        assert!(b.contains(0, 1));
        assert!(!b.contains(1, 2));
        assert!(b.try_add(1, 2));
        let g = b.build();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn builder_dedups_after_plain_adds() {
        // `try_add` must see edges inserted before the hash set existed.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        assert!(b.contains(1, 0));
        assert!(!b.try_add(1, 0));
        assert!(b.try_add(2, 3));
        b.add_edge(0, 2).unwrap(); // keeps the materialized set in sync
        assert!(!b.try_add(2, 0));
        assert_eq!(b.build().m(), 3);
    }

    #[test]
    #[should_panic]
    fn builder_panics_on_self_loop() {
        let mut b = GraphBuilder::new(3);
        b.try_add(2, 2);
    }

    #[test]
    fn csr_offsets_and_arcs() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(1, 3).unwrap();
        let g = b.build();
        assert_eq!(g.csr_offset(0), 0);
        assert_eq!(g.csr_offset(1), 1);
        assert_eq!(g.arc_range(1), 1..4);
        assert_eq!(g.arcs().len(), 2 * g.m());
        assert_eq!(&g.arcs()[g.arc_range(1)], g.neighbors(1));
        // Arc-level agreement with the per-node view, for every node.
        for v in g.nodes() {
            assert_eq!(g.neighbors(v).len(), g.degree(v));
            for (port, &(u, e)) in g.neighbors(v).iter().enumerate() {
                assert_eq!(g.other_endpoint(e, v), u);
                // The reverse port points back at this arc.
                let rev = g.rev_port(g.csr_offset(v) + port);
                assert_eq!(g.neighbors(u)[rev], (v, e));
                assert_eq!(g.rev_port(g.csr_offset(u) + rev), port);
            }
        }
    }

    #[test]
    fn edge_port_table_is_consistent() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(3, 1).unwrap();
        b.add_edge(1, 4).unwrap();
        b.add_edge(0, 1).unwrap();
        b.add_edge(3, 4).unwrap();
        let g = b.build();
        for (e, u, v) in g.edges() {
            let (pu, pv) = g.edge_ports(e);
            assert_eq!(g.neighbors(u)[pu], (v, e));
            assert_eq!(g.neighbors(v)[pv], (u, e));
        }
    }

    #[test]
    fn sorted_port_order_on_unsorted_adjacency() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(1, 3).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 4).unwrap();
        let g = b.build();
        let order = g.sorted_port_order().expect("insertion order is unsorted");
        assert_eq!(order.len(), g.degree_sum());
        for v in g.nodes() {
            let base = g.csr_offset(v);
            let ids: Vec<NodeId> = (0..g.degree(v))
                .map(|i| g.neighbors(v)[order[base + i] as usize].0)
                .collect();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "node {v}: {ids:?}");
        }
        // Second call hits the cache (same slice).
        assert_eq!(g.sorted_port_order().unwrap().as_ptr(), order.as_ptr());
    }

    #[test]
    fn sorted_port_order_is_none_when_already_sorted() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(1, 3).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(1, 2).unwrap();
        b.sort_adjacency();
        let g = b.build();
        assert_eq!(g.sorted_port_order(), None);
        assert_eq!(Graph::empty(3).sorted_port_order(), None);
    }

    #[test]
    fn equality_ignores_the_port_order_cache() {
        let make = || Graph::from_edges(4, &[(2, 1), (0, 3), (1, 0)]).unwrap();
        let (a, b) = (make(), make());
        let _ = a.sorted_port_order(); // populate only a's cache
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c, a);
    }

    #[test]
    fn error_display() {
        let e = GraphError::DuplicateEdge(1, 2);
        assert!(e.to_string().contains("duplicate"));
        let e = GraphError::SelfLoop(3);
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::InvalidParameters("odd".into());
        assert!(e.to_string().contains("odd"));
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Graph::empty(2);
        assert_eq!(format!("{g:?}"), "Graph(n=2, m=0)");
    }
}
