//! Deterministic, cross-platform pseudorandom number generation.
//!
//! The paper's model (footnote 1 of §2) assumes every node draws all of its
//! private random bits *up front*, before the first message is sent. To
//! reproduce that faithfully — and to make every experiment in this
//! repository bit-reproducible across executors (sequential vs. parallel)
//! and across Rust versions — we implement our own small generator instead
//! of depending on `rand`'s version-unstable `StdRng`.
//!
//! The design is the textbook combination used by many simulation code
//! bases: a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream is
//! used to expand a seed, and the expanded state drives
//! [xoshiro256++](https://prng.di.unimi.it/xoshiro256plusplus.c), a fast
//! generator with good statistical properties (passes BigCrush).
//!
//! Per-node streams are derived with [`Rng::fork`], which mixes a tag
//! (typically the node id) into the seed through SplitMix64, so that the
//! random bits a node consumes are a pure function of `(master_seed,
//! node_id)` and in particular independent of scheduling order.
//!
//! # Example
//!
//! ```
//! use localavg_graph::rng::Rng;
//!
//! let mut a = Rng::seed_from(7);
//! let mut b = Rng::seed_from(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // reproducible
//!
//! let mut node3 = a.fork(3);
//! let p = node3.f64_unit();
//! assert!((0.0..1.0).contains(&p));
//! ```

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and for deriving substreams; it is a bijection
/// on `u64` with excellent avalanche behaviour.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudorandom number generator (xoshiro256++).
///
/// Cloning an [`Rng`] duplicates the stream; use [`Rng::fork`] to derive
/// statistically independent substreams instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical streams
    /// on every platform and Rust version.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent substream tagged by `tag`.
    ///
    /// The derived stream is a pure function of this generator's *current
    /// state* and `tag`; the parent stream is not advanced. This is how the
    /// simulator gives every node its private random bits: node `v` gets
    /// `master.fork(v as u64)`.
    #[must_use]
    pub fn fork(&self, tag: u64) -> Self {
        // Mix the tag through SplitMix64 twice so consecutive tags land far
        // apart, then reseed.
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let _ = splitmix64(&mut sm);
        Rng::seed_from(splitmix64(&mut sm))
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform integer in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::index called with bound 0");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone: only reached with probability < bound / 2^64.
            let t = bound.wrapping_neg() % bound;
            if lo >= t {
                return (m >> 64) as usize;
            }
        }
    }

    /// Returns a uniform integer in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range requires lo < hi");
        lo + self.index(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64_unit() < p
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Returns a uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let mut a = Rng::seed_from(12345);
        let mut b = Rng::seed_from(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn fork_is_deterministic_and_independent_of_parent_use() {
        let parent = Rng::seed_from(99);
        let mut f1 = parent.fork(7);
        let mut f2 = parent.fork(7);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut f3 = parent.fork(8);
        let mut f4 = parent.fork(7);
        f4.next_u64();
        assert_ne!(f3.next_u64(), f4.next_u64());
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = Rng::seed_from(5);
        let mut b = Rng::seed_from(5);
        let _ = a.fork(1);
        let _ = a.fork(2);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn index_in_bounds_and_covers_values() {
        let mut rng = Rng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.index(10);
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn index_roughly_uniform() {
        let mut rng = Rng::seed_from(77);
        let mut counts = [0usize; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[rng.index(8)] += 1;
        }
        let expect = trials / 8;
        for &c in &counts {
            assert!(
                (c as isize - expect as isize).unsigned_abs() < expect / 10,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_statistics() {
        let mut rng = Rng::seed_from(8);
        let hits = (0..50_000).filter(|_| rng.chance(0.25)).count();
        let expect = 12_500;
        assert!((hits as isize - expect).unsigned_abs() < 700, "hits={hits}");
    }

    #[test]
    fn f64_unit_range() {
        let mut rng = Rng::seed_from(6);
        for _ in 0..1000 {
            let x = rng.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = Rng::seed_from(10);
        let p = rng.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = Rng::seed_from(11);
        let mut xs: Vec<u32> = (0..20).map(|i| i % 5).collect();
        let mut expect = xs.clone();
        expect.sort_unstable();
        rng.shuffle(&mut xs);
        xs.sort_unstable();
        assert_eq!(xs, expect);
    }

    #[test]
    fn range_bounds() {
        let mut rng = Rng::seed_from(12);
        for _ in 0..100 {
            let x = rng.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn index_zero_panics() {
        Rng::seed_from(0).index(0);
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the public-domain splitmix64.c with seed 0.
        let mut s = 0u64;
        let first = splitmix64(&mut s);
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }
}
