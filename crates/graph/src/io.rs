//! On-disk storage for [`Graph`] — the `localavg-csr/v1` container
//! (DESIGN.md §10).
//!
//! Large instances (10⁷⁺ nodes) take minutes to generate but milliseconds
//! per query cell; persisting the frozen CSR lets `exp gen` build once and
//! every later `exp sweep --graph-file` / `exp bench-engine --graph-file`
//! reload in a single streaming pass. The format serializes exactly the
//! five frozen arrays of [`Graph`] — no re-derivation on load, so a
//! written-then-read graph is **byte-identical** in memory (`Graph: Eq`
//! holds across the round trip, port order included).
//!
//! # Layout (all integers little-endian)
//!
//! | section | bytes | contents |
//! |---|---|---|
//! | magic | 8 | `b"LAVGCSR1"` |
//! | header | 24 | `version: u32` (= 1), `reserved: u32` (= 0), `n: u64`, `m: u64` |
//! | offsets | 8·(n+1) | CSR offsets as `u64` |
//! | arcs | 8·2m | per arc: `neighbor: u32`, `edge id: u32` |
//! | edges | 8·m | per edge: `u: u32`, `v: u32` with `u < v` |
//! | edge ports | 8·m | per edge: `port at u: u32`, `port at v: u32` |
//! | rev ports | 4·2m | per arc: the edge's port at the other endpoint, `u32` |
//! | checksum | 8 | 64-bit block hash of every preceding byte |
//!
//! Node and edge ids fit in `u32` by the same invariant the in-memory
//! port tables rely on (`m < u32::MAX / 2`, checked at build time); CSR
//! offsets range up to `2m` and are stored as `u64`. Every section length
//! is a multiple of 8 bytes, so the checksum is defined over aligned
//! 8-byte blocks: `h ← (rotl(h, 5) ^ block) · 0x517cc1b727220a95` from
//! seed `0x6c61766763737231` (`"lavgcsr1"`).
//!
//! # Reading is validating
//!
//! [`read_graph`] never trusts the header: tables are read with sized
//! [`Read::read_exact`] calls into chunk-grown buffers (a lying `n`
//! fails fast with [`ReadError::Truncated`] instead of attempting a
//! giant allocation), the checksum must match, and a full structural
//! audit re-checks every invariant the accessors rely on — offsets
//! monotone and consistent with `2m`, arc/edge agreement, port-table
//! agreement, reverse-port involution, and simple-graph-ness (no
//! duplicate neighbors). Everything is std-only safe code: no mmap, no
//! `unsafe`, honoring the workspace `forbid(unsafe_code)` discipline.

use crate::graph::{EdgeId, Graph, NodeId};
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// First 8 bytes of every `localavg-csr/v1` file.
pub const MAGIC: [u8; 8] = *b"LAVGCSR1";

/// Format version written and accepted by this module.
pub const VERSION: u32 = 1;

/// Checksum seed (`"lavgcsr1"` as a little-endian u64).
const HASH_SEED: u64 = 0x6c61_7667_6373_7231;

/// Staging-buffer size for both directions; a multiple of 8 so chunk
/// boundaries never split a checksum block.
const CHUNK_BYTES: usize = 1 << 20;

/// Errors from [`read_graph`]. Every rejection is typed so callers (and
/// the fuzz harness's corrupted-header leg) can assert on the *reason* a
/// file was refused, not just that it was.
#[derive(Debug)]
pub enum ReadError {
    /// An underlying I/O failure other than a short read.
    Io(io::Error),
    /// The first 8 bytes were not [`MAGIC`].
    BadMagic([u8; 8]),
    /// The version field was not [`VERSION`].
    UnsupportedVersion(u32),
    /// A header count exceeds what the format (or this platform) can
    /// represent — e.g. byte-swapped big-endian values masquerading as
    /// astronomically large `n`/`m`.
    HeaderOutOfRange {
        /// Which header field was out of range.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// The file ended before the named section was complete.
    Truncated {
        /// The section being read when the stream ran dry.
        section: &'static str,
    },
    /// The stored checksum does not match the bytes read.
    ChecksumMismatch {
        /// Checksum recomputed from the bytes read.
        computed: u64,
        /// Checksum stored in the file footer.
        stored: u64,
    },
    /// Bytes remain after the checksum footer.
    TrailingBytes,
    /// The tables decoded but violate a structural invariant of
    /// [`Graph`] (offsets, arc/edge agreement, port tables, simpleness).
    Corrupt(String),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::BadMagic(m) => write!(f, "bad magic {m:02x?} (not a localavg-csr file)"),
            ReadError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported localavg-csr version {v} (expected {VERSION})"
                )
            }
            ReadError::HeaderOutOfRange { field, value } => {
                write!(f, "header field `{field}` out of range: {value}")
            }
            ReadError::Truncated { section } => {
                write!(f, "file truncated in the {section} section")
            }
            ReadError::ChecksumMismatch { computed, stored } => write!(
                f,
                "checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            ReadError::TrailingBytes => write!(f, "trailing bytes after the checksum footer"),
            ReadError::Corrupt(msg) => write!(f, "corrupt graph tables: {msg}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Advances the checksum over `bytes`, which must be 8-byte aligned in
/// length (every section of the format is).
fn hash_blocks(mut h: u64, bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len().is_multiple_of(8));
    for b in bytes.chunks_exact(8) {
        let w = u64::from_le_bytes(b.try_into().expect("8-byte chunk"));
        h = (h.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    h
}

/// Exact encoded size in bytes of a graph with `n` nodes and `m` edges —
/// what [`write_graph`] returns, usable for capacity planning before
/// generating anything.
pub fn encoded_size_bytes(n: usize, m: usize) -> u64 {
    48 + 8 * n as u64 + 40 * m as u64
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct HashWriter<W: Write> {
    inner: W,
    hash: u64,
    written: u64,
    stage: Vec<u8>,
}

impl<W: Write> HashWriter<W> {
    fn new(inner: W) -> Self {
        HashWriter {
            inner,
            hash: HASH_SEED,
            written: 0,
            stage: Vec::with_capacity(CHUNK_BYTES),
        }
    }

    /// Writes `bytes` through the checksum. Only called with 8-byte-
    /// aligned lengths (magic, header, flushed stages).
    fn emit(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash = hash_blocks(self.hash, bytes);
        self.inner.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn flush_stage(&mut self) -> io::Result<()> {
        if !self.stage.is_empty() {
            let stage = std::mem::take(&mut self.stage);
            self.emit(&stage)?;
            self.stage = stage;
            self.stage.clear();
        }
        Ok(())
    }

    /// Stages one little-endian value; flushes at the chunk boundary.
    /// `CHUNK_BYTES` is a multiple of 8 and values are 4 or 8 bytes, so
    /// the boundary is always hit exactly and flushed chunks stay
    /// 8-byte aligned (section element counts keep the tail aligned).
    fn stage_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stage.extend_from_slice(bytes);
        if self.stage.len() >= CHUNK_BYTES {
            self.flush_stage()?;
        }
        Ok(())
    }
}

/// Serializes `g` in `localavg-csr/v1` form; returns the bytes written.
///
/// Streaming: the tables are staged through a fixed ~1 MiB buffer, so
/// writing never clones a table. Wrap `w` in nothing — the writer does
/// its own batching.
///
/// # Errors
///
/// Propagates I/O errors from `w`. Returns `InvalidInput` if `n` does
/// not fit the format's u32 node ids (the in-memory builder already
/// rejects the corresponding edge-count overflow).
pub fn write_graph<W: Write>(w: W, g: &Graph) -> io::Result<u64> {
    write_graph_inner(w, g).map(|(written, _)| written)
}

/// [`write_graph`] plus the checksum it stored in the footer.
fn write_graph_inner<W: Write>(w: W, g: &Graph) -> io::Result<(u64, u64)> {
    if g.n() > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("graph has {} nodes; localavg-csr/v1 ids are u32", g.n()),
        ));
    }
    let (offsets, nbrs, edges, edge_ports, rev_ports) = g.raw_parts();
    let mut hw = HashWriter::new(w);
    hw.emit(&MAGIC)?;
    let mut header = [0u8; 24];
    header[0..4].copy_from_slice(&VERSION.to_le_bytes());
    // bytes 4..8 stay zero (reserved)
    header[8..16].copy_from_slice(&(g.n() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&(g.m() as u64).to_le_bytes());
    hw.emit(&header)?;
    for &x in offsets {
        hw.stage_bytes(&(x as u64).to_le_bytes())?;
    }
    for &(nb, e) in nbrs {
        hw.stage_bytes(&(nb as u32).to_le_bytes())?;
        hw.stage_bytes(&(e as u32).to_le_bytes())?;
    }
    for &(u, v) in edges {
        hw.stage_bytes(&(u as u32).to_le_bytes())?;
        hw.stage_bytes(&(v as u32).to_le_bytes())?;
    }
    for &(pu, pv) in edge_ports {
        hw.stage_bytes(&pu.to_le_bytes())?;
        hw.stage_bytes(&pv.to_le_bytes())?;
    }
    for &r in rev_ports {
        hw.stage_bytes(&r.to_le_bytes())?;
    }
    hw.flush_stage()?;
    // Footer: the checksum itself is not hashed.
    let digest = hw.hash;
    hw.inner.write_all(&digest.to_le_bytes())?;
    hw.inner.flush()?;
    Ok((hw.written + 8, digest))
}

/// The 64-bit content hash of `g`: exactly the checksum [`write_graph`]
/// stores in the footer, computed without touching a disk. Two graphs
/// share a hash iff their frozen CSR tables are identical, so this is
/// the canonical identity of a file-backed instance — cell keys built
/// from a `--graph-file` use `file/<hash>` as their family component,
/// keeping goldens and the serve cache content-addressed.
///
/// # Panics
///
/// Panics if `g` is not representable in the format (more than `u32::MAX`
/// nodes) — such a graph has no `localavg-csr/v1` identity.
pub fn content_hash(g: &Graph) -> u64 {
    let (_, digest) =
        write_graph_inner(io::sink(), g).expect("graph exceeds localavg-csr/v1 limits");
    digest
}

/// [`write_graph`] to a freshly created file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_graph_to_path<P: AsRef<Path>>(path: P, g: &Graph) -> io::Result<u64> {
    write_graph(File::create(path)?, g)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct HashReader<R: Read> {
    inner: R,
    hash: u64,
    buf: Vec<u8>,
}

impl<R: Read> HashReader<R> {
    fn new(inner: R) -> Self {
        HashReader {
            inner,
            hash: HASH_SEED,
            buf: Vec::new(),
        }
    }

    /// Fills `self.buf` with exactly `len` bytes (8-byte-aligned) and
    /// folds them into the checksum.
    fn fill(&mut self, len: usize, section: &'static str) -> Result<(), ReadError> {
        self.buf.resize(len, 0);
        self.inner.read_exact(&mut self.buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ReadError::Truncated { section }
            } else {
                ReadError::Io(e)
            }
        })?;
        self.hash = hash_blocks(self.hash, &self.buf);
        Ok(())
    }

    /// Reads `count` u64 values in bounded chunks — a corrupt header
    /// asking for 2⁶⁰ values fails with [`ReadError::Truncated`] after
    /// one chunk instead of attempting the allocation up front.
    fn read_u64s(&mut self, count: usize, section: &'static str) -> Result<Vec<u64>, ReadError> {
        let mut out: Vec<u64> = Vec::new();
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(CHUNK_BYTES / 8);
            self.fill(take * 8, section)?;
            out.reserve(take);
            for b in self.buf.chunks_exact(8) {
                out.push(u64::from_le_bytes(b.try_into().expect("8-byte chunk")));
            }
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads `count` u32 values (count always even in this format) in
    /// bounded chunks.
    fn read_u32s(&mut self, count: usize, section: &'static str) -> Result<Vec<u32>, ReadError> {
        debug_assert!(count.is_multiple_of(2));
        let mut out: Vec<u32> = Vec::new();
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(CHUNK_BYTES / 4);
            self.fill(take * 4, section)?;
            out.reserve(take);
            for b in self.buf.chunks_exact(4) {
                out.push(u32::from_le_bytes(b.try_into().expect("4-byte chunk")));
            }
            remaining -= take;
        }
        Ok(out)
    }
}

fn corrupt(msg: impl Into<String>) -> ReadError {
    ReadError::Corrupt(msg.into())
}

/// Deserializes and fully validates a `localavg-csr/v1` graph from `r`.
///
/// On success the returned graph is byte-identical (field for field) to
/// the one that was written. See the [module docs](self) for everything
/// that is checked on the way in.
///
/// # Errors
///
/// Any [`ReadError`]; the stream is positioned unpredictably afterwards.
pub fn read_graph<R: Read>(r: R) -> Result<Graph, ReadError> {
    read_graph_with_hash(r).map(|(g, _)| g)
}

/// [`read_graph`] plus the file's verified checksum — the same value
/// [`content_hash`] computes from the in-memory graph, so callers that
/// need the instance's content identity (cell keys for `--graph-file`
/// runs) get it for free instead of re-hashing 40 bytes per edge.
///
/// # Errors
///
/// Any [`ReadError`]; the stream is positioned unpredictably afterwards.
pub fn read_graph_with_hash<R: Read>(r: R) -> Result<(Graph, u64), ReadError> {
    let mut hr = HashReader::new(r);
    hr.fill(8, "magic")?;
    if hr.buf[..8] != MAGIC {
        return Err(ReadError::BadMagic(
            hr.buf[..8].try_into().expect("8-byte magic"),
        ));
    }
    hr.fill(24, "header")?;
    let version = u32::from_le_bytes(hr.buf[0..4].try_into().expect("version"));
    if version != VERSION {
        return Err(ReadError::UnsupportedVersion(version));
    }
    let n64 = u64::from_le_bytes(hr.buf[8..16].try_into().expect("n"));
    let m64 = u64::from_le_bytes(hr.buf[16..24].try_into().expect("m"));
    if n64 > u32::MAX as u64 {
        return Err(ReadError::HeaderOutOfRange {
            field: "n",
            value: n64,
        });
    }
    if m64 >= u32::MAX as u64 / 2 {
        return Err(ReadError::HeaderOutOfRange {
            field: "m",
            value: m64,
        });
    }
    let n = n64 as usize;
    let m = m64 as usize;

    let offsets64 = hr.read_u64s(n + 1, "offsets")?;
    let arcs32 = hr.read_u32s(2 * (2 * m), "arcs")?;
    let edges32 = hr.read_u32s(2 * m, "edges")?;
    let ports32 = hr.read_u32s(2 * m, "edge ports")?;
    let rev_ports = hr.read_u32s(2 * m, "rev ports")?;
    let computed = hr.hash;
    // The footer is outside the checksum.
    let mut footer = [0u8; 8];
    hr.inner.read_exact(&mut footer).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ReadError::Truncated {
                section: "checksum footer",
            }
        } else {
            ReadError::Io(e)
        }
    })?;
    let stored = u64::from_le_bytes(footer);
    if computed != stored {
        return Err(ReadError::ChecksumMismatch { computed, stored });
    }
    match hr.inner.read(&mut [0u8; 1]) {
        Ok(0) => {}
        Ok(_) => return Err(ReadError::TrailingBytes),
        Err(e) => return Err(ReadError::Io(e)),
    }

    // --- Structural audit ------------------------------------------------
    if offsets64[0] != 0 {
        return Err(corrupt("offsets[0] != 0"));
    }
    if offsets64.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("offsets not nondecreasing"));
    }
    if offsets64[n] != 2 * m64 {
        return Err(corrupt(format!(
            "offsets[n] = {} but 2m = {}",
            offsets64[n],
            2 * m64
        )));
    }
    let offsets: Vec<usize> = offsets64.into_iter().map(|x| x as usize).collect();
    let mut nbrs: Vec<(NodeId, EdgeId)> = Vec::with_capacity(2 * m);
    for pair in arcs32.chunks_exact(2) {
        let (nb, e) = (pair[0] as usize, pair[1] as usize);
        if nb >= n || e >= m {
            return Err(corrupt(format!("arc ({nb}, {e}) out of range")));
        }
        nbrs.push((nb, e));
    }
    drop(arcs32);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
    for pair in edges32.chunks_exact(2) {
        let (u, v) = (pair[0] as usize, pair[1] as usize);
        if u >= v || v >= n {
            return Err(corrupt(format!("edge ({u}, {v}) not normalized in-range")));
        }
        edges.push((u, v));
    }
    drop(edges32);
    let mut edge_ports: Vec<(u32, u32)> = Vec::with_capacity(m);
    for pair in ports32.chunks_exact(2) {
        edge_ports.push((pair[0], pair[1]));
    }
    drop(ports32);

    // Arc ↔ edge agreement: every arc names an edge it belongs to.
    for v in 0..n {
        for &(u, e) in &nbrs[offsets[v]..offsets[v + 1]] {
            let expect = if v < u { (v, u) } else { (u, v) };
            if edges[e] != expect {
                return Err(corrupt(format!(
                    "arc at node {v} names edge {e} = {:?}, expected {expect:?}",
                    edges[e]
                )));
            }
        }
    }
    // Port tables: each edge's two ports point back at it, and each
    // arc's reverse port is the edge's port at the other endpoint.
    for (e, &(u, v)) in edges.iter().enumerate() {
        let (pu, pv) = edge_ports[e];
        let (pu, pv) = (pu as usize, pv as usize);
        let du = offsets[u + 1] - offsets[u];
        let dv = offsets[v + 1] - offsets[v];
        if pu >= du || pv >= dv {
            return Err(corrupt(format!("edge {e} port out of degree range")));
        }
        if nbrs[offsets[u] + pu] != (v, e) || nbrs[offsets[v] + pv] != (u, e) {
            return Err(corrupt(format!("edge {e} ports disagree with arcs")));
        }
        if rev_ports[offsets[u] + pu] != edge_ports[e].1
            || rev_ports[offsets[v] + pv] != edge_ports[e].0
        {
            return Err(corrupt(format!("edge {e} reverse ports inconsistent")));
        }
    }
    // Simple-graph audit: no node lists the same neighbor twice.
    let mut scratch: Vec<NodeId> = Vec::new();
    for v in 0..n {
        scratch.clear();
        scratch.extend(nbrs[offsets[v]..offsets[v + 1]].iter().map(|&(u, _)| u));
        scratch.sort_unstable();
        if scratch.windows(2).any(|w| w[0] == w[1]) {
            return Err(corrupt(format!("node {v} has a duplicate neighbor")));
        }
    }

    Ok((
        Graph::from_raw_parts(offsets, nbrs, edges, edge_ports, rev_ports),
        stored,
    ))
}

/// [`read_graph`] from the file at `path`.
///
/// # Errors
///
/// Any [`ReadError`] (file-open failures surface as [`ReadError::Io`]).
pub fn read_graph_from_path<P: AsRef<Path>>(path: P) -> Result<Graph, ReadError> {
    read_graph(File::open(path).map_err(ReadError::Io)?)
}

/// [`read_graph_with_hash`] from the file at `path`.
///
/// # Errors
///
/// Any [`ReadError`] (file-open failures surface as [`ReadError::Io`]).
pub fn read_graph_from_path_with_hash<P: AsRef<Path>>(path: P) -> Result<(Graph, u64), ReadError> {
    read_graph_with_hash(File::open(path).map_err(ReadError::Io)?)
}

// ---------------------------------------------------------------------------
// Plain-text edge-list import (SNAP-style)
// ---------------------------------------------------------------------------

/// A graph imported from a plain-text edge list, with the normalization
/// statistics `exp import` reports.
#[derive(Debug)]
pub struct ImportedGraph {
    /// The built simple undirected graph (dense 0-based node ids).
    pub graph: Graph,
    /// Distinct raw node ids seen (= `graph.n()`).
    pub nodes: usize,
    /// Edges kept after normalization (= `graph.m()`).
    pub edges: usize,
    /// Self-loop lines dropped.
    pub self_loops: usize,
    /// Duplicate edge lines dropped (both orientations of an undirected
    /// edge count as duplicates of each other).
    pub duplicates: usize,
    /// Comment / blank lines skipped.
    pub comments: usize,
}

/// Why a text edge list failed to import.
#[derive(Debug)]
pub enum ImportError {
    /// The reader failed.
    Io(io::Error),
    /// A data line failed to parse (1-based line number and explanation).
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The normalized edge stream was rejected by the builder (cannot
    /// happen for in-range remapped ids; kept for honesty).
    Graph(crate::GraphError),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "read failed: {e}"),
            ImportError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ImportError::Graph(e) => write!(f, "graph build rejected the edge list: {e:?}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Imports a whitespace-separated edge-list text (the SNAP download
/// format): one `u v` pair of non-negative integer node ids per line,
/// `#`- or `%`-prefixed comment lines and blank lines skipped.
///
/// Normalization, in order:
///
/// 1. raw ids are remapped to dense 0-based ids by **sorted numeric
///    order** (deterministic and independent of edge order);
/// 2. self-loops are dropped;
/// 3. duplicate edges are dropped — SNAP files commonly list both
///    orientations of each undirected edge, so `a b` and `b a` collapse
///    to one edge;
/// 4. the surviving edges are streamed through
///    [`GraphBuilder::stream_edges`](crate::GraphBuilder::stream_edges)
///    in normalized sorted order, which fixes the edge-id numbering.
///
/// The result is byte-stable: the same input text always produces the
/// same [`content_hash`].
///
/// # Errors
///
/// [`ImportError::Io`] on read failures, [`ImportError::Parse`] (with a
/// 1-based line number) for lines that are not two integer tokens.
pub fn import_edge_list<R: io::BufRead>(r: R) -> Result<ImportedGraph, ImportError> {
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut self_loops = 0usize;
    let mut comments = 0usize;
    for (idx, line) in r.lines().enumerate() {
        let line = line.map_err(ImportError::Io)?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') || text.starts_with('%') {
            comments += 1;
            continue;
        }
        let mut tokens = text.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, ImportError> {
            let tok = tok.ok_or(ImportError::Parse {
                line: idx + 1,
                message: "expected two node ids, found one".to_string(),
            })?;
            tok.parse::<u64>().map_err(|_| ImportError::Parse {
                line: idx + 1,
                message: format!("`{tok}` is not a non-negative integer node id"),
            })
        };
        let u = parse(tokens.next())?;
        let v = parse(tokens.next())?;
        if let Some(extra) = tokens.next() {
            return Err(ImportError::Parse {
                line: idx + 1,
                message: format!("trailing token `{extra}` after the two node ids"),
            });
        }
        ids.push(u);
        ids.push(v);
        if u == v {
            self_loops += 1;
        } else {
            raw_edges.push((u, v));
        }
    }
    // Dense remap by sorted raw id (a node mentioned only by self-loops
    // survives as an isolated node).
    ids.sort_unstable();
    ids.dedup();
    let dense = |raw: u64| ids.binary_search(&raw).expect("id collected above");
    let mut edges: Vec<(usize, usize)> = raw_edges
        .iter()
        .map(|&(u, v)| {
            let (a, b) = (dense(u), dense(v));
            (a.min(b), a.max(b))
        })
        .collect();
    edges.sort_unstable();
    let before = edges.len();
    edges.dedup();
    let duplicates = before - edges.len();
    let graph = crate::GraphBuilder::stream_edges(ids.len(), |sink| {
        for &(u, v) in &edges {
            sink.edge(u, v);
        }
    })
    .map_err(ImportError::Graph)?;
    Ok(ImportedGraph {
        nodes: graph.n(),
        edges: graph.m(),
        graph,
        self_loops,
        duplicates,
        comments,
    })
}

/// [`import_edge_list`] from a file path.
///
/// # Errors
///
/// Same conditions as [`import_edge_list`]; open failures surface as
/// [`ImportError::Io`].
pub fn import_edge_list_from_path<P: AsRef<Path>>(path: P) -> Result<ImportedGraph, ImportError> {
    import_edge_list(io::BufReader::new(
        File::open(path).map_err(ImportError::Io)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::rng::Rng;

    fn roundtrip_bytes(g: &Graph) -> Vec<u8> {
        let mut buf = Vec::new();
        let written = write_graph(&mut buf, g).unwrap();
        assert_eq!(written, buf.len() as u64);
        assert_eq!(written, encoded_size_bytes(g.n(), g.m()));
        buf
    }

    /// Re-stamps the footer after a test mutates the body, so structural
    /// validation (not the checksum) is what rejects the file.
    fn fix_checksum(bytes: &mut [u8]) {
        let body = bytes.len() - 8;
        let h = hash_blocks(HASH_SEED, &bytes[..body]);
        bytes[body..].copy_from_slice(&h.to_le_bytes());
    }

    #[test]
    fn roundtrip_small_graphs() {
        let mut rng = Rng::seed_from(7);
        let graphs = [
            Graph::empty(0),
            Graph::empty(5),
            gen::path(1),
            gen::path(17),
            gen::petersen(),
            gen::gnp(50, 0.2, &mut rng),
            gen::random_regular(24, 3, &mut rng).unwrap(),
        ];
        for g in &graphs {
            let bytes = roundtrip_bytes(g);
            let h = read_graph(&bytes[..]).unwrap();
            assert_eq!(&h, g);
            // Port order survives (Eq covers it, but make it explicit).
            for v in h.nodes() {
                assert_eq!(h.neighbors(v), g.neighbors(v));
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = roundtrip_bytes(&gen::path(4));
        bytes[0] = b'X';
        assert!(matches!(
            read_graph(&bytes[..]),
            Err(ReadError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = roundtrip_bytes(&gen::path(4));
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            read_graph(&bytes[..]),
            Err(ReadError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn rejects_big_endian_header_counts() {
        // A writer that stored n big-endian would claim an absurd count.
        let mut bytes = roundtrip_bytes(&gen::path(300));
        let n = 300u64.to_be_bytes();
        bytes[16..24].copy_from_slice(&n);
        match read_graph(&bytes[..]) {
            Err(ReadError::HeaderOutOfRange { field: "n", value }) => {
                assert_eq!(value, u64::from_le_bytes(n));
            }
            other => panic!("expected HeaderOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncation_in_every_section() {
        let bytes = roundtrip_bytes(&gen::petersen());
        // Chop the file at a few section-interior points and at every
        // boundary; each must fail with Truncated, never panic.
        for cut in [0, 4, 8, 20, 32, 40, 32 + 11 * 8, bytes.len() - 9] {
            let r = read_graph(&bytes[..cut]);
            assert!(
                matches!(r, Err(ReadError::Truncated { .. })),
                "cut at {cut}: {r:?}"
            );
        }
        // Cutting just the footer names it specifically.
        match read_graph(&bytes[..bytes.len() - 8]) {
            Err(ReadError::Truncated { section }) => {
                assert_eq!(section, "checksum footer");
            }
            other => panic!("expected truncated footer, got {other:?}"),
        }
    }

    #[test]
    fn rejects_flipped_bit_via_checksum() {
        let mut bytes = roundtrip_bytes(&gen::petersen());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            read_graph(&bytes[..]),
            Err(ReadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = roundtrip_bytes(&gen::path(4));
        bytes.push(0);
        assert!(matches!(
            read_graph(&bytes[..]),
            Err(ReadError::TrailingBytes)
        ));
    }

    #[test]
    fn rejects_structurally_corrupt_tables() {
        // Arc pointing at an out-of-range neighbor (checksum re-stamped
        // so structural validation is the rejecting layer).
        let g = gen::path(4); // offsets: 5 u64s at byte 32; arcs follow.
        let arcs_at = 32 + 5 * 8;
        let mut bytes = roundtrip_bytes(&g);
        bytes[arcs_at..arcs_at + 4].copy_from_slice(&999u32.to_le_bytes());
        fix_checksum(&mut bytes);
        assert!(matches!(read_graph(&bytes[..]), Err(ReadError::Corrupt(_))));

        // Offsets that do not sum to 2m.
        let mut bytes = roundtrip_bytes(&g);
        bytes[32 + 4 * 8..32 + 5 * 8].copy_from_slice(&77u64.to_le_bytes());
        fix_checksum(&mut bytes);
        assert!(matches!(read_graph(&bytes[..]), Err(ReadError::Corrupt(_))));

        // Denormalized edge endpoints (v <= u).
        let edges_at = arcs_at + 6 * 8;
        let mut bytes = roundtrip_bytes(&g);
        bytes[edges_at..edges_at + 4].copy_from_slice(&3u32.to_le_bytes());
        fix_checksum(&mut bytes);
        assert!(matches!(read_graph(&bytes[..]), Err(ReadError::Corrupt(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ReadError::Truncated { section: "arcs" };
        assert!(e.to_string().contains("arcs"));
        let e = ReadError::ChecksumMismatch {
            computed: 1,
            stored: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = ReadError::HeaderOutOfRange {
            field: "m",
            value: 7,
        };
        assert!(e.to_string().contains('m'));
        assert!(ReadError::BadMagic(*b"XXXXXXXX")
            .to_string()
            .contains("magic"));
        assert!(ReadError::TrailingBytes.to_string().contains("trailing"));
        assert!(ReadError::UnsupportedVersion(3).to_string().contains('3'));
        assert!(corrupt("x").to_string().contains('x'));
        let e = ReadError::Io(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }

    #[test]
    fn content_hash_matches_the_footer_and_separates_graphs() {
        let mut rng = Rng::seed_from(11);
        let g = gen::gnp(40, 0.15, &mut rng);
        let bytes = roundtrip_bytes(&g);
        let footer = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        assert_eq!(content_hash(&g), footer);
        let (h, read_hash) = read_graph_with_hash(&bytes[..]).unwrap();
        assert_eq!(read_hash, footer);
        assert_eq!(h, g);
        // Different graphs (even same n, m ± structure) hash apart.
        assert_ne!(content_hash(&gen::path(5)), content_hash(&gen::cycle(5)));
        assert_ne!(content_hash(&gen::path(5)), content_hash(&gen::path(6)));
    }

    #[test]
    fn path_helpers_roundtrip() {
        let dir = std::env::temp_dir().join(format!("localavg-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("g.csr");
        let g = gen::powerlaw(400, 2.1, 8.0, &mut Rng::seed_from(1));
        let written = write_graph_to_path(&file, &g).unwrap();
        assert_eq!(written, std::fs::metadata(&file).unwrap().len());
        let h = read_graph_from_path(&file).unwrap();
        assert_eq!(h, g);
        assert!(matches!(
            read_graph_from_path(dir.join("missing.csr")),
            Err(ReadError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_parses_snap_text_with_comments_loops_and_duplicates() {
        let text = "\
# A SNAP-style header comment
% a KONECT-style one
10 20
20 10
20 30
7 7

30\t10
";
        let imp = import_edge_list(text.as_bytes()).unwrap();
        // Raw ids {7, 10, 20, 30} → dense {0, 1, 2, 3} by sorted order;
        // node 7 only ever appeared in a self-loop, so it is isolated.
        assert_eq!(imp.nodes, 4);
        assert_eq!(imp.edges, 3);
        assert_eq!(imp.self_loops, 1);
        assert_eq!(imp.duplicates, 1);
        assert_eq!(imp.comments, 3);
        assert!(imp.graph.find_edge(1, 2).is_some()); // 10–20
        assert!(imp.graph.find_edge(2, 3).is_some()); // 20–30
        assert!(imp.graph.find_edge(1, 3).is_some()); // 10–30
        assert_eq!(imp.graph.degrees().collect::<Vec<_>>(), vec![0, 2, 2, 2]);
    }

    #[test]
    fn import_is_byte_stable_and_edge_order_invariant() {
        let a = import_edge_list("1 2\n2 3\n3 4\n".as_bytes()).unwrap();
        let b = import_edge_list("3 4\n2 1\n3 2\n".as_bytes()).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(content_hash(&a.graph), content_hash(&b.graph));
    }

    #[test]
    fn import_rejects_malformed_lines_with_line_numbers() {
        let one_token = import_edge_list("1 2\n3\n".as_bytes()).unwrap_err();
        assert!(matches!(one_token, ImportError::Parse { line: 2, .. }));
        let bad_token = import_edge_list("1 x\n".as_bytes()).unwrap_err();
        assert!(matches!(bad_token, ImportError::Parse { line: 1, .. }));
        let trailing = import_edge_list("1 2 0.5\n".as_bytes()).unwrap_err();
        let msg = trailing.to_string();
        assert!(msg.contains("line 1") && msg.contains("trailing"), "{msg}");
    }

    #[test]
    fn import_roundtrips_through_the_csr_container() {
        let dir = std::env::temp_dir().join(format!("localavg-import-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("imported.csr");
        // A small tree written as a directed edge list with gaps in ids.
        let imp = import_edge_list("100 5\n5 42\n42 9000\n".as_bytes()).unwrap();
        write_graph_to_path(&file, &imp.graph).unwrap();
        let (back, read_hash) = read_graph_from_path_with_hash(&file).unwrap();
        assert_eq!(back, imp.graph);
        assert_eq!(content_hash(&imp.graph), read_hash);
        assert!(crate::analysis::is_forest(&back));
        std::fs::remove_dir_all(&dir).ok();
    }
}
