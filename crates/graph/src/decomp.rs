//! Rake-and-compress decompositions of trees and forests (DESIGN.md §11).
//!
//! The follow-up papers to the source paper — arXiv 2308.04251 and
//! 2405.01366, which complete the node-averaged complexity landscape of
//! LCLs on trees — build every algorithm on the same substrate: a
//! *rake-and-compress decomposition* in the style of Miller–Reif, peeled
//! in O(log n) phases where each phase
//!
//! 1. **rakes** every node whose remaining degree is ≤ 1 (leaves and
//!    isolated nodes), and then
//! 2. **compresses** every remaining degree-2 node whose seeded priority
//!    is a strict local minimum among its still-alive neighbors.
//!
//! Both sub-steps are *O(1)-locally computable*: a node decides from its
//! own alive-degree and its neighbors' alive-degrees and priorities, so
//! one phase costs O(1) rounds of the LOCAL model and a node removed in
//! phase `k` knows its layer by round `O(k)`. Compressed nodes form an
//! independent set (two adjacent degree-2 nodes cannot both be strict
//! local minima), so simultaneous removal is consistent. On any forest
//! the alive set shrinks by a constant factor per phase in expectation —
//! leaves rake away and ~1/3 of every surviving chain compresses — which
//! gives the O(log n) depth the [`RcDecomposition`] invariant tests
//! verify across every tree family in the registry.
//!
//! The decomposition is a **pure function of `(graph, seed)`**: priorities
//! are [`crate::rng::splitmix64`] hashes of `(seed, node id)` with ids
//! breaking ties, the peeling loop is sequential and index-ordered, and
//! no thread count or scheduling enters anywhere. The same `(graph,
//! seed)` pair yields byte-identical layers on every platform — the
//! property the content-addressed cell cache of the bench layer relies
//! on.
//!
//! Non-forest inputs are rejected up front with a typed [`NotATree`]
//! (counting nodes, edges, and components), never a panic: the `*/tree-rc`
//! algorithms built on this module surface that error through the sweep
//! and fuzz domain filters.

use crate::analysis;
use crate::rng::splitmix64;
use crate::Graph;
use std::fmt;

/// How a node left the peeling process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcLabel {
    /// Removed in the rake sub-step (alive degree ≤ 1).
    Rake,
    /// Removed in the compress sub-step (alive degree 2, strict local
    /// priority minimum).
    Compress,
}

/// The input was not a forest, so no rake-and-compress decomposition
/// exists (a cycle never rakes and never fully compresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotATree {
    /// Node count of the offending graph.
    pub nodes: usize,
    /// Edge count of the offending graph (`edges ≥ nodes - components`
    /// witnesses the cycle).
    pub edges: usize,
    /// Connected components of the offending graph.
    pub components: usize,
}

impl fmt::Display for NotATree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not a tree: {} nodes, {} edges, {} component(s) — a forest has \
             exactly nodes - components edges ({})",
            self.nodes,
            self.edges,
            self.components,
            self.nodes - self.components.min(self.nodes),
        )
    }
}

impl std::error::Error for NotATree {}

/// A rake-and-compress decomposition: one `(layer, label)` pair per node,
/// plus the seeded priorities the compress sub-step (and the `*/tree-rc`
/// algorithms' tie-breaks) used.
///
/// Layers are 1-based phase indices; every node belongs to exactly one
/// layer and [`RcDecomposition::depth`] is their maximum — O(log n) with
/// high probability on any forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcDecomposition {
    layer: Vec<u32>,
    label: Vec<RcLabel>,
    priority: Vec<u64>,
    depth: u32,
}

/// The seeded priority of node `v` — a [`splitmix64`] hash of `(seed,
/// v)`. Strictly totally ordered together with the id tie-break of
/// [`RcDecomposition::before`].
fn node_priority(seed: u64, v: usize) -> u64 {
    let mut s = seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

impl RcDecomposition {
    /// Peels `g` into rake/compress layers, deterministically from
    /// `(g, seed)`.
    ///
    /// Total work is O(n + m) amortized: each phase scans only the
    /// still-alive nodes, and the alive set shrinks geometrically.
    ///
    /// # Errors
    ///
    /// Returns [`NotATree`] when `g` contains a cycle (any graph that is
    /// not a forest).
    pub fn compute(g: &Graph, seed: u64) -> Result<RcDecomposition, NotATree> {
        if !analysis::is_forest(g) {
            let (_, components) = analysis::components(g);
            return Err(NotATree {
                nodes: g.n(),
                edges: g.m(),
                components,
            });
        }
        let n = g.n();
        let priority: Vec<u64> = (0..n).map(|v| node_priority(seed, v)).collect();
        let mut layer = vec![0u32; n];
        let mut label = vec![RcLabel::Rake; n];
        let mut alive_deg: Vec<usize> = g.degrees().collect();
        let mut alive: Vec<bool> = vec![true; n];
        // The shrinking worklist: scanning only survivors makes the whole
        // peel O(n) amortized under geometric decay.
        let mut frontier: Vec<usize> = (0..n).collect();
        let mut phase = 0u32;
        while !frontier.is_empty() {
            phase += 1;
            // Rake: decisions are taken against the degree snapshot at
            // the start of the phase (collect first, remove after), so
            // the outcome is order-independent — adjacent degree-1 nodes
            // of a 2-node component rake together.
            let raked: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&v| alive_deg[v] <= 1)
                .collect();
            for &v in &raked {
                alive[v] = false;
                layer[v] = phase;
                label[v] = RcLabel::Rake;
            }
            for &v in &raked {
                for u in g.neighbor_ids(v) {
                    if alive[u] {
                        alive_deg[u] -= 1;
                    }
                }
            }
            // Compress: against the post-rake snapshot, a degree-2 node
            // with a strictly locally minimal (priority, id) goes. Two
            // adjacent candidates cannot both be local minima, so the
            // compressed set is independent and simultaneous removal is
            // consistent.
            let compressed: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&v| {
                    alive[v]
                        && alive_deg[v] == 2
                        && g.neighbor_ids(v)
                            .filter(|&u| alive[u])
                            .all(|u| (priority[v], v) < (priority[u], u))
                })
                .collect();
            for &v in &compressed {
                alive[v] = false;
                layer[v] = phase;
                label[v] = RcLabel::Compress;
            }
            for &v in &compressed {
                for u in g.neighbor_ids(v) {
                    if alive[u] {
                        alive_deg[u] -= 1;
                    }
                }
            }
            frontier.retain(|&v| alive[v]);
            debug_assert!(
                phase as usize <= n.max(1),
                "rake-and-compress failed to terminate on a forest"
            );
        }
        Ok(RcDecomposition {
            layer,
            label,
            priority,
            depth: phase,
        })
    }

    /// The 1-based peeling phase that removed node `v`.
    pub fn layer(&self, v: usize) -> u32 {
        self.layer[v]
    }

    /// Whether node `v` was raked or compressed.
    pub fn label(&self, v: usize) -> RcLabel {
        self.label[v]
    }

    /// The seeded priority of node `v` (the compress tie-break; also the
    /// deterministic tie-break the `*/tree-rc` algorithms reuse).
    pub fn priority(&self, v: usize) -> u64 {
        self.priority[v]
    }

    /// Number of peeling phases — the decomposition's depth, O(log n)
    /// with high probability.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.layer.len()
    }

    /// The strict total *removal order* of the peel: phases ascend, the
    /// rake sub-step precedes the compress sub-step within a phase, and
    /// `(priority, id)` breaks ties inside a sub-step. The `*/tree-rc`
    /// algorithms schedule their commits along this order (or its
    /// reverse), so it is the one place the order is defined.
    pub fn before(&self, a: usize, b: usize) -> bool {
        self.order_key(a) < self.order_key(b)
    }

    /// The sortable key behind [`RcDecomposition::before`].
    pub fn order_key(&self, v: usize) -> (u32, u8, u64, usize) {
        let sub = match self.label[v] {
            RcLabel::Rake => 0u8,
            RcLabel::Compress => 1u8,
        };
        (self.layer[v], sub, self.priority[v], v)
    }

    /// Every node index, sorted by the removal order (earliest removed
    /// first).
    pub fn removal_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n()).collect();
        order.sort_unstable_by_key(|&v| self.order_key(v));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::rng::Rng;

    #[test]
    fn path_decomposes_with_logarithmic_depth() {
        let g = gen::path(1024);
        let d = RcDecomposition::compute(&g, 7).expect("path is a tree");
        assert!(d.layer.iter().all(|&l| l >= 1), "every node gets a layer");
        assert_eq!(d.depth, *d.layer.iter().max().unwrap());
        // 4·log2(n) is generous: the expected decay is ≥ 1/3 per phase.
        assert!(
            d.depth() <= 4 * 10 + 4,
            "depth {} is not O(log n) on P_1024",
            d.depth()
        );
    }

    #[test]
    fn star_rakes_in_two_phases() {
        let g = gen::star(64);
        let d = RcDecomposition::compute(&g, 0).expect("star is a tree");
        // Leaves rake in phase 1; the then-isolated hub rakes in phase 2.
        assert_eq!(d.depth(), 2);
        assert!(
            (1..64).all(|v| d.layer(v) == 1 && d.label(v) == RcLabel::Rake),
            "every leaf rakes in phase 1"
        );
        assert_eq!(d.layer(0), 2);
    }

    #[test]
    fn compressed_nodes_form_an_independent_set() {
        let g = gen::path(512);
        let d = RcDecomposition::compute(&g, 3).expect("tree");
        for (e, u, v) in g.edges() {
            let both = d.label(u) == RcLabel::Compress
                && d.label(v) == RcLabel::Compress
                && d.layer(u) == d.layer(v);
            assert!(!both, "edge {e}: adjacent same-phase compressions");
        }
        // A long path must actually exercise the compress sub-step.
        assert!(
            (0..g.n()).any(|v| d.label(v) == RcLabel::Compress),
            "no node was ever compressed on P_512"
        );
    }

    #[test]
    fn deterministic_from_graph_and_seed() {
        let mut rng = Rng::seed_from(11);
        let g = gen::random_tree(300, &mut rng);
        let a = RcDecomposition::compute(&g, 42).unwrap();
        let b = RcDecomposition::compute(&g, 42).unwrap();
        assert_eq!(a, b);
        let c = RcDecomposition::compute(&g, 43).unwrap();
        assert_ne!(
            a.priority, c.priority,
            "different seeds must draw different priorities"
        );
    }

    #[test]
    fn cycles_are_rejected_not_panicked() {
        let g = gen::cycle(12);
        let err = RcDecomposition::compute(&g, 0).expect_err("cycle");
        assert_eq!(
            err,
            NotATree {
                nodes: 12,
                edges: 12,
                components: 1
            }
        );
        assert!(err.to_string().contains("not a tree"));
    }

    #[test]
    fn forests_and_degenerate_sizes_are_accepted() {
        // A forest (two disjoint paths) is fine — rake-and-compress never
        // needs connectivity.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let d = RcDecomposition::compute(&g, 1).expect("forest");
        assert!(d.layer.iter().all(|&l| l >= 1));
        let empty = RcDecomposition::compute(&Graph::empty(0), 1).expect("empty");
        assert_eq!(empty.depth(), 0);
        let single = RcDecomposition::compute(&Graph::empty(1), 1).expect("single");
        assert_eq!((single.depth(), single.layer(0)), (1, 1));
    }

    #[test]
    fn removal_order_is_a_permutation_consistent_with_before() {
        let mut rng = Rng::seed_from(5);
        let g = gen::random_tree(64, &mut rng);
        let d = RcDecomposition::compute(&g, 9).unwrap();
        let order = d.removal_order();
        let mut seen = vec![false; g.n()];
        for &v in &order {
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "order must be a permutation");
        for w in order.windows(2) {
            assert!(d.before(w[0], w[1]));
        }
    }
}
