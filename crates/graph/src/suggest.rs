//! The one "did you mean …" helper shared by every string-keyed registry
//! in the workspace.
//!
//! Algorithm keys (`localavg_core::algo::Registry::suggest`), problem
//! keys (`Problem::suggest`), parameter keys (`ParamError::unknown_key`),
//! and generator keys ([`crate::gen::GenRegistry::suggest`]) all reject
//! unknown names with the same closest-match policy, so a typo in any
//! CLI surface produces the same kind of suggestion. Keeping the policy
//! in one place is deliberate: a registry whose suggestions drift from
//! the others reads like a different tool.

/// Classic two-row Levenshtein distance (ASCII-ish keys, tiny inputs).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `query` by edit distance, or `None` when
/// even the best candidate is too far off to be a plausible typo
/// (distance above half the query length, floored at 2) — garbage input
/// gets no misleading suggestion.
pub fn closest_match(
    candidates: impl Iterator<Item = &'static str>,
    query: &str,
) -> Option<&'static str> {
    let threshold = (query.chars().count() / 2).max(2);
    candidates
        .map(|k| (edit_distance(k, query), k))
        .min()
        .filter(|&(d, _)| d <= threshold)
        .map(|(_, k)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("regular/3", "regullar/3"), 1);
    }

    #[test]
    fn closest_match_accepts_typos_and_rejects_garbage() {
        let keys = ["regular/3", "tree/random", "gnp/0.05"];
        assert_eq!(
            closest_match(keys.iter().copied(), "regullar/3"),
            Some("regular/3")
        );
        assert_eq!(
            closest_match(keys.iter().copied(), "tree/randm"),
            Some("tree/random")
        );
        assert_eq!(closest_match(keys.iter().copied(), "zzzzzz"), None);
        assert_eq!(closest_match(std::iter::empty(), "anything"), None);
    }
}
