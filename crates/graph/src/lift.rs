//! Random lifts of graphs (Amit–Linial–Matoušek \[ALM02\]).
//!
//! A lift `G̃` of order `q` of a base graph `G` replaces every node `v` by a
//! *fiber* of `q` copies `ṽ_1 .. ṽ_q` and every edge `{u, v}` by a perfect
//! matching between the fibers of `u` and `v`. The paper's §4.5 uses
//! *uniformly random* per-edge matchings and proves (Lemma 12) that
//!
//! * the probability that a lifted node lies on a cycle of length `<= ℓ` is
//!   at most `Δ^ℓ / q`, and
//! * lifted cliques have small independence number with high probability.
//!
//! [`lift`] implements exactly that construction. [`Lifted`] keeps the
//! covering map so callers can reason about fibers (the lower-bound crate
//! needs per-cluster statistics on the lifted graph).

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::rng::Rng;

/// A lifted graph together with its covering map.
#[derive(Debug, Clone)]
pub struct Lifted {
    /// The lifted graph on `base.n() * q` nodes.
    pub graph: Graph,
    /// Lift order `q` (fiber size).
    pub q: usize,
    /// `projection[lifted_node] = base_node` — the covering map φ.
    pub projection: Vec<NodeId>,
}

impl Lifted {
    /// All `q` lifted copies of base node `v` (its fiber `φ⁻¹(v)`).
    pub fn fiber(&self, v: NodeId) -> Vec<NodeId> {
        (0..self.q).map(|i| v * self.q + i).collect()
    }

    /// The base node covered by lifted node `x`.
    pub fn project(&self, x: NodeId) -> NodeId {
        self.projection[x]
    }

    /// Number of base nodes.
    pub fn base_n(&self) -> usize {
        self.projection.len() / self.q.max(1)
    }
}

/// Constructs a uniformly random lift of order `q`.
///
/// Lifted node ids are `v * q + i` for base node `v` and copy `i`, so the
/// covering map is `x ↦ x / q`.
///
/// # Panics
///
/// Panics if `q == 0`.
///
/// # Example
///
/// ```
/// use localavg_graph::{gen, lift, rng::Rng};
/// let base = gen::complete(4);
/// let mut rng = Rng::seed_from(11);
/// let lifted = lift::lift(&base, 5, &mut rng);
/// assert_eq!(lifted.graph.n(), 20);
/// assert_eq!(lifted.graph.m(), base.m() * 5);
/// // Lifts preserve degrees:
/// assert!(lifted.graph.degrees().all(|d| d == 3));
/// ```
pub fn lift(base: &Graph, q: usize, rng: &mut Rng) -> Lifted {
    assert!(q >= 1, "lift order q must be >= 1");
    let n = base.n();
    let mut builder = GraphBuilder::with_edge_capacity(n * q, base.m() * q);
    for (_, u, v) in base.edges() {
        // Uniformly random perfect matching between the fibers of u and v:
        // copy i of u matches copy perm[i] of v.
        let perm = rng.permutation(q);
        for (i, &j) in perm.iter().enumerate() {
            builder
                .add_edge(u * q + i, v * q + j)
                .expect("lifted edge is valid");
        }
    }
    let projection = (0..n * q).map(|x| x / q).collect();
    Lifted {
        graph: builder.build(),
        q,
        projection,
    }
}

/// Empirical Lemma-12 probe: the fraction of lifted nodes lying on a cycle
/// of length at most `ell`.
///
/// Lemma 12 upper-bounds the per-node probability by `Δ^ell / q`; the
/// experiments (E13) compare this measurement against the bound as `q`
/// grows.
pub fn short_cycle_fraction(lifted: &Lifted, ell: usize) -> f64 {
    let g = &lifted.graph;
    if g.n() == 0 {
        return 0.0;
    }
    let on_cycle = g
        .nodes()
        .filter(|&v| crate::analysis::shortest_cycle_through(g, v, ell).is_some())
        .count();
    on_cycle as f64 / g.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::gen;

    #[test]
    fn lift_preserves_degrees_and_sizes() {
        let mut rng = Rng::seed_from(42);
        let base = gen::petersen();
        let lifted = lift(&base, 4, &mut rng);
        assert_eq!(lifted.graph.n(), 40);
        assert_eq!(lifted.graph.m(), base.m() * 4);
        for x in lifted.graph.nodes() {
            assert_eq!(lifted.graph.degree(x), base.degree(lifted.project(x)));
        }
    }

    #[test]
    fn lift_is_a_covering_map() {
        // For every lifted node x and every base neighbor w of φ(x), x has
        // exactly one neighbor in the fiber of w.
        let mut rng = Rng::seed_from(7);
        let base = gen::complete(5);
        let lifted = lift(&base, 3, &mut rng);
        for x in lifted.graph.nodes() {
            let v = lifted.project(x);
            for w in base.neighbor_ids(v) {
                let cnt = lifted
                    .graph
                    .neighbor_ids(x)
                    .filter(|&y| lifted.project(y) == w)
                    .count();
                assert_eq!(cnt, 1, "covering map must be a local bijection");
            }
        }
    }

    #[test]
    fn order_one_lift_is_base() {
        let mut rng = Rng::seed_from(1);
        let base = gen::cycle(6);
        let lifted = lift(&base, 1, &mut rng);
        assert_eq!(lifted.graph.n(), base.n());
        assert_eq!(lifted.graph.m(), base.m());
        for (_, u, v) in base.edges() {
            assert!(lifted.graph.has_edge(u, v));
        }
    }

    #[test]
    fn fiber_contents() {
        let mut rng = Rng::seed_from(2);
        let base = gen::path(3);
        let lifted = lift(&base, 4, &mut rng);
        assert_eq!(lifted.fiber(1), vec![4, 5, 6, 7]);
        assert_eq!(lifted.base_n(), 3);
        for x in lifted.fiber(2) {
            assert_eq!(lifted.project(x), 2);
        }
    }

    #[test]
    fn lifts_satisfy_lemma12_cycle_bound() {
        // K_4 is full of triangles; Lemma 12 bounds the per-node probability
        // of lying on a cycle of length <= ell by Δ^ell / q.
        let base = gen::complete(4); // Δ = 3
        for (q, ell) in [(8usize, 3usize), (32, 3), (128, 3), (128, 5)] {
            let mut rng = Rng::seed_from(3 + q as u64);
            let lifted = lift(&base, q, &mut rng);
            let measured = short_cycle_fraction(&lifted, ell);
            let bound = (3f64).powi(ell as i32) / q as f64;
            // The expectation bound holds per node; allow sampling slack.
            assert!(
                measured <= (bound * 1.5).min(1.0) + 0.1,
                "q={q} ell={ell}: measured {measured} vs Lemma 12 bound {bound}"
            );
        }
        // Larger lifts should be mostly triangle-free.
        let mut rng = Rng::seed_from(99);
        let big = lift(&base, 256, &mut rng);
        assert!(short_cycle_fraction(&big, 3) < 0.2);
    }

    #[test]
    fn lift_of_connected_base_components_bounded() {
        // A lift of a connected graph has at most q components.
        let base = gen::cycle(5);
        let mut rng = Rng::seed_from(9);
        let lifted = lift(&base, 6, &mut rng);
        let (_, c) = analysis::components(&lifted.graph);
        assert!(c <= 6);
    }
}
