//! Golden-file and determinism tests for the sweep engine and emitters.
//!
//! The golden files under `tests/golden/` pin the exact bytes of the
//! JSON/CSV emitters for a fixed tiny spec. If an intentional change to
//! the engine, the seeding discipline, or the schema shifts the bytes,
//! regenerate them with:
//!
//! ```text
//! BLESS=1 cargo test -p localavg-bench --test sweep_golden
//! ```
//!
//! and review the diff like any other code change.

use localavg_bench::{emit, sweep};
use localavg_core::algo::{registry, RunSpec, TranscriptPolicy, Workspace};
use localavg_graph::gen;

/// The pinned spec: small enough to run in milliseconds, wide enough to
/// exercise node problems, edge problems, deterministic seed collapsing,
/// and the min-degree domain filter (orientation on regular/3 only).
fn golden_spec() -> sweep::SweepSpec {
    sweep::SweepSpec {
        algorithms: vec![
            "mis/luby".into(),
            "mis/greedy".into(),
            "matching/luby".into(),
            "orientation/rand".into(),
        ],
        generators: vec!["regular/3".into(), "tree/random".into()],
        sizes: vec![24, 48],
        seeds: 2,
        master_seed: 2022,
        params: Vec::new(),
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares emitted bytes against a golden file; `BLESS=1` rewrites it.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e}); run with BLESS=1 to create", name));
    assert_eq!(
        expected, actual,
        "{name} drifted from the golden bytes; if intentional, re-bless with BLESS=1"
    );
}

#[test]
fn json_emitter_matches_golden_bytes() {
    let report = sweep::run(&golden_spec(), 2).expect("sweep runs");
    check_golden("sweep.json", &emit::to_json(&report));
}

#[test]
fn csv_emitters_match_golden_bytes() {
    let report = sweep::run(&golden_spec(), 2).expect("sweep runs");
    check_golden("sweep-cells.csv", &emit::cells_csv(&report));
    check_golden("sweep-groups.csv", &emit::groups_csv(&report));
}

#[test]
fn emitted_bytes_are_independent_of_thread_count() {
    let spec = golden_spec();
    let sequential = sweep::run(&spec, 1).expect("sequential sweep");
    let parallel = sweep::run(&spec, 8).expect("parallel sweep");
    assert_eq!(
        emit::to_json(&sequential),
        emit::to_json(&parallel),
        "JSON bytes differ between --threads 1 and --threads 8"
    );
    assert_eq!(emit::cells_csv(&sequential), emit::cells_csv(&parallel));
    assert_eq!(emit::groups_csv(&sequential), emit::groups_csv(&parallel));
}

#[test]
fn lean_policies_reproduce_the_golden_metrics() {
    // The committed golden bytes pin the Full-policy sweep. Re-executing
    // every golden cell under CompletionsOnly/None (with a reused
    // workspace — the sweep's own configuration) must reproduce each
    // cell's metrics bit for bit: the policy drops bookkeeping, never
    // measurements.
    let spec = golden_spec();
    let report = sweep::run(&spec, 2).expect("sweep runs");
    // Golden guard: the report we compare against is the byte-pinned one.
    check_golden("sweep.json", &emit::to_json(&report));
    let mut ws = Workspace::new();
    // One instance per (generator, n), shared across cells and policies
    // — the sweep's own one-instance-per-group discipline.
    let mut graphs: std::collections::BTreeMap<(&str, usize), localavg_graph::Graph> =
        std::collections::BTreeMap::new();
    for policy in [TranscriptPolicy::CompletionsOnly, TranscriptPolicy::None] {
        for cell in &report.cells {
            let g = graphs
                .entry((cell.cell.generator, cell.cell.n))
                .or_insert_with(|| {
                    gen::registry()
                        .get(cell.cell.generator)
                        .expect("registered family")
                        .build(
                            cell.cell.n,
                            sweep::graph_seed(spec.master_seed, cell.cell.generator, cell.cell.n),
                        )
                        .expect("instance")
                });
            let run = registry()
                .get(cell.cell.algorithm)
                .expect("registered")
                .execute_in(
                    g,
                    &RunSpec::new(sweep::algo_seed(spec.master_seed, &cell.cell))
                        .with_transcript(policy),
                    &mut ws,
                );
            let times = run.completion_times(g);
            let label = format!(
                "{}/{} n={} seed={} under {policy:?}",
                cell.cell.algorithm, cell.cell.generator, cell.cell.n, cell.cell.seed
            );
            assert_eq!(
                times.node_mean().to_bits(),
                cell.node_averaged.to_bits(),
                "{label}: node_averaged"
            );
            assert_eq!(
                times.edge_mean().to_bits(),
                cell.edge_averaged.to_bits(),
                "{label}: edge_averaged"
            );
            assert_eq!(
                times.edge_one_endpoint_mean().to_bits(),
                cell.edge_averaged_one_endpoint.to_bits(),
                "{label}: one-endpoint convention"
            );
            assert_eq!(times.node_max(), cell.node_worst, "{label}: node_worst");
            assert_eq!(run.worst_case(), cell.rounds, "{label}: rounds");
        }
    }
}

#[test]
fn golden_json_is_parseable_by_a_naive_scanner() {
    // The emitter is hand-rolled; sanity-check its bracket/quote balance
    // on the real document (string contents here never contain braces).
    let report = sweep::run(&golden_spec(), 2).expect("sweep runs");
    let json = emit::to_json(&report);
    let mut depth = 0i64;
    let mut in_str = false;
    let mut prev_escape = false;
    for c in json.chars() {
        if in_str {
            if prev_escape {
                prev_escape = false;
            } else if c == '\\' {
                prev_escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced JSON");
    }
    assert_eq!(depth, 0, "unbalanced JSON document");
    assert!(!in_str, "unterminated string");
}
