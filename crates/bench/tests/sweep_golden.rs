//! Golden-file and determinism tests for the sweep engine and emitters.
//!
//! The golden files under `tests/golden/` pin the exact bytes of the
//! JSON/CSV emitters for a fixed tiny spec. If an intentional change to
//! the engine, the seeding discipline, or the schema shifts the bytes,
//! regenerate them with:
//!
//! ```text
//! BLESS=1 cargo test -p localavg-bench --test sweep_golden
//! ```
//!
//! and review the diff like any other code change.

use localavg_bench::{emit, sweep};

/// The pinned spec: small enough to run in milliseconds, wide enough to
/// exercise node problems, edge problems, deterministic seed collapsing,
/// and the min-degree domain filter (orientation on regular/3 only).
fn golden_spec() -> sweep::SweepSpec {
    sweep::SweepSpec {
        algorithms: vec![
            "mis/luby".into(),
            "mis/greedy".into(),
            "matching/luby".into(),
            "orientation/rand".into(),
        ],
        generators: vec!["regular/3".into(), "tree/random".into()],
        sizes: vec![24, 48],
        seeds: 2,
        master_seed: 2022,
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares emitted bytes against a golden file; `BLESS=1` rewrites it.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e}); run with BLESS=1 to create", name));
    assert_eq!(
        expected, actual,
        "{name} drifted from the golden bytes; if intentional, re-bless with BLESS=1"
    );
}

#[test]
fn json_emitter_matches_golden_bytes() {
    let report = sweep::run(&golden_spec(), 2).expect("sweep runs");
    check_golden("sweep.json", &emit::to_json(&report));
}

#[test]
fn csv_emitters_match_golden_bytes() {
    let report = sweep::run(&golden_spec(), 2).expect("sweep runs");
    check_golden("sweep-cells.csv", &emit::cells_csv(&report));
    check_golden("sweep-groups.csv", &emit::groups_csv(&report));
}

#[test]
fn emitted_bytes_are_independent_of_thread_count() {
    let spec = golden_spec();
    let sequential = sweep::run(&spec, 1).expect("sequential sweep");
    let parallel = sweep::run(&spec, 8).expect("parallel sweep");
    assert_eq!(
        emit::to_json(&sequential),
        emit::to_json(&parallel),
        "JSON bytes differ between --threads 1 and --threads 8"
    );
    assert_eq!(emit::cells_csv(&sequential), emit::cells_csv(&parallel));
    assert_eq!(emit::groups_csv(&sequential), emit::groups_csv(&parallel));
}

#[test]
fn golden_json_is_parseable_by_a_naive_scanner() {
    // The emitter is hand-rolled; sanity-check its bracket/quote balance
    // on the real document (string contents here never contain braces).
    let report = sweep::run(&golden_spec(), 2).expect("sweep runs");
    let json = emit::to_json(&report);
    let mut depth = 0i64;
    let mut in_str = false;
    let mut prev_escape = false;
    for c in json.chars() {
        if in_str {
            if prev_escape {
                prev_escape = false;
            } else if c == '\\' {
                prev_escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced JSON");
    }
    assert_eq!(depth, 0, "unbalanced JSON document");
    assert!(!in_str, "unterminated string");
}
