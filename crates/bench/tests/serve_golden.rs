//! End-to-end tests for the `exp serve` subsystem (DESIGN.md §9).
//!
//! Each test starts a real daemon on an ephemeral loopback port and
//! talks to it over TCP with the library client. The central claims:
//!
//! * served result lines are **byte-identical** to the committed
//!   `tests/golden/sweep.json` cell lines for every golden cell;
//! * resubmitting an already-served batch answers entirely from the
//!   content-addressed cache — zero additional algorithm executions,
//!   verified by the daemon's own counters;
//! * two clients submitting overlapping batches concurrently both
//!   receive complete, identical result sets while shared cells
//!   execute only once (single-flight coalescing);
//! * `shutdown` stops the daemon cleanly and `run` returns.

use localavg_bench::cell::CellKey;
use localavg_bench::serve::{self, Client, ServeConfig};
use localavg_bench::sweep;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// The sweep goldens' pinned spec (see `tests/sweep_golden.rs`).
fn golden_spec() -> sweep::SweepSpec {
    sweep::SweepSpec {
        algorithms: vec![
            "mis/luby".into(),
            "mis/greedy".into(),
            "matching/luby".into(),
            "orientation/rand".into(),
        ],
        generators: vec!["regular/3".into(), "tree/random".into()],
        sizes: vec![24, 48],
        seeds: 2,
        master_seed: 2022,
        params: Vec::new(),
    }
}

fn golden_cells() -> Vec<CellKey> {
    golden_spec()
        .cells()
        .expect("golden spec expands")
        .iter()
        .map(|c| c.key())
        .collect()
}

/// The per-cell lines of the committed `sweep.json` golden file, in
/// expansion order: one line per cell object, indentation and the
/// array-separator commas stripped — exactly the bytes
/// `emit::cell_json` produced when the file was blessed.
fn golden_file_cell_lines() -> Vec<String> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sweep.json");
    let text = std::fs::read_to_string(&path).expect("golden sweep.json is committed");
    let mut lines = Vec::new();
    let mut in_cells = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed == "\"cells\": [" {
            in_cells = true;
            continue;
        }
        if in_cells {
            if trimmed == "]," || trimmed == "]" {
                break;
            }
            lines.push(trimmed.strip_suffix(',').unwrap_or(trimmed).to_string());
        }
    }
    lines
}

/// Starts a daemon on an ephemeral port; the handle resolves when the
/// daemon has fully shut down.
fn start_server(master_seed: u64) -> (JoinHandle<std::io::Result<()>>, SocketAddr) {
    let cfg = ServeConfig {
        threads: 2,
        master_seed,
        ..ServeConfig::default()
    };
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        serve::run(&cfg, move |addr| {
            tx.send(addr).expect("report the bound address");
        })
    });
    let addr = rx.recv().expect("daemon came up");
    (handle, addr)
}

fn shutdown(handle: JoinHandle<std::io::Result<()>>, addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("acknowledged");
    handle
        .join()
        .expect("server thread exits")
        .expect("clean shutdown");
}

#[test]
fn served_lines_are_byte_identical_to_the_sweep_golden() {
    let (handle, addr) = start_server(2022);
    let cells = golden_cells();
    let mut client = Client::connect(addr).expect("connect");
    let outcome = client.submit(&cells).expect("submit");
    assert_eq!(outcome.errors, 0, "golden cells must all succeed");
    assert_eq!(outcome.cells, cells.len());

    let golden = golden_file_cell_lines();
    assert_eq!(
        golden.len(),
        cells.len(),
        "golden file cell count matches the spec expansion"
    );
    for (i, (served, expected)) in outcome.lines.iter().zip(&golden).enumerate() {
        assert_eq!(
            served, expected,
            "cell {i} ({}) drifted from the golden bytes",
            cells[i]
        );
    }
    shutdown(handle, addr);
}

#[test]
fn resubmission_is_answered_entirely_from_the_cache() {
    let (handle, addr) = start_server(2022);
    let cells = golden_cells();
    let mut client = Client::connect(addr).expect("connect");

    let first = client.submit(&cells).expect("cold submit");
    let cold = client.stats().expect("stats");
    assert_eq!(cold.executed as usize, cells.len(), "every cell ran once");
    assert_eq!(cold.errors, 0);

    let second = client.submit(&cells).expect("warm submit");
    let warm = client.stats().expect("stats");
    assert_eq!(first.lines, second.lines, "warm bytes identical to cold");
    assert_eq!(
        warm.executed, cold.executed,
        "resubmission must perform zero algorithm executions"
    );
    assert_eq!(
        warm.hits - cold.hits,
        cells.len() as u64,
        "every resubmitted cell is a cache hit"
    );
    shutdown(handle, addr);
}

#[test]
fn concurrent_overlapping_batches_get_identical_complete_results() {
    let (handle, addr) = start_server(2022);
    let cells = golden_cells();
    let mid = cells.len() / 2;
    // Overlapping halves: both clients share the middle third.
    let a: Vec<CellKey> = cells[..mid + cells.len() / 3].to_vec();
    let b: Vec<CellKey> = cells[mid - cells.len() / 3..].to_vec();
    let (res_a, res_b) = std::thread::scope(|s| {
        let ta = s.spawn(|| {
            Client::connect(addr)
                .expect("connect a")
                .submit(&a)
                .expect("submit a")
        });
        let tb = s.spawn(|| {
            Client::connect(addr)
                .expect("connect b")
                .submit(&b)
                .expect("submit b")
        });
        (ta.join().expect("a"), tb.join().expect("b"))
    });
    assert_eq!(res_a.errors, 0);
    assert_eq!(res_b.errors, 0);
    assert_eq!(res_a.lines.len(), a.len(), "client a got a complete set");
    assert_eq!(res_b.lines.len(), b.len(), "client b got a complete set");

    // Shared cells produced identical bytes for both clients, and no
    // distinct cell executed more than once despite the race.
    for (i, key) in a.iter().enumerate() {
        if let Some(j) = b.iter().position(|k| k == key) {
            assert_eq!(res_a.lines[i], res_b.lines[j], "shared cell {key} differs");
        }
    }
    let mut distinct: Vec<&CellKey> = a.iter().chain(&b).collect();
    distinct.sort_by_key(|k| k.canonical());
    distinct.dedup_by_key(|k| k.canonical());
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.executed as usize,
        distinct.len(),
        "concurrent duplicates must coalesce to one execution each"
    );
    shutdown(handle, addr);
}

#[test]
fn protocol_errors_are_reported_per_cell_and_do_not_poison_the_batch() {
    let (handle, addr) = start_server(2022);
    let mut cells = golden_cells();
    cells.truncate(2);
    // A domain violation: sinkless orientation on a tree (leaves).
    cells.insert(1, CellKey::new("tree/random", 24, 0, "orientation/rand"));
    let mut client = Client::connect(addr).expect("connect");
    let outcome = client.submit(&cells).expect("submit");
    assert_eq!(outcome.cells, 3);
    assert_eq!(outcome.errors, 1);
    assert!(
        outcome.lines[1].starts_with("{\"error\""),
        "got: {}",
        outcome.lines[1]
    );
    assert!(outcome.lines[1].contains("\"index\": 1"));
    assert!(outcome.lines[0].starts_with("{\"algorithm\""));
    assert!(outcome.lines[2].starts_with("{\"algorithm\""));
    shutdown(handle, addr);
}

#[test]
fn ping_and_stats_work_on_a_fresh_daemon() {
    let (handle, addr) = start_server(7);
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("pong");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.master_seed, 7);
    assert_eq!(stats.served, 0);
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.threads, 2);
    shutdown(handle, addr);
}
