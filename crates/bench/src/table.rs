//! Minimal markdown table rendering for experiment output.

use std::fmt;

/// A titled table of results.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier and description.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-text notes shown under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}\n", self.title)?;
        writeln!(f, "| {} |", self.header.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        for note in &self.notes {
            writeln!(f, "\n> {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0 — demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("### E0 — demo"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_format() {
        assert_eq!(f2(1.234), "1.23");
    }
}
