//! Zero-dependency JSON and CSV emitters for [`SweepReport`]
//! (DESIGN.md §6).
//!
//! The emitters are hand-rolled (the workspace is std-only) and
//! **byte-deterministic**: the output is a pure function of the report —
//! fixed key order, fixed row order (cell expansion order), and floats
//! rendered with Rust's shortest-round-trip formatting, so a parallel and
//! a sequential sweep of the same spec serialize to identical bytes.
//!
//! # JSON schema (`localavg-sweep/v1`)
//!
//! ```json
//! {
//!   "schema": "localavg-sweep/v1",
//!   "spec": { "algorithms": [..], "generators": [..], "sizes": [..],
//!             "seeds": 2, "master_seed": 0 },
//!   "cells": [ { "algorithm": "mis/luby", "generator": "regular/4",
//!                "n": 64, "seed": 0,
//!                "graph": { "nodes": 64, "edges": 128,
//!                           "min_degree": 4, "max_degree": 4 },
//!                "metrics": { "node_averaged": 2.5, "edge_averaged": 3.1,
//!                             "edge_averaged_one_endpoint": 1.9,
//!                             "node_worst": 9, "rounds": 12,
//!                             "peak_message_bits": 64 } } ],
//!   "groups": [ { "algorithm": "mis/luby", "generator": "regular/4",
//!                 "n": 64, "runs": 2, "node_averaged": 2.4,
//!                 "edge_averaged": 3.0, "node_expected": 5.5,
//!                 "edge_expected": 6.0, "worst_case": 11.5,
//!                 "chain_holds": true,
//!                 "distributions": {
//!                   "node_time": { "count": 128, "mean": 2.4, "p50": 2,
//!                                  "p90": 5, "p99": 8, "max": 9,
//!                                  "histogram": [4, 30, 60, 30, 4] },
//!                   "edge_time": { ... },
//!                   "node_bits_sent": { ... } },
//!                 "topology": {
//!                   "nodes": 64, "edges": 128, "min_degree": 4,
//!                   "max_degree": 4, "mean_degree": 4,
//!                   "degree_histogram": [0, 0, 0, 64],
//!                   "degree_assortativity": 0, "components": 1 } } ]
//! }
//! ```
//!
//! The `distributions` and `topology` objects are **additive** schema
//! extensions: cell records are unchanged, and readers written against
//! the original `localavg-sweep/v1` group shape keep working because
//! every pre-existing key keeps its position and meaning. `node_time`
//! and `edge_time` pool Definition 1 completion times across the
//! group's runs; `node_bits_sent` pools per-node sent volume and is
//! present only when every run in the group carried a full audit
//! transcript. A cell's `peak_message_bits` is `null` when its run was
//! not audited (never the case in a sweep document; `exp serve` can
//! serve such cells under lean policies).
//!
//! The CSV emitters flatten the same data: [`cells_csv`] is one row per
//! cell, [`groups_csv`] one row per (algorithm, generator, size) group.

use crate::sweep::SweepReport;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (quotes not included).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number token using Rust's
/// shortest-round-trip formatting (deterministic).
///
/// # Panics
///
/// Panics on non-finite input. No sweep metric produces NaN or an
/// infinity — every empty-set mean is pinned to `0.0` upstream (see
/// `localavg_core::metrics::mean`) — so a non-finite value reaching the
/// emitter is a bug in the metrics layer, and silently writing `null`
/// (the old behavior) would hide it from every downstream reader.
fn json_f64(x: f64) -> String {
    assert!(
        x.is_finite(),
        "non-finite value {x} reached the JSON emitter"
    );
    format!("{x}")
}

fn json_str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(", "))
}

/// One cell row of the `localavg-sweep/v1` schema, borrowed by key.
///
/// This is the *wire form* of a measured cell: [`to_json`] renders one
/// per sweep cell, and `exp serve` streams exactly the same object per
/// served result — byte identity between the two is structural, not
/// coincidental, because both go through [`cell_json`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRow<'a> {
    /// Algorithm registry key.
    pub algorithm: &'a str,
    /// Generator registry key.
    pub generator: &'a str,
    /// Target size.
    pub n: usize,
    /// Seed index.
    pub seed: u64,
    /// Realized node count.
    pub nodes: usize,
    /// Realized edge count.
    pub edges: usize,
    /// Minimum degree of the instance.
    pub min_degree: usize,
    /// Maximum degree of the instance.
    pub max_degree: usize,
    /// `AVG_V` (Definition 1).
    pub node_averaged: f64,
    /// `AVG_E` (Definition 1).
    pub edge_averaged: f64,
    /// Edge average under the one-endpoint convention (fn. 2).
    pub edge_averaged_one_endpoint: f64,
    /// Maximum node completion time.
    pub node_worst: usize,
    /// Total rounds until global termination.
    pub rounds: usize,
    /// Peak CONGEST message size, in bits; `None` (rendered as JSON
    /// `null`) when the transcript policy skipped the audit pass.
    pub peak_message_bits: Option<usize>,
}

/// Renders one `localavg-sweep/v1` cell object (no indent, no trailing
/// comma) — the single code path behind both the sweep JSON document and
/// the `exp serve` result stream.
pub fn cell_json(row: &CellRow<'_>) -> String {
    format!(
        "{{\"algorithm\": \"{}\", \"generator\": \"{}\", \"n\": {}, \"seed\": {}, \
         \"graph\": {{\"nodes\": {}, \"edges\": {}, \"min_degree\": {}, \"max_degree\": {}}}, \
         \"metrics\": {{\"node_averaged\": {}, \"edge_averaged\": {}, \
         \"edge_averaged_one_endpoint\": {}, \"node_worst\": {}, \"rounds\": {}, \
         \"peak_message_bits\": {}}}}}",
        json_escape(row.algorithm),
        json_escape(row.generator),
        row.n,
        row.seed,
        row.nodes,
        row.edges,
        row.min_degree,
        row.max_degree,
        json_f64(row.node_averaged),
        json_f64(row.edge_averaged),
        json_f64(row.edge_averaged_one_endpoint),
        row.node_worst,
        row.rounds,
        row.peak_message_bits
            .map_or_else(|| "null".to_string(), |b| b.to_string())
    )
}

/// Renders a [`Distribution`] summary object (fixed key order).
fn distribution_json(d: &localavg_core::metrics::Distribution) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}, \
         \"histogram\": [{}]}}",
        d.count,
        json_f64(d.mean),
        d.p50,
        d.p90,
        d.p99,
        d.max,
        d.histogram
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// Renders a group's pooled [`GroupDistributions`](crate::sweep::GroupDistributions).
fn distributions_json(d: &crate::sweep::GroupDistributions) -> String {
    let mut out = format!(
        "{{\"node_time\": {}, \"edge_time\": {}",
        distribution_json(&d.node_time),
        distribution_json(&d.edge_time)
    );
    if let Some(bits) = &d.node_bits_sent {
        let _ = write!(out, ", \"node_bits_sent\": {}", distribution_json(bits));
    }
    out.push('}');
    out
}

/// Renders a group instance's [`TopologyStats`](localavg_graph::analysis::TopologyStats).
fn topology_json(t: &localavg_graph::analysis::TopologyStats) -> String {
    format!(
        "{{\"nodes\": {}, \"edges\": {}, \"min_degree\": {}, \"max_degree\": {}, \
         \"mean_degree\": {}, \"degree_histogram\": [{}], \"degree_assortativity\": {}, \
         \"components\": {}}}",
        t.nodes,
        t.edges,
        t.min_degree,
        t.max_degree,
        json_f64(t.mean_degree),
        t.degree_histogram
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        json_f64(t.degree_assortativity),
        t.components
    )
}

/// Serializes a report to the `localavg-sweep/v1` JSON document.
pub fn to_json(report: &SweepReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"localavg-sweep/v1\",\n");
    let spec = &report.spec;
    let _ = write!(
        out,
        "  \"spec\": {{\n    \"algorithms\": {},\n    \"generators\": {},\n    \"sizes\": [{}],\n    \"seeds\": {},\n    \"master_seed\": {}\n  }},\n",
        json_str_array(&spec.algorithms),
        json_str_array(&spec.generators),
        spec.sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        spec.seeds,
        spec.master_seed
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {}{}",
            cell_json(&c.row()),
            if i + 1 < report.cells.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"groups\": [\n");
    for (i, g) in report.groups.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"algorithm\": \"{}\", \"generator\": \"{}\", \"n\": {}, \"runs\": {}, \
             \"node_averaged\": {}, \"edge_averaged\": {}, \"node_expected\": {}, \
             \"edge_expected\": {}, \"worst_case\": {}, \"chain_holds\": {}, \
             \"distributions\": {}, \"topology\": {}}}{}",
            json_escape(&g.algorithm),
            json_escape(&g.generator),
            g.n,
            g.runs,
            json_f64(g.node_averaged),
            json_f64(g.edge_averaged),
            json_f64(g.node_expected),
            json_f64(g.edge_expected),
            json_f64(g.worst_case),
            g.chain_holds,
            distributions_json(&g.distributions),
            topology_json(&g.topology),
            if i + 1 < report.groups.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Quotes a CSV field when it contains a separator, quote, or newline
/// (RFC 4180 rules; registry keys normally pass through untouched).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One CSV row per cell.
pub fn cells_csv(report: &SweepReport) -> String {
    let mut out = String::from(
        "algorithm,generator,n,seed,nodes,edges,min_degree,max_degree,\
         node_averaged,edge_averaged,edge_averaged_one_endpoint,node_worst,rounds,peak_message_bits\n",
    );
    for c in &report.cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_field(c.cell.algorithm),
            csv_field(c.cell.generator),
            c.cell.n,
            c.cell.seed,
            c.nodes,
            c.edges,
            c.min_degree,
            c.max_degree,
            c.node_averaged,
            c.edge_averaged,
            c.edge_averaged_one_endpoint,
            c.node_worst,
            c.rounds,
            // Unaudited cells leave the column empty (sweeps always
            // audit, so the committed goldens never exercise this arm).
            c.peak_message_bits
                .map_or_else(String::new, |b| b.to_string())
        );
    }
    out
}

/// One CSV row per (algorithm, generator, size) group aggregate.
pub fn groups_csv(report: &SweepReport) -> String {
    let mut out = String::from(
        "algorithm,generator,n,runs,node_averaged,edge_averaged,\
         node_expected,edge_expected,worst_case,chain_holds\n",
    );
    for g in &report.groups {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            csv_field(&g.algorithm),
            csv_field(&g.generator),
            g.n,
            g.runs,
            g.node_averaged,
            g.edge_averaged,
            g.node_expected,
            g.edge_expected,
            g.worst_case,
            g.chain_holds
        );
    }
    out
}

/// Renders the group aggregates as a markdown [`crate::Table`] — the
/// human-readable view `exp sweep` prints alongside the machine output.
pub fn groups_table(report: &SweepReport) -> crate::Table {
    let mut t = crate::Table::new(
        "Sweep aggregates (per algorithm × family × size, over the seed axis)",
        &[
            "algorithm",
            "family",
            "n",
            "runs",
            "node-avg",
            "edge-avg",
            "EXP_V",
            "worst",
            "chain",
        ],
    );
    for g in &report.groups {
        t.row(vec![
            g.algorithm.clone(),
            g.generator.clone(),
            g.n.to_string(),
            g.runs.to_string(),
            crate::table::f2(g.node_averaged),
            crate::table::f2(g.edge_averaged),
            crate::table::f2(g.node_expected),
            crate::table::f2(g.worst_case),
            if g.chain_holds { "ok" } else { "BROKEN" }.to_string(),
        ]);
    }
    t.note("Each group runs every seed on one fixed instance, so EXP_V estimates Appendix A's expected complexity; `chain` checks AVG ≤ AVG^w ≤ EXP ≤ WORST.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run, SweepSpec};

    fn tiny_report() -> SweepReport {
        let spec = SweepSpec {
            algorithms: vec!["mis/greedy".into(), "mis/luby".into()],
            generators: vec!["path".into()],
            sizes: vec![16],
            seeds: 2,
            master_seed: 1,
            params: Vec::new(),
        };
        run(&spec, 2).unwrap()
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain/key"), "plain/key");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_numbers() {
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(-0.75), "-0.75");
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    fn json_rejects_nan() {
        let _ = json_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    fn json_rejects_infinity() {
        let _ = json_f64(f64::NEG_INFINITY);
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("mis/luby"), "mis/luby");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_document_shape() {
        let report = tiny_report();
        let json = to_json(&report);
        assert!(json.starts_with("{\n  \"schema\": \"localavg-sweep/v1\""));
        assert!(json.ends_with("  ]\n}\n"));
        assert_eq!(json.matches("\"graph\":").count(), report.cells.len());
        assert_eq!(
            json.matches("\"chain_holds\":").count(),
            report.groups.len()
        );
        // Every group record carries the additive v1 extensions, and the
        // sweep engine always audits, so the volume distribution is
        // present in every group too.
        assert_eq!(
            json.matches("\"distributions\":").count(),
            report.groups.len()
        );
        assert_eq!(json.matches("\"topology\":").count(), report.groups.len());
        assert_eq!(
            json.matches("\"node_bits_sent\":").count(),
            report.groups.len()
        );
        assert!(!json.contains("NaN") && !json.contains("Infinity"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_row_counts() {
        let report = tiny_report();
        let cells = cells_csv(&report);
        assert_eq!(cells.lines().count(), report.cells.len() + 1);
        assert!(cells.starts_with("algorithm,generator,n,seed,"));
        let groups = groups_csv(&report);
        assert_eq!(groups.lines().count(), report.groups.len() + 1);
        for line in cells.lines().skip(1) {
            assert_eq!(line.split(',').count(), 14, "bad row: {line}");
        }
    }

    #[test]
    fn unaudited_cells_render_a_null_peak() {
        let report = tiny_report();
        let mut row = report.cells[0].row();
        assert!(
            !cell_json(&row).contains("null"),
            "audited cells render a numeric peak"
        );
        row.peak_message_bits = None;
        assert!(cell_json(&row).ends_with("\"peak_message_bits\": null}}"));
        // The CSV column is empty rather than a fake zero.
        let mut unaudited = report.clone();
        unaudited.cells[0].peak_message_bits = None;
        let line = cells_csv(&unaudited).lines().nth(1).unwrap().to_string();
        assert!(line.ends_with(','), "empty trailing column: {line}");
        assert_eq!(line.split(',').count(), 14);
    }

    #[test]
    fn distribution_and_topology_objects_are_well_formed() {
        let report = tiny_report();
        let g = &report.groups[0];
        let d = distributions_json(&g.distributions);
        assert!(d.starts_with("{\"node_time\": {\"count\": "));
        assert!(d.contains("\"edge_time\": "));
        assert!(d.contains("\"node_bits_sent\": "), "sweeps always audit");
        let t = topology_json(&g.topology);
        assert!(t.starts_with("{\"nodes\": 16, \"edges\": 15, "));
        assert!(t.contains("\"degree_assortativity\": "));
        assert!(t.ends_with("\"components\": 1}"));
        for s in [d, t] {
            assert_eq!(s.matches('{').count(), s.matches('}').count());
            assert_eq!(s.matches('[').count(), s.matches(']').count());
        }
    }

    #[test]
    fn groups_table_renders() {
        let report = tiny_report();
        let t = groups_table(&report);
        assert_eq!(t.rows.len(), report.groups.len());
        assert!(t.to_string().contains("mis/luby"));
    }
}
