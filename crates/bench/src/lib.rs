//! # localavg-bench — experiment harness and sweep engine
//!
//! Two measurement front ends share the workspace's unified algorithm
//! registry:
//!
//! * [`experiments`] — one experiment per theorem/figure of the paper
//!   (see DESIGN.md §5 for the index). Every experiment is a pure
//!   function returning a [`Table`]; the `exp` binary prints them as
//!   markdown (the rows EXPERIMENTS.md records), and `cargo bench` times
//!   quick-scale versions with the std-only harness.
//! * [`sweep`] + [`emit`] — the sharded parallel sweep engine
//!   (DESIGN.md §6): a [`sweep::SweepSpec`] grid of algorithms × named
//!   graph families × sizes × seeds, run across `std::thread::scope`
//!   workers with byte-identical output at any thread count, serialized
//!   to JSON/CSV by the zero-dependency emitters (`exp sweep`).
//!
//! Both resolve graph families through [`generators`] — the composed
//! registry joining `localavg_graph::gen::registry()` with the
//! lower-bound hard instances of `localavg_lowerbound::families` — and
//! the [`fuzz`] module (`exp fuzz`, DESIGN.md §8) differentially
//! verifies the whole stack against the `localavg_core::check` oracle.
//!
//! Every front end names a unit of work by the same canonical
//! [`cell::CellKey`] tuple, and the [`serve`] subsystem (`exp serve` /
//! `exp submit`, DESIGN.md §9) exposes the sweep's cells as a
//! long-running TCP service with a content-addressed result cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_engine;
pub mod cell;
pub mod cli;
pub mod emit;
pub mod experiments;
pub mod fuzz;
pub mod generators;
pub mod serve;
pub mod sweep;
pub mod table;

pub use table::Table;
