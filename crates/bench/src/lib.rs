//! # localavg-bench — experiment harness
//!
//! One experiment per theorem/figure of the paper (see DESIGN.md §5 for
//! the index). Every experiment is a pure function returning a [`Table`];
//! the `exp` binary prints them as markdown (the rows EXPERIMENTS.md
//! records), and `cargo bench` runs quick-scale versions under Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;
