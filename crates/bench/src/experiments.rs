//! The per-theorem experiments (DESIGN.md §5 index).
//!
//! Every function is deterministic given its scale and reuses the public
//! APIs of the workspace crates. `Scale::Quick` keeps each experiment in
//! the sub-second range (used by `cargo bench` and tests); `Scale::Full`
//! produces the EXPERIMENTS.md numbers.

use crate::table::{f2, Table};
use localavg_core::metrics::{CompletionTimes, ComplexityReport, RunAggregate};
use localavg_core::orientation::DetOrientParams;
use localavg_core::ruling::DetRulingParams;
use localavg_core::subroutines::log_star;
use localavg_core::{coloring, matching, mis, orientation, ruling};
use localavg_graph::rng::Rng;
use localavg_graph::{analysis, gen, lift, Graph};
use localavg_lowerbound::base_graph::{BaseGraph, LiftedGk};
use localavg_lowerbound::cluster_tree::ClusterTree;
use localavg_lowerbound::constructions::{DoubledGk, TreeView};
use localavg_lowerbound::isomorphism;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances for benches and smoke tests.
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn ns(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![128, 512],
            Scale::Full => vec![256, 1024, 4096, 16384],
        }
    }

    fn seeds(&self) -> u64 {
        match self {
            Scale::Quick => 2,
            Scale::Full => 5,
        }
    }
}

fn regular(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from(seed ^ 0xD15EA5E);
    gen::random_regular(n, d, &mut rng).expect("regular graph")
}

/// Mean over seeds of a per-run metric.
fn mean_over_seeds(scale: Scale, mut f: impl FnMut(u64) -> f64) -> f64 {
    let s = scale.seeds();
    (0..s).map(&mut f).sum::<f64>() / s as f64
}

/// E1 — Figure 1: cluster-tree skeleton structure for k = 0..3.
pub fn e1_figure1(_scale: Scale) -> Table {
    let mut t = Table::new(
        "E1 (Figure 1) — cluster tree skeletons CT_k",
        &["k", "nodes", "internal", "leaves", "directed edges (incl. self-loops)"],
    );
    for k in 0..=3 {
        let ct = ClusterTree::new(k);
        let internal = ct.nodes().filter(|(_, n)| n.internal).count();
        t.row(vec![
            k.to_string(),
            ct.node_count().to_string(),
            internal.to_string(),
            (ct.node_count() - internal).to_string(),
            ct.edges().len().to_string(),
        ]);
    }
    t.note("CT_0 has 2 nodes and 3 labeled edges; every non-c0 node carries a self-loop (Obs. 7).");
    t
}

/// E2 — Theorem 2: the (2,2)-ruling set has node-averaged complexity O(1).
pub fn e2_two_two_ruling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2 (Theorem 2) — randomized (2,2)-ruling set: node-averaged complexity is flat",
        &["n", "d", "node-avg", "worst-case", "log* n"],
    );
    for &n in &scale.ns() {
        for d in [4usize, 16] {
            if d >= n {
                continue;
            }
            let avg = mean_over_seeds(scale, |s| {
                let g = regular(n, d, s);
                let run = ruling::two_two(&g, s + 1);
                ComplexityReport::from_run(&g, &run.transcript).node_averaged
            });
            let worst = mean_over_seeds(scale, |s| {
                let g = regular(n, d, s);
                ruling::two_two(&g, s + 1).worst_case() as f64
            });
            t.row(vec![
                n.to_string(),
                d.to_string(),
                f2(avg),
                f2(worst),
                log_star(n as f64).to_string(),
            ]);
        }
    }
    t.note("Theorem 2 claim: node-averaged O(1) — the node-avg column should not grow with n or d.");
    t
}

/// E3 — Theorem 3: deterministic ruling sets, node-averaged ≈ O(log* n).
pub fn e3_det_ruling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3 (Theorem 3) — deterministic (2,β)-ruling set",
        &["n", "d", "variant", "β bound", "node-avg", "worst-case"],
    );
    for &n in &scale.ns() {
        let d = 4usize;
        if d >= n {
            continue;
        }
        let g = regular(n, d, 7);
        for (name, params) in [
            ("log Δ", DetRulingParams::for_log_delta(&g)),
            ("log log n", DetRulingParams::for_log_log_n(&g)),
        ] {
            let run = ruling::deterministic(&g, params);
            assert!(analysis::is_ruling_set(&g, &run.in_set, 2, run.beta));
            let rep = ComplexityReport::from_run(&g, &run.transcript);
            t.row(vec![
                n.to_string(),
                d.to_string(),
                name.to_string(),
                run.beta.to_string(),
                f2(rep.node_averaged),
                rep.rounds.to_string(),
            ]);
        }
    }
    t.note("Node-avg should stay near-flat (log* n); worst-case includes the Linial finisher.");
    t
}

/// E4 — Theorem 4: randomized maximal matching, edge-averaged O(1).
pub fn e4_luby_matching(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4 (Theorem 4) — randomized maximal matching",
        &["n", "d", "edge-avg", "node-avg", "worst-case", "log2 n"],
    );
    for &n in &scale.ns() {
        let d = 8usize;
        if d >= n {
            continue;
        }
        let (mut ea, mut na, mut wc) = (0.0, 0.0, 0.0);
        let seeds = scale.seeds();
        for s in 0..seeds {
            let g = regular(n, d, s);
            let run = matching::luby(&g, s + 3);
            let rep = ComplexityReport::from_run(&g, &run.transcript);
            ea += rep.edge_averaged / seeds as f64;
            na += rep.node_averaged / seeds as f64;
            wc += rep.rounds as f64 / seeds as f64;
        }
        t.row(vec![
            n.to_string(),
            d.to_string(),
            f2(ea),
            f2(na),
            f2(wc),
            f2((n as f64).log2()),
        ]);
    }
    t.note("Edge-avg stays flat (O(1)); the worst case tracks log n.");
    t
}

/// E5 — Theorem 5: deterministic maximal matching.
pub fn e5_det_matching(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5 (Theorem 5) — deterministic maximal matching",
        &["n", "d", "edge-avg", "node-avg", "worst-case"],
    );
    let ns = match scale {
        Scale::Quick => vec![64, 128],
        Scale::Full => vec![256, 1024, 4096],
    };
    for &n in &ns {
        for d in [4usize, 8] {
            if d >= n {
                continue;
            }
            let g = regular(n, d, 11);
            let run = matching::deterministic(&g);
            let rep = ComplexityReport::from_run(&g, &run.transcript);
            t.row(vec![
                n.to_string(),
                d.to_string(),
                f2(rep.edge_averaged),
                f2(rep.node_averaged),
                rep.rounds.to_string(),
            ]);
        }
    }
    t.note("Paper: edge-avg O(log²Δ + log* n), node-avg O(log³Δ + log* n) — flat in n, growing mildly in Δ.");
    t
}

/// E6 — §3.1: MIS upper bounds (Luby vs degree-guided).
pub fn e6_mis_upper(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6 (§3.1) — MIS node-averaged upper bounds on regular graphs",
        &["n", "d", "algorithm", "node-avg", "edge-avg (1-endpoint)", "worst-case"],
    );
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 4096,
    };
    for d in [4usize, 16, 64] {
        if d >= n {
            continue;
        }
        for (name, run_fn) in [
            ("Luby", mis::luby as fn(&Graph, u64) -> mis::MisRun),
            ("degree-guided", mis::degree_guided as fn(&Graph, u64) -> mis::MisRun),
        ] {
            let (mut na, mut ea, mut wc) = (0.0, 0.0, 0.0);
            let seeds = scale.seeds();
            for s in 0..seeds {
                let g = regular(n, d, s + 17);
                let run = run_fn(&g, s + 1);
                let rep = ComplexityReport::from_run(&g, &run.transcript);
                na += rep.node_averaged / seeds as f64;
                ea += rep.edge_averaged_one_endpoint / seeds as f64;
                wc += rep.rounds as f64 / seeds as f64;
            }
            t.row(vec![
                n.to_string(),
                d.to_string(),
                name.to_string(),
                f2(na),
                f2(ea),
                f2(wc),
            ]);
        }
    }
    t.note("Luby's one-endpoint edge-average stays O(1); node-averages grow slowly with Δ (§1.1's O(log Δ / log log Δ)).");
    t
}

/// E7 — Theorem 6: deterministic sinkless orientation.
pub fn e7_det_orientation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7 (Theorem 6) — deterministic sinkless orientation on random 3-regular graphs",
        &["n", "node-avg", "worst-case", "log* n", "log2 n"],
    );
    let ns = match scale {
        Scale::Quick => vec![64, 256],
        Scale::Full => vec![128, 512, 2048, 8192],
    };
    for &n in &ns {
        let (mut na, mut wc) = (0.0, 0.0);
        let seeds = scale.seeds();
        for s in 0..seeds {
            let g = regular(n, 3, s + 5);
            let run = orientation::deterministic(&g, DetOrientParams::default());
            let rep = ComplexityReport::from_run(&g, &run.transcript);
            na += rep.node_averaged / seeds as f64;
            wc += rep.rounds as f64 / seeds as f64;
        }
        t.row(vec![
            n.to_string(),
            f2(na),
            f2(wc),
            log_star(n as f64).to_string(),
            f2((n as f64).log2()),
        ]);
    }
    t.note("Node-avg near-flat; worst case may grow like log n (the deterministic lower bound).");
    t.note("Clustering uses a measured greedy sweep instead of Linial's constant-heavy O(log* n) MIS (see DESIGN.md).");
    t
}

/// E8 — §1.2/\[GS17a\]: randomized sinkless orientation, node-avg O(1).
pub fn e8_rand_orientation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8 ([GS17a]) — randomized sinkless orientation",
        &["n", "d", "node-avg", "worst-case"],
    );
    let ns = match scale {
        Scale::Quick => vec![64, 256],
        Scale::Full => vec![256, 1024, 4096],
    };
    for &n in &ns {
        for d in [3usize, 6] {
            let avg = mean_over_seeds(scale, |s| {
                let g = regular(n, d, s + 23);
                let run = orientation::randomized(&g, s + 2);
                ComplexityReport::from_run(&g, &run.transcript).node_averaged
            });
            let wc = mean_over_seeds(scale, |s| {
                let g = regular(n, d, s + 23);
                orientation::randomized(&g, s + 2).worst_case() as f64
            });
            t.row(vec![n.to_string(), d.to_string(), f2(avg), f2(wc)]);
        }
    }
    t.note("Node-averaged complexity stays O(1) across n.");
    t
}

/// Builds a lifted lower-bound graph.
fn lifted_gk(k: usize, beta: u64, q: usize, seed: u64) -> LiftedGk {
    let base = BaseGraph::build(k, beta, 8_000_000).expect("base graph");
    let mut rng = Rng::seed_from(seed);
    LiftedGk::build(base, q, &mut rng)
}

/// E9 — Theorem 16: node-averaged MIS lower bound on the KMW graphs.
pub fn e9_mis_lower_bound(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9 (Theorem 16) — MIS on the lifted cluster-tree graphs G̃_k",
        &[
            "k", "β", "q", "n", "algo", "node-avg", "S0 undecided @ round 3k",
            "(2,2)-RS node-avg",
        ],
    );
    let configs: Vec<(usize, u64, usize)> = match scale {
        Scale::Quick => vec![(1, 4, 2)],
        Scale::Full => vec![(1, 4, 4), (1, 8, 4), (2, 4, 2), (2, 4, 4)],
    };
    for (k, beta, q) in configs {
        let lg = lifted_gk(k, beta, q, 42 + k as u64);
        let g = lg.graph();
        let s0 = lg.s0();
        for (name, run_fn) in [
            ("Luby", mis::luby as fn(&Graph, u64) -> mis::MisRun),
            ("degree-guided", mis::degree_guided as fn(&Graph, u64) -> mis::MisRun),
        ] {
            let run = run_fn(g, 9);
            let rep = ComplexityReport::from_run(g, &run.transcript);
            let threshold = 3 * k; // the engine uses ~3 rounds per Luby iteration
            let undecided = s0
                .iter()
                .filter(|&&v| run.transcript.node_commit_round[v] > threshold)
                .count() as f64
                / s0.len() as f64;
            let rs = ruling::two_two(g, 9);
            let rs_avg = ComplexityReport::from_run(g, &rs.transcript).node_averaged;
            t.row(vec![
                k.to_string(),
                beta.to_string(),
                q.to_string(),
                g.n().to_string(),
                name.to_string(),
                f2(rep.node_averaged),
                f2(undecided),
                f2(rs_avg),
            ]);
        }
    }
    t.note("Theorem 16: most of S(c0) cannot decide within k rounds, so the MIS node-average grows with k while the (2,2)-ruling set stays O(1) (Theorem 2's separation).");
    t
}

/// E10 — Theorem 16 (trees): MIS on extracted tree views.
pub fn e10_tree_mis(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10 (Theorem 16, trees) — randomized MIS on extracted radius-k tree views",
        &["k", "tree n", "Luby rounds", "greedy rounds"],
    );
    let configs: Vec<(usize, u64, usize)> = match scale {
        Scale::Quick => vec![(1, 4, 8)],
        Scale::Full => vec![(1, 4, 16), (2, 4, 4)],
    };
    for (k, beta, q) in configs {
        let lg = lifted_gk(k, beta, q, 77);
        let g = lg.graph();
        let Some(v0) = lg
            .s0()
            .into_iter()
            .find(|&v| analysis::view_is_tree(g, v, k))
        else {
            t.note(format!("k={k}: no tree-like S(c0) node at q={q}"));
            continue;
        };
        let tv = TreeView::extract(g, v0, k).expect("tree view");
        let luby = mis::luby(&tv.tree, 3);
        let greedy = mis::greedy_by_id(&tv.tree);
        t.row(vec![
            k.to_string(),
            tv.tree.n().to_string(),
            luby.worst_case().to_string(),
            greedy.worst_case().to_string(),
        ]);
    }
    t.note("The paper proves any randomized tree MIS needs Ω(k) rounds on these instances.");
    t
}

/// E11 — Theorem 17: maximal matching on the doubled construction.
pub fn e11_matching_lower_bound(scale: Scale) -> Table {
    let mut t = Table::new(
        "E11 (Theorem 17) — maximal matching on the doubled KMW graphs",
        &["k", "β", "q", "n", "node-avg", "cross edges in matching", "cross decided @ round 4k"],
    );
    let configs: Vec<(usize, u64, usize)> = match scale {
        Scale::Quick => vec![(1, 4, 1)],
        Scale::Full => vec![(1, 4, 2), (1, 8, 2), (2, 4, 2)],
    };
    for (k, beta, q) in configs {
        let lg = lifted_gk(k, beta, q, 5);
        let d = DoubledGk::build(&lg);
        let run = matching::luby(&d.graph, 13);
        let rep = ComplexityReport::from_run(&d.graph, &run.transcript);
        let cross = d.cross_fraction(&run.in_matching);
        let threshold = 4 * k; // ~4 rounds per matching iteration
        let early = d
            .cross_edges
            .iter()
            .filter(|&&e| run.transcript.edge_commit_round[e] <= threshold)
            .count() as f64
            / d.cross_edges.len() as f64;
        t.row(vec![
            k.to_string(),
            beta.to_string(),
            q.to_string(),
            d.graph.n().to_string(),
            f2(rep.node_averaged),
            f2(cross),
            f2(early),
        ]);
    }
    t.note("Maximal matchings must take almost all cross edges, yet almost none are decided within k rounds — the node-average grows with k.");
    t
}

/// E12 — Theorem 11 / Algorithm 1: view indistinguishability.
pub fn e12_isomorphism(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12 (Theorem 11) — Algorithm 1 view isomorphism between S(c0) and S(c1)",
        &["k", "β", "q", "S0 tree-like frac", "pair found", "|view|", "verified"],
    );
    let configs: Vec<(usize, u64, usize)> = match scale {
        Scale::Quick => vec![(1, 4, 8)],
        Scale::Full => vec![(1, 4, 16), (2, 4, 4)],
    };
    for (k, beta, q) in configs {
        let lg = lifted_gk(k, beta, q, 21);
        let frac = lg.s0_tree_like_fraction(k);
        match isomorphism::tree_like_pair(&lg, k) {
            None => t.row(vec![
                k.to_string(),
                beta.to_string(),
                q.to_string(),
                f2(frac),
                "no".into(),
                "-".into(),
                "-".into(),
            ]),
            Some((v0, v1)) => {
                let phi = isomorphism::find_isomorphism(&lg, k, v0, v1).expect("Algorithm 1");
                let ok = isomorphism::verify_isomorphism(&lg, k, v0, v1, &phi).is_ok();
                t.row(vec![
                    k.to_string(),
                    beta.to_string(),
                    q.to_string(),
                    f2(frac),
                    "yes".into(),
                    phi.len().to_string(),
                    ok.to_string(),
                ]);
            }
        }
    }
    t.note("Tree-like S(c0)/S(c1) nodes have isomorphic radius-k views: a k-round algorithm cannot tell them apart.");
    t
}

/// E13 — Lemma 12 / Corollary 15: random-lift statistics.
pub fn e13_lift_statistics(scale: Scale) -> Table {
    let mut t = Table::new(
        "E13 (Lemma 12) — random lift short-cycle statistics (base: K4, Δ=3, ℓ=3)",
        &["q", "measured fraction on ≤3-cycle", "Lemma 12 bound Δ^ℓ/q"],
    );
    let qs: Vec<usize> = match scale {
        Scale::Quick => vec![4, 16],
        Scale::Full => vec![4, 16, 64, 256],
    };
    let base = gen::complete(4);
    for q in qs {
        let mut rng = Rng::seed_from(31 + q as u64);
        let lifted = lift::lift(&base, q, &mut rng);
        let measured = lift::short_cycle_fraction(&lifted, 3);
        let bound = 27.0 / q as f64;
        t.row(vec![q.to_string(), f2(measured), f2(bound.min(1.0))]);
    }
    t.note("Lifting the K_{β,2} gadget graphs makes most S(c0) views tree-like (Cor. 15).");
    t
}

/// E14 — Appendix A: the complexity-measure inequality chain.
pub fn e14_appendix_a(scale: Scale) -> Table {
    let mut t = Table::new(
        "E14 (Appendix A) — AVG_V ≤ AVG^w_V ≤ EXP_V ≤ WORST for Luby MIS",
        &["graph", "AVG_V", "adversarial AVG^w_V", "EXP_V", "E[WORST]", "chain holds"],
    );
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 1024,
    };
    for (name, g) in [
        ("4-regular", regular(n, 4, 3)),
        ("G(n, 8/n)", {
            let mut rng = Rng::seed_from(4);
            gen::gnp(n, 8.0 / n as f64, &mut rng)
        }),
    ] {
        let runs: Vec<_> = (0..10u64).map(|s| mis::luby(&g, s)).collect();
        let times: Vec<CompletionTimes> = runs
            .iter()
            .map(|r| CompletionTimes::from_transcript(&g, &r.transcript))
            .collect();
        let rounds: Vec<usize> = runs.iter().map(|r| r.worst_case()).collect();
        let agg = RunAggregate::from_times(&times, &rounds);
        t.row(vec![
            name.to_string(),
            f2(agg.node_averaged),
            f2(agg.adversarial_weighted_node_averaged()),
            f2(agg.node_expected),
            f2(agg.worst_case),
            agg.inequality_chain_holds().to_string(),
        ]);
    }
    t
}

/// E15 — §1.2: randomized (Δ+1)-coloring, node-avg O(1).
pub fn e15_coloring(scale: Scale) -> Table {
    let mut t = Table::new(
        "E15 (§1.2) — randomized (Δ+1)-coloring by color trials",
        &["n", "d", "node-avg", "worst-case"],
    );
    for &n in &scale.ns() {
        let d = 8usize;
        if d >= n {
            continue;
        }
        let avg = mean_over_seeds(scale, |s| {
            let g = regular(n, d, s + 31);
            let run = coloring::random_trial(&g, s + 1);
            ComplexityReport::from_run(&g, &run.transcript).node_averaged
        });
        let wc = mean_over_seeds(scale, |s| {
            let g = regular(n, d, s + 31);
            coloring::random_trial(&g, s + 1).worst_case() as f64
        });
        t.row(vec![n.to_string(), d.to_string(), f2(avg), f2(wc)]);
    }
    t.note("Every node keeps a proposed color with constant probability: node-avg O(1), worst case Θ(log n).");
    t
}

/// E16 — footnote 2: the two edge-completion conventions for MIS.
pub fn e16_footnote2(scale: Scale) -> Table {
    let mut t = Table::new(
        "E16 (footnote 2) — Luby MIS edge-averaged: one-endpoint vs Definition 1",
        &["graph", "edge-avg (1-endpoint)", "edge-avg (Def. 1)", "node-avg"],
    );
    let (k, beta, q) = match scale {
        Scale::Quick => (1, 4u64, 2usize),
        Scale::Full => (2, 4u64, 2usize),
    };
    let lg = lifted_gk(k, beta, q, 3);
    let g = lg.graph();
    let run = mis::luby(g, 7);
    let rep = ComplexityReport::from_run(g, &run.transcript);
    t.row(vec![
        format!("G̃_{k} (β={beta}, q={q})"),
        f2(rep.edge_averaged_one_endpoint),
        f2(rep.edge_averaged),
        f2(rep.node_averaged),
    ]);
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 2048,
    };
    let g = regular(n, 8, 2);
    let run = mis::luby(&g, 7);
    let rep = ComplexityReport::from_run(&g, &run.transcript);
    t.row(vec![
        format!("8-regular n={n}"),
        f2(rep.edge_averaged_one_endpoint),
        f2(rep.edge_averaged),
        f2(rep.node_averaged),
    ]);
    t.note("Under the relaxed convention Luby is O(1); under Definition 1 the edge average is pinned to node decisions (Theorem 16 lower-bounds it on G̃_k).");
    t
}

/// All experiments in index order.
pub fn all(scale: Scale) -> Vec<Table> {
    vec![
        e1_figure1(scale),
        e2_two_two_ruling(scale),
        e3_det_ruling(scale),
        e4_luby_matching(scale),
        e5_det_matching(scale),
        e6_mis_upper(scale),
        e7_det_orientation(scale),
        e8_rand_orientation(scale),
        e9_mis_lower_bound(scale),
        e10_tree_mis(scale),
        e11_matching_lower_bound(scale),
        e12_isomorphism(scale),
        e13_lift_statistics(scale),
        e14_appendix_a(scale),
        e15_coloring(scale),
        e16_footnote2(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_produce_rows() {
        for table in all(Scale::Quick) {
            assert!(
                !table.rows.is_empty() || !table.notes.is_empty(),
                "experiment {} produced nothing",
                table.title
            );
        }
    }
}
