//! The per-theorem experiments (DESIGN.md §5 index).
//!
//! Every function is deterministic given its scale and drives the
//! workspace through the *unified* algorithm API: experiments look
//! algorithms up in [`localavg_core::algo::registry`] and consume the
//! shared [`AlgoRun`] result type, so adding an algorithm family never
//! requires touching the harness. `Scale::Quick` keeps each experiment in
//! the sub-second range (used by `cargo bench` and tests); `Scale::Full`
//! produces the EXPERIMENTS.md numbers.

use crate::table::{f2, Table};
use localavg_core::algo::{registry, AlgoRun, Algorithm, DetRulingSpec, RulingDet, RunSpec};
use localavg_core::metrics::{CompletionTimes, RunAggregate};
use localavg_core::subroutines::log_star;
use localavg_graph::rng::Rng;
use localavg_graph::{analysis, gen, lift, Graph};
use localavg_lowerbound::base_graph::{BaseGraph, LiftedGk};
use localavg_lowerbound::cluster_tree::ClusterTree;
use localavg_lowerbound::constructions::{DoubledGk, TreeView};
use localavg_lowerbound::isomorphism;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances for benches and smoke tests.
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn ns(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![128, 512],
            Scale::Full => vec![256, 1024, 4096, 16384],
        }
    }

    fn seeds(&self) -> u64 {
        match self {
            Scale::Quick => 2,
            Scale::Full => 5,
        }
    }
}

fn regular(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from(seed ^ 0xD15EA5E);
    gen::random_regular(n, d, &mut rng).expect("regular graph")
}

/// Looks an algorithm up by registry key (experiments only reference
/// algorithms through their string keys).
fn algo(name: &str) -> &'static dyn localavg_core::algo::DynAlgorithm {
    registry()
        .get(name)
        .unwrap_or_else(|| panic!("algorithm {name} not registered"))
}

/// Runs `name` on a fresh graph per seed and averages `K` metrics
/// extracted from each verified run — one run per seed, however many
/// scalars the caller wants out of it.
fn mean_metrics<const K: usize>(
    scale: Scale,
    name: &str,
    graph_of: impl Fn(u64) -> Graph,
    seed_of: impl Fn(u64) -> u64,
    metrics: impl Fn(&Graph, &AlgoRun) -> [f64; K],
) -> [f64; K] {
    let a = algo(name);
    let s = scale.seeds();
    let mut acc = [0.0f64; K];
    for i in 0..s {
        let g = graph_of(i);
        let run = a.execute(&g, &RunSpec::new(seed_of(i)));
        run.verify(&g).expect("registered algorithm must be valid");
        for (slot, x) in acc.iter_mut().zip(metrics(&g, &run)) {
            *slot += x / s as f64;
        }
    }
    acc
}

/// E1 — Figure 1: cluster-tree skeleton structure for k = 0..3.
pub fn e1_figure1(_scale: Scale) -> Table {
    let mut t = Table::new(
        "E1 (Figure 1) — cluster tree skeletons CT_k",
        &[
            "k",
            "nodes",
            "internal",
            "leaves",
            "directed edges (incl. self-loops)",
        ],
    );
    for k in 0..=3 {
        let ct = ClusterTree::new(k);
        let internal = ct.nodes().filter(|(_, n)| n.internal).count();
        t.row(vec![
            k.to_string(),
            ct.node_count().to_string(),
            internal.to_string(),
            (ct.node_count() - internal).to_string(),
            ct.edges().len().to_string(),
        ]);
    }
    t.note("CT_0 has 2 nodes and 3 labeled edges; every non-c0 node carries a self-loop (Obs. 7).");
    t
}

/// E2 — Theorem 2: the (2,2)-ruling set has node-averaged complexity O(1).
pub fn e2_two_two_ruling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2 (Theorem 2) — randomized (2,2)-ruling set: node-averaged complexity is flat",
        &["n", "d", "node-avg", "worst-case", "log* n"],
    );
    for &n in &scale.ns() {
        for d in [4usize, 16] {
            if d >= n {
                continue;
            }
            let [avg, worst] = mean_metrics(
                scale,
                "ruling/two-two",
                |s| regular(n, d, s),
                |s| s + 1,
                |g, run| [run.report(g).node_averaged, run.worst_case() as f64],
            );
            t.row(vec![
                n.to_string(),
                d.to_string(),
                f2(avg),
                f2(worst),
                log_star(n as f64).to_string(),
            ]);
        }
    }
    t.note(
        "Theorem 2 claim: node-averaged O(1) — the node-avg column should not grow with n or d.",
    );
    t
}

/// E3 — Theorem 3: deterministic ruling sets, node-averaged ≈ O(log* n).
pub fn e3_det_ruling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3 (Theorem 3) — deterministic (2,β)-ruling set",
        &["n", "d", "variant", "β bound", "node-avg", "worst-case"],
    );
    for &n in &scale.ns() {
        let d = 4usize;
        if d >= n {
            continue;
        }
        let g = regular(n, d, 7);
        for (name, spec) in [
            ("log Δ", DetRulingSpec::LogDelta),
            ("log log n", DetRulingSpec::LogLogN),
        ] {
            let run = RulingDet.execute_with(&g, &RunSpec::new(0), &spec);
            run.verify(&g).expect("valid ruling set");
            let beta = match run.solution {
                localavg_core::algo::Solution::RulingSet { beta, .. } => beta,
                ref other => panic!("ruling/det produced {other:?}"),
            };
            let rep = run.report(&g);
            t.row(vec![
                n.to_string(),
                d.to_string(),
                name.to_string(),
                beta.to_string(),
                f2(rep.node_averaged),
                rep.rounds.to_string(),
            ]);
        }
    }
    t.note("Node-avg should stay near-flat (log* n); worst-case includes the Linial finisher.");
    t
}

/// E4 — Theorem 4: randomized maximal matching, edge-averaged O(1).
pub fn e4_luby_matching(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4 (Theorem 4) — randomized maximal matching",
        &["n", "d", "edge-avg", "node-avg", "worst-case", "log2 n"],
    );
    let a = algo("matching/luby");
    for &n in &scale.ns() {
        let d = 8usize;
        if d >= n {
            continue;
        }
        let (mut ea, mut na, mut wc) = (0.0, 0.0, 0.0);
        let seeds = scale.seeds();
        for s in 0..seeds {
            let g = regular(n, d, s);
            let run = a.execute(&g, &RunSpec::new(s + 3));
            let rep = run.report(&g);
            ea += rep.edge_averaged / seeds as f64;
            na += rep.node_averaged / seeds as f64;
            wc += rep.rounds as f64 / seeds as f64;
        }
        t.row(vec![
            n.to_string(),
            d.to_string(),
            f2(ea),
            f2(na),
            f2(wc),
            f2((n as f64).log2()),
        ]);
    }
    t.note("Edge-avg stays flat (O(1)); the worst case tracks log n.");
    t
}

/// E5 — Theorem 5: deterministic maximal matching.
pub fn e5_det_matching(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5 (Theorem 5) — deterministic maximal matching",
        &["n", "d", "edge-avg", "node-avg", "worst-case"],
    );
    let ns = match scale {
        Scale::Quick => vec![64, 128],
        Scale::Full => vec![256, 1024, 4096],
    };
    let a = algo("matching/det");
    for &n in &ns {
        for d in [4usize, 8] {
            if d >= n {
                continue;
            }
            let g = regular(n, d, 11);
            let run = a.execute(&g, &RunSpec::new(0));
            let rep = run.report(&g);
            t.row(vec![
                n.to_string(),
                d.to_string(),
                f2(rep.edge_averaged),
                f2(rep.node_averaged),
                rep.rounds.to_string(),
            ]);
        }
    }
    t.note("Paper: edge-avg O(log²Δ + log* n), node-avg O(log³Δ + log* n) — flat in n, growing mildly in Δ.");
    t
}

/// E6 — §3.1: MIS upper bounds (Luby vs degree-guided).
pub fn e6_mis_upper(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6 (§3.1) — MIS node-averaged upper bounds on regular graphs",
        &[
            "n",
            "d",
            "algorithm",
            "node-avg",
            "edge-avg (1-endpoint)",
            "worst-case",
        ],
    );
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 4096,
    };
    for d in [4usize, 16, 64] {
        if d >= n {
            continue;
        }
        for name in ["mis/luby", "mis/degree-guided"] {
            let a = algo(name);
            let (mut na, mut ea, mut wc) = (0.0, 0.0, 0.0);
            let seeds = scale.seeds();
            for s in 0..seeds {
                let g = regular(n, d, s + 17);
                let run = a.execute(&g, &RunSpec::new(s + 1));
                let rep = run.report(&g);
                na += rep.node_averaged / seeds as f64;
                ea += rep.edge_averaged_one_endpoint / seeds as f64;
                wc += rep.rounds as f64 / seeds as f64;
            }
            t.row(vec![
                n.to_string(),
                d.to_string(),
                name.to_string(),
                f2(na),
                f2(ea),
                f2(wc),
            ]);
        }
    }
    t.note("Luby's one-endpoint edge-average stays O(1); node-averages grow slowly with Δ (§1.1's O(log Δ / log log Δ)).");
    t
}

/// E7 — Theorem 6: deterministic sinkless orientation.
pub fn e7_det_orientation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7 (Theorem 6) — deterministic sinkless orientation on random 3-regular graphs",
        &["n", "node-avg", "worst-case", "log* n", "log2 n"],
    );
    let ns = match scale {
        Scale::Quick => vec![64, 256],
        Scale::Full => vec![128, 512, 2048, 8192],
    };
    let a = algo("orientation/det");
    for &n in &ns {
        let (mut na, mut wc) = (0.0, 0.0);
        let seeds = scale.seeds();
        for s in 0..seeds {
            let g = regular(n, 3, s + 5);
            let run = a.execute(&g, &RunSpec::new(0));
            let rep = run.report(&g);
            na += rep.node_averaged / seeds as f64;
            wc += rep.rounds as f64 / seeds as f64;
        }
        t.row(vec![
            n.to_string(),
            f2(na),
            f2(wc),
            log_star(n as f64).to_string(),
            f2((n as f64).log2()),
        ]);
    }
    t.note("Node-avg near-flat; worst case may grow like log n (the deterministic lower bound).");
    t.note("Clustering uses a measured greedy sweep instead of Linial's constant-heavy O(log* n) MIS (see DESIGN.md).");
    t
}

/// E8 — §1.2/\[GS17a\]: randomized sinkless orientation, node-avg O(1).
pub fn e8_rand_orientation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8 ([GS17a]) — randomized sinkless orientation",
        &["n", "d", "node-avg", "worst-case"],
    );
    let ns = match scale {
        Scale::Quick => vec![64, 256],
        Scale::Full => vec![256, 1024, 4096],
    };
    for &n in &ns {
        for d in [3usize, 6] {
            let [avg, wc] = mean_metrics(
                scale,
                "orientation/rand",
                |s| regular(n, d, s + 23),
                |s| s + 2,
                |g, run| [run.report(g).node_averaged, run.worst_case() as f64],
            );
            t.row(vec![n.to_string(), d.to_string(), f2(avg), f2(wc)]);
        }
    }
    t.note("Node-averaged complexity stays O(1) across n.");
    t
}

/// Builds a lifted lower-bound graph.
fn lifted_gk(k: usize, beta: u64, q: usize, seed: u64) -> LiftedGk {
    let base = BaseGraph::build(k, beta, 8_000_000).expect("base graph");
    let mut rng = Rng::seed_from(seed);
    LiftedGk::build(base, q, &mut rng)
}

/// E9 — Theorem 16: node-averaged MIS lower bound on the KMW graphs.
pub fn e9_mis_lower_bound(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9 (Theorem 16) — MIS on the lifted cluster-tree graphs G̃_k",
        &[
            "k",
            "β",
            "q",
            "n",
            "algo",
            "node-avg",
            "S0 undecided @ round 3k",
            "(2,2)-RS node-avg",
        ],
    );
    let configs: Vec<(usize, u64, usize)> = match scale {
        Scale::Quick => vec![(1, 4, 2)],
        Scale::Full => vec![(1, 4, 4), (1, 8, 4), (2, 4, 2), (2, 4, 4)],
    };
    for (k, beta, q) in configs {
        let lg = lifted_gk(k, beta, q, 42 + k as u64);
        let g = lg.graph();
        let s0 = lg.s0();
        for name in ["mis/luby", "mis/degree-guided"] {
            let run = algo(name).execute(g, &RunSpec::new(9));
            let rep = run.report(g);
            let threshold = 3 * k; // the engine uses ~3 rounds per Luby iteration
            let undecided = s0
                .iter()
                .filter(|&&v| run.transcript.node_commit_round[v] > threshold)
                .count() as f64
                / s0.len() as f64;
            let rs_avg = algo("ruling/two-two")
                .execute(g, &RunSpec::new(9))
                .report(g)
                .node_averaged;
            t.row(vec![
                k.to_string(),
                beta.to_string(),
                q.to_string(),
                g.n().to_string(),
                name.to_string(),
                f2(rep.node_averaged),
                f2(undecided),
                f2(rs_avg),
            ]);
        }
    }
    t.note("Theorem 16: most of S(c0) cannot decide within k rounds, so the MIS node-average grows with k while the (2,2)-ruling set stays O(1) (Theorem 2's separation).");
    t
}

/// E10 — Theorem 16 (trees): MIS on extracted tree views.
pub fn e10_tree_mis(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10 (Theorem 16, trees) — randomized MIS on extracted radius-k tree views",
        &["k", "tree n", "Luby rounds", "greedy rounds"],
    );
    let configs: Vec<(usize, u64, usize)> = match scale {
        Scale::Quick => vec![(1, 4, 8)],
        Scale::Full => vec![(1, 4, 16), (2, 4, 4)],
    };
    for (k, beta, q) in configs {
        let lg = lifted_gk(k, beta, q, 77);
        let g = lg.graph();
        let Some(v0) = lg
            .s0()
            .into_iter()
            .find(|&v| analysis::view_is_tree(g, v, k))
        else {
            t.note(format!("k={k}: no tree-like S(c0) node at q={q}"));
            continue;
        };
        let tv = TreeView::extract(g, v0, k).expect("tree view");
        let luby = algo("mis/luby").execute(&tv.tree, &RunSpec::new(3));
        let greedy = algo("mis/greedy").execute(&tv.tree, &RunSpec::new(0));
        t.row(vec![
            k.to_string(),
            tv.tree.n().to_string(),
            luby.worst_case().to_string(),
            greedy.worst_case().to_string(),
        ]);
    }
    t.note("The paper proves any randomized tree MIS needs Ω(k) rounds on these instances.");
    t
}

/// E11 — Theorem 17: maximal matching on the doubled construction.
pub fn e11_matching_lower_bound(scale: Scale) -> Table {
    let mut t = Table::new(
        "E11 (Theorem 17) — maximal matching on the doubled KMW graphs",
        &[
            "k",
            "β",
            "q",
            "n",
            "node-avg",
            "cross edges in matching",
            "cross decided @ round 4k",
        ],
    );
    let configs: Vec<(usize, u64, usize)> = match scale {
        Scale::Quick => vec![(1, 4, 1)],
        Scale::Full => vec![(1, 4, 2), (1, 8, 2), (2, 4, 2)],
    };
    for (k, beta, q) in configs {
        let lg = lifted_gk(k, beta, q, 5);
        let d = DoubledGk::build(&lg);
        let run = algo("matching/luby").execute(&d.graph, &RunSpec::new(13));
        let rep = run.report(&d.graph);
        let in_matching = run.solution.matching().expect("matching output");
        let cross = d.cross_fraction(in_matching);
        let threshold = 4 * k; // ~4 rounds per matching iteration
        let early = d
            .cross_edges
            .iter()
            .filter(|&&e| run.transcript.edge_commit_round[e] <= threshold)
            .count() as f64
            / d.cross_edges.len() as f64;
        t.row(vec![
            k.to_string(),
            beta.to_string(),
            q.to_string(),
            d.graph.n().to_string(),
            f2(rep.node_averaged),
            f2(cross),
            f2(early),
        ]);
    }
    t.note("Maximal matchings must take almost all cross edges, yet almost none are decided within k rounds — the node-average grows with k.");
    t
}

/// E12 — Theorem 11 / Algorithm 1: view indistinguishability.
pub fn e12_isomorphism(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12 (Theorem 11) — Algorithm 1 view isomorphism between S(c0) and S(c1)",
        &[
            "k",
            "β",
            "q",
            "S0 tree-like frac",
            "pair found",
            "|view|",
            "verified",
        ],
    );
    let configs: Vec<(usize, u64, usize)> = match scale {
        Scale::Quick => vec![(1, 4, 8)],
        Scale::Full => vec![(1, 4, 16), (2, 4, 4)],
    };
    for (k, beta, q) in configs {
        let lg = lifted_gk(k, beta, q, 21);
        let frac = lg.s0_tree_like_fraction(k);
        match isomorphism::tree_like_pair(&lg, k) {
            None => t.row(vec![
                k.to_string(),
                beta.to_string(),
                q.to_string(),
                f2(frac),
                "no".into(),
                "-".into(),
                "-".into(),
            ]),
            Some((v0, v1)) => {
                let phi = isomorphism::find_isomorphism(&lg, k, v0, v1).expect("Algorithm 1");
                let ok = isomorphism::verify_isomorphism(&lg, k, v0, v1, &phi).is_ok();
                t.row(vec![
                    k.to_string(),
                    beta.to_string(),
                    q.to_string(),
                    f2(frac),
                    "yes".into(),
                    phi.len().to_string(),
                    ok.to_string(),
                ]);
            }
        }
    }
    t.note("Tree-like S(c0)/S(c1) nodes have isomorphic radius-k views: a k-round algorithm cannot tell them apart.");
    t
}

/// E13 — Lemma 12 / Corollary 15: random-lift statistics.
pub fn e13_lift_statistics(scale: Scale) -> Table {
    let mut t = Table::new(
        "E13 (Lemma 12) — random lift short-cycle statistics (base: K4, Δ=3, ℓ=3)",
        &["q", "measured fraction on ≤3-cycle", "Lemma 12 bound Δ^ℓ/q"],
    );
    let qs: Vec<usize> = match scale {
        Scale::Quick => vec![4, 16],
        Scale::Full => vec![4, 16, 64, 256],
    };
    let base = gen::complete(4);
    for q in qs {
        let mut rng = Rng::seed_from(31 + q as u64);
        let lifted = lift::lift(&base, q, &mut rng);
        let measured = lift::short_cycle_fraction(&lifted, 3);
        let bound = 27.0 / q as f64;
        t.row(vec![q.to_string(), f2(measured), f2(bound.min(1.0))]);
    }
    t.note("Lifting the K_{β,2} gadget graphs makes most S(c0) views tree-like (Cor. 15).");
    t
}

/// E14 — Appendix A: the complexity-measure inequality chain.
pub fn e14_appendix_a(scale: Scale) -> Table {
    let mut t = Table::new(
        "E14 (Appendix A) — AVG_V ≤ AVG^w_V ≤ EXP_V ≤ WORST for Luby MIS",
        &[
            "graph",
            "AVG_V",
            "adversarial AVG^w_V",
            "EXP_V",
            "E[WORST]",
            "chain holds",
        ],
    );
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 1024,
    };
    let a = algo("mis/luby");
    for (name, g) in [
        ("4-regular", regular(n, 4, 3)),
        ("G(n, 8/n)", {
            let mut rng = Rng::seed_from(4);
            gen::gnp(n, 8.0 / n as f64, &mut rng)
        }),
    ] {
        let runs: Vec<AlgoRun> = (0..10u64)
            .map(|s| a.execute(&g, &RunSpec::new(s)))
            .collect();
        let times: Vec<CompletionTimes> = runs.iter().map(|r| r.completion_times(&g)).collect();
        let rounds: Vec<usize> = runs.iter().map(|r| r.worst_case()).collect();
        let agg = RunAggregate::from_times(&times, &rounds);
        t.row(vec![
            name.to_string(),
            f2(agg.node_averaged),
            f2(agg.adversarial_weighted_node_averaged()),
            f2(agg.node_expected),
            f2(agg.worst_case),
            agg.inequality_chain_holds().to_string(),
        ]);
    }
    t
}

/// E15 — §1.2: randomized (Δ+1)-coloring, node-avg O(1).
pub fn e15_coloring(scale: Scale) -> Table {
    let mut t = Table::new(
        "E15 (§1.2) — randomized (Δ+1)-coloring by color trials",
        &["n", "d", "node-avg", "worst-case"],
    );
    for &n in &scale.ns() {
        let d = 8usize;
        if d >= n {
            continue;
        }
        let [avg, wc] = mean_metrics(
            scale,
            "coloring/trial",
            |s| regular(n, d, s + 31),
            |s| s + 1,
            |g, run| [run.report(g).node_averaged, run.worst_case() as f64],
        );
        t.row(vec![n.to_string(), d.to_string(), f2(avg), f2(wc)]);
    }
    t.note("Every node keeps a proposed color with constant probability: node-avg O(1), worst case Θ(log n).");
    t
}

/// E16 — footnote 2: the two edge-completion conventions for MIS.
pub fn e16_footnote2(scale: Scale) -> Table {
    let mut t = Table::new(
        "E16 (footnote 2) — Luby MIS edge-averaged: one-endpoint vs Definition 1",
        &[
            "graph",
            "edge-avg (1-endpoint)",
            "edge-avg (Def. 1)",
            "node-avg",
        ],
    );
    let (k, beta, q) = match scale {
        Scale::Quick => (1, 4u64, 2usize),
        Scale::Full => (2, 4u64, 2usize),
    };
    let a = algo("mis/luby");
    let lg = lifted_gk(k, beta, q, 3);
    let g = lg.graph();
    let rep = a.execute(g, &RunSpec::new(7)).report(g);
    t.row(vec![
        format!("G̃_{k} (β={beta}, q={q})"),
        f2(rep.edge_averaged_one_endpoint),
        f2(rep.edge_averaged),
        f2(rep.node_averaged),
    ]);
    let n = match scale {
        Scale::Quick => 256,
        Scale::Full => 2048,
    };
    let g = regular(n, 8, 2);
    let rep = a.execute(&g, &RunSpec::new(7)).report(&g);
    t.row(vec![
        format!("8-regular n={n}"),
        f2(rep.edge_averaged_one_endpoint),
        f2(rep.edge_averaged),
        f2(rep.node_averaged),
    ]);
    t.note("Under the relaxed convention Luby is O(1); under Definition 1 the edge average is pinned to node decisions (Theorem 16 lower-bounds it on G̃_k).");
    t
}

/// E17 — the unified-API sweep: every registered algorithm, one line each.
///
/// The generic driver the redesign enables: no per-family code at all —
/// the registry decides what runs, the shared [`AlgoRun`] provides the
/// metrics, and problems whose domain excludes the instance (sinkless
/// orientation needs min degree 3) are skipped by their own declaration.
pub fn e17_registry_sweep(scale: Scale) -> Table {
    let mut t = Table::new(
        "E17 (unified API) — every registered algorithm on one regular graph",
        &[
            "algorithm",
            "problem",
            "det",
            "node-avg",
            "edge-avg",
            "worst-case",
            "peak msg bits",
        ],
    );
    let n = match scale {
        Scale::Quick => 128,
        Scale::Full => 1024,
    };
    let g = regular(n, 4, 19);
    let tree = gen::random_tree(n, &mut Rng::seed_from(19 ^ 0xD15EA5E));
    for a in registry().iter() {
        if a.problem().min_degree() > g.min_degree() {
            t.note(format!(
                "{} skipped: needs min degree {}",
                a.name(),
                a.problem().min_degree()
            ));
            continue;
        }
        // Tree-restricted algorithms run on a same-size random tree
        // (and are flagged as such in the notes below).
        let g = if a.requires_tree() { &tree } else { &g };
        let run = a.execute(g, &RunSpec::new(7));
        run.verify(g).expect("registered algorithm must be valid");
        let rep = run.report(g);
        t.row(vec![
            a.name().to_string(),
            a.problem().label().to_string(),
            a.deterministic().to_string(),
            f2(rep.node_averaged),
            f2(rep.edge_averaged),
            rep.rounds.to_string(),
            run.transcript
                .peak_message_bits()
                .map_or_else(|| "-".to_string(), |b| b.to_string()),
        ]);
    }
    t.note("d=4 keeps sinkless orientation in scope (its domain needs min degree 3).");
    t.note("*/tree-rc rows ran on a same-size random tree (their domain is forests).");
    t
}

/// All experiments in index order.
pub fn all(scale: Scale) -> Vec<Table> {
    vec![
        e1_figure1(scale),
        e2_two_two_ruling(scale),
        e3_det_ruling(scale),
        e4_luby_matching(scale),
        e5_det_matching(scale),
        e6_mis_upper(scale),
        e7_det_orientation(scale),
        e8_rand_orientation(scale),
        e9_mis_lower_bound(scale),
        e10_tree_mis(scale),
        e11_matching_lower_bound(scale),
        e12_isomorphism(scale),
        e13_lift_statistics(scale),
        e14_appendix_a(scale),
        e15_coloring(scale),
        e16_footnote2(scale),
        e17_registry_sweep(scale),
    ]
}

/// Experiment ids accepted by the `exp` binary, with their runners.
pub fn by_id(id: &str, scale: Scale) -> Option<Table> {
    let f: fn(Scale) -> Table = match id {
        "e1" => e1_figure1,
        "e2" => e2_two_two_ruling,
        "e3" => e3_det_ruling,
        "e4" => e4_luby_matching,
        "e5" => e5_det_matching,
        "e6" => e6_mis_upper,
        "e7" => e7_det_orientation,
        "e8" => e8_rand_orientation,
        "e9" => e9_mis_lower_bound,
        "e10" => e10_tree_mis,
        "e11" => e11_matching_lower_bound,
        "e12" => e12_isomorphism,
        "e13" => e13_lift_statistics,
        "e14" => e14_appendix_a,
        "e15" => e15_coloring,
        "e16" => e16_footnote2,
        "e17" => e17_registry_sweep,
        _ => return None,
    };
    Some(f(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_produce_rows() {
        for table in all(Scale::Quick) {
            assert!(
                !table.rows.is_empty() || !table.notes.is_empty(),
                "experiment {} produced nothing",
                table.title
            );
        }
    }

    #[test]
    fn registry_sweep_covers_every_family() {
        let t = e17_registry_sweep(Scale::Quick);
        for family in ["mis/", "ruling/", "matching/", "orientation/", "coloring/"] {
            assert!(
                t.rows.iter().any(|r| r[0].starts_with(family)),
                "family {family} missing from the sweep"
            );
        }
    }

    #[test]
    fn by_id_knows_every_experiment() {
        assert!(by_id("e1", Scale::Quick).is_some());
        assert!(by_id("e17", Scale::Quick).is_some());
        assert!(by_id("e99", Scale::Quick).is_none());
    }
}
