//! The full generator registry: base families plus hard instances.
//!
//! `localavg_graph::gen::registry()` holds the families the graph crate
//! can express by itself; the lower-bound hard instances
//! (`lb/cluster-tree/*`, `lb/lift/*`, `lb/doubled/1`) live in
//! `localavg_lowerbound::families` because the graph crate cannot depend
//! on the lower-bound crate. This module is where the two meet: every
//! measurement front end in this crate (`exp sweep`, `exp bench-engine`,
//! `exp fuzz`) resolves generator keys through [`registry`], so hard
//! instances are ordinary workloads everywhere.

use localavg_graph::gen::GenRegistry;
use std::sync::OnceLock;

/// The composed registry: every base family of
/// [`localavg_graph::gen::registry`] followed by every lower-bound
/// family of [`localavg_lowerbound::families::generators`].
pub fn registry() -> &'static GenRegistry {
    static REGISTRY: OnceLock<GenRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut entries: Vec<_> = localavg_graph::gen::registry().iter().copied().collect();
        entries.extend(localavg_lowerbound::families::generators());
        GenRegistry::from_entries(entries)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composed_registry_contains_both_layers() {
        let r = registry();
        for key in [
            "regular/4",
            "tree/random",
            "tree/bounded/3",
            "tree/caterpillar",
            "tree/spider",
            "lb/cluster-tree/1",
            "lb/cluster-tree/2",
            "lb/lift/1",
            "lb/lift/2",
            "lb/doubled/1",
        ] {
            assert!(r.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            r.len(),
            localavg_graph::gen::registry().len()
                + localavg_lowerbound::families::generators().len()
        );
    }

    #[test]
    fn composed_registry_suggests_across_layers() {
        assert_eq!(registry().suggest("lb/lifft/1"), Some("lb/lift/1"));
        assert_eq!(registry().suggest("regullar/8"), Some("regular/8"));
        assert_eq!(registry().suggest("zzzz"), None);
    }
}
