//! Sharded parallel sweep engine (DESIGN.md §6).
//!
//! A [`SweepSpec`] describes a full measurement grid — registry algorithm
//! keys × named graph families × target sizes × seeds — and [`run`]
//! expands it into cells, shards the cells across `std::thread::scope`
//! workers, and collects a [`SweepReport`] that the [`crate::emit`]
//! module serializes to JSON and CSV.
//!
//! # Determinism
//!
//! Parallel and sequential execution produce *byte-identical* reports:
//!
//! * every cell's randomness is derived from the master seed through the
//!   [`localavg_graph::rng::Rng::fork`] substream discipline, keyed by the
//!   cell's **content** (generator key, target size, seed index, algorithm
//!   key) — never by scheduling order or worker id;
//! * each `(generator, n)` pair names one fixed graph instance, built
//!   once up front, so every algorithm and every seed of a group runs on
//!   the same topology (that is what makes the per-group
//!   [`RunAggregate`] an estimate of Appendix A's expected complexities);
//! * results are written into a slot indexed by cell position and
//!   serialized in expansion order, so thread interleaving never shows.
//!
//! Deterministic algorithms ignore their seed, so the sweep collapses
//! their seed axis to a single run per group.

use crate::cell::{self, CellKey};
use crate::generators;
use localavg_core::algo::{registry, DynAlgorithm, RunSpec};
use localavg_core::metrics::{CompletionTimes, Distribution, RunAggregate};
use localavg_graph::analysis::{topology_stats, TopologyStats};
use localavg_graph::gen::NamedGenerator;
use localavg_graph::Graph;
use localavg_sim::workspace::Workspace;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::experiments::Scale;

/// A pre-built instance loaded from a `localavg-csr/v1` file
/// (`--graph-file`), presented to the engines as a pseudo-family named
/// `file/<content-hash>` (see [`crate::cell::file_family`]). The hash
/// comes from the file's verified checksum footer, so cell keys — and
/// through them goldens, seeds, and the serve cache — stay
/// content-addressed: the *graph*, not the path, names the cells.
#[derive(Debug)]
pub struct FileGraph {
    /// The `file/<hash>` pseudo-family key. Leaked to `&'static str` so
    /// [`SweepCell`] stays `Copy` — one short string per loaded file.
    pub family: &'static str,
    /// The loaded, fully validated instance.
    pub graph: Graph,
    /// Wall-clock of the load, in milliseconds (reported by
    /// `exp bench-engine` as the instance's `graph_build_ms`).
    pub load_ms: f64,
}

impl FileGraph {
    /// Loads and validates a `localavg-csr/v1` file.
    ///
    /// # Errors
    ///
    /// Returns the rendered [`localavg_graph::io::ReadError`], prefixed
    /// with the path.
    pub fn load(path: &str) -> Result<FileGraph, String> {
        let t0 = Instant::now();
        let (graph, hash) = localavg_graph::io::read_graph_from_path_with_hash(path)
            .map_err(|e| format!("cannot load graph file {path}: {e}"))?;
        Ok(FileGraph {
            family: Box::leak(cell::file_family(hash).into_boxed_str()),
            graph,
            load_ms: t0.elapsed().as_secs_f64() * 1e3,
        })
    }
}

/// One string-keyed parameter override, applied to every cell of the
/// named algorithm (the `--param family/name:key=value` CLI flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamOverride {
    /// Algorithm registry key the override applies to.
    pub algorithm: String,
    /// Parameter key (validated by the algorithm's `set_param`).
    pub key: String,
    /// Parameter value (validated by the algorithm's `set_param`).
    pub value: String,
}

impl ParamOverride {
    /// Parses the CLI form `family/name:key=value`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the shape is wrong (the
    /// key/value semantics are validated later, by the algorithm).
    pub fn parse(s: &str) -> Result<ParamOverride, String> {
        let (algorithm, kv) = s
            .split_once(':')
            .ok_or_else(|| format!("`{s}`: expected `family/name:key=value`"))?;
        let (key, value) = kv
            .split_once('=')
            .ok_or_else(|| format!("`{s}`: expected `family/name:key=value`"))?;
        if algorithm.is_empty() || key.is_empty() || value.is_empty() {
            return Err(format!("`{s}`: expected `family/name:key=value`"));
        }
        Ok(ParamOverride {
            algorithm: algorithm.to_string(),
            key: key.to_string(),
            value: value.to_string(),
        })
    }
}

/// A full measurement grid: algorithms × graph families × sizes × seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Algorithm registry keys (see [`localavg_core::algo::registry`]).
    pub algorithms: Vec<String>,
    /// Generator registry keys (see [`localavg_graph::gen::registry`]).
    pub generators: Vec<String>,
    /// Target graph sizes (families round to their nearest legal size).
    pub sizes: Vec<usize>,
    /// Seeds per (algorithm, generator, size) group; deterministic
    /// algorithms collapse this axis to 1.
    pub seeds: u64,
    /// Master seed every per-cell substream is forked from.
    pub master_seed: u64,
    /// String-keyed parameter overrides, applied per algorithm over the
    /// defaults (empty = defaults everywhere).
    pub params: Vec<ParamOverride>,
}

impl SweepSpec {
    /// The default grid for a [`Scale`]: every registered algorithm on a
    /// representative family set. `Quick` stays sub-second for tests;
    /// `Full` is the EXPERIMENTS.md grid.
    pub fn for_scale(scale: Scale) -> SweepSpec {
        let algorithms: Vec<String> = registry().names().map(str::to_string).collect();
        match scale {
            Scale::Quick => SweepSpec {
                algorithms,
                generators: vec!["regular/4".into(), "gnp/deg8".into(), "tree/random".into()],
                sizes: vec![64, 128],
                seeds: 2,
                master_seed: 0,
                params: Vec::new(),
            },
            Scale::Full => SweepSpec {
                algorithms,
                generators: vec![
                    "regular/3".into(),
                    "regular/4".into(),
                    "regular/8".into(),
                    "regular/16".into(),
                    "gnp/0.05".into(),
                    "gnp/deg8".into(),
                    "tree/random".into(),
                    "grid".into(),
                    "hypercube".into(),
                ],
                sizes: vec![256, 1024, 4096],
                seeds: 3,
                master_seed: 0,
                params: Vec::new(),
            },
        }
    }

    /// Expands the grid into cells in canonical order (generator, size,
    /// algorithm, seed), applying the static domain filter: an algorithm
    /// is skipped on families whose guaranteed minimum degree is below
    /// its problem's requirement.
    ///
    /// # Errors
    ///
    /// Fails on unknown algorithm or generator keys (with a closest-match
    /// suggestion for algorithms) and on empty grid axes.
    pub fn cells(&self) -> Result<Vec<SweepCell>, SweepError> {
        self.cells_with(None)
    }

    /// [`SweepSpec::cells`] with an optional file-backed pseudo-family:
    /// a generator key equal to `file.family` resolves to the loaded
    /// instance (its realized minimum degree drives the domain filter)
    /// instead of the registry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepSpec::cells`].
    pub fn cells_with(&self, file: Option<&FileGraph>) -> Result<Vec<SweepCell>, SweepError> {
        if self.algorithms.is_empty()
            || self.generators.is_empty()
            || self.sizes.is_empty()
            || self.seeds == 0
        {
            return Err(SweepError::EmptyAxis);
        }
        let mut algos: Vec<&'static dyn DynAlgorithm> = Vec::new();
        for name in &self.algorithms {
            match registry().get(name) {
                Some(a) => algos.push(a),
                None => {
                    return Err(SweepError::UnknownAlgorithm {
                        name: name.clone(),
                        suggestion: registry().suggest(name).map(str::to_string),
                    })
                }
            }
        }
        enum Gen<'a> {
            Registry(&'static NamedGenerator),
            File(&'a FileGraph),
        }
        let mut gens: Vec<Gen<'_>> = Vec::new();
        for name in &self.generators {
            if let Some(f) = file.filter(|f| f.family == name.as_str()) {
                gens.push(Gen::File(f));
                continue;
            }
            match generators::registry().get(name) {
                Some(g) => gens.push(Gen::Registry(g)),
                None => {
                    return Err(SweepError::UnknownGenerator {
                        name: name.clone(),
                        suggestion: generators::registry().suggest(name).map(str::to_string),
                    })
                }
            }
        }
        let mut cells = Vec::new();
        let mut tree_skip: Option<(&'static str, String)> = None;
        for g in &gens {
            for &n in &self.sizes {
                let (gname, min_degree, is_tree) = match g {
                    Gen::Registry(g) => (g.name(), g.min_degree(n), g.is_tree()),
                    Gen::File(f) => (
                        f.family,
                        f.graph.min_degree(),
                        localavg_graph::analysis::is_forest(&f.graph),
                    ),
                };
                for a in &algos {
                    if a.problem().min_degree() > min_degree {
                        continue;
                    }
                    if a.requires_tree() && !is_tree {
                        tree_skip.get_or_insert_with(|| (a.name(), gname.to_string()));
                        continue;
                    }
                    let seeds = if a.deterministic() { 1 } else { self.seeds };
                    for seed in 0..seeds {
                        cells.push(SweepCell {
                            algorithm: a.name(),
                            generator: gname,
                            n,
                            seed,
                        });
                    }
                }
            }
        }
        if cells.is_empty() {
            if let Some((algorithm, generator)) = tree_skip {
                return Err(SweepError::NotATree {
                    algorithm,
                    generator,
                });
            }
        }
        Ok(cells)
    }
}

/// One grid cell: a single (algorithm, family, size, seed) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Algorithm registry key.
    pub algorithm: &'static str,
    /// Generator registry key.
    pub generator: &'static str,
    /// Target size (the family may round it).
    pub n: usize,
    /// Seed index within the cell's group.
    pub seed: u64,
}

impl SweepCell {
    /// The canonical [`CellKey`] of this cell under defaults (no param
    /// overrides, `Full` policy — what a sweep without `--param` runs).
    /// Callers expanding a spec with overrides attach them via
    /// [`CellKey::with_params`].
    pub fn key(&self) -> CellKey {
        CellKey::new(self.generator, self.n, self.seed, self.algorithm)
    }
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// An algorithm key is not in the registry.
    UnknownAlgorithm {
        /// The offending key.
        name: String,
        /// Closest registered key, if any is plausible.
        suggestion: Option<String>,
    },
    /// A generator key is not in the registry.
    UnknownGenerator {
        /// The offending key.
        name: String,
        /// Closest registered key, if any is plausible — same
        /// [`localavg_graph::suggest`] policy as algorithm keys.
        suggestion: Option<String>,
    },
    /// Some grid axis is empty.
    EmptyAxis,
    /// A graph family failed to build an instance.
    GraphBuild {
        /// Generator registry key.
        generator: String,
        /// Target size.
        n: usize,
        /// Error rendered by the generator.
        message: String,
    },
    /// A `--param` override was rejected (unknown key, invalid value, or
    /// an algorithm not part of the sweep).
    Param {
        /// Human-readable rejection (from the algorithm's validation).
        message: String,
    },
    /// No selected (family, algorithm) pair is compatible: every chosen
    /// algorithm's domain requirement exceeds every chosen family's
    /// minimum-degree guarantee (`exp fuzz` sampling).
    NoCompatibleCells,
    /// A `*/tree-rc` algorithm was paired only with non-tree families
    /// (its domain is restricted to forests), leaving the grid empty.
    NotATree {
        /// The tree-restricted algorithm.
        algorithm: &'static str,
        /// A non-tree family it was paired with.
        generator: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::UnknownAlgorithm { name, suggestion } => {
                write!(f, "unknown algorithm `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " — did you mean `{s}`?")?;
                }
                Ok(())
            }
            SweepError::UnknownGenerator { name, suggestion } => {
                write!(f, "unknown generator `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " — did you mean `{s}`?")?;
                }
                let names: Vec<&str> = generators::registry().names().collect();
                write!(f, " (known: {})", names.join(", "))
            }
            SweepError::EmptyAxis => f.write_str("sweep grid has an empty axis"),
            SweepError::GraphBuild {
                generator,
                n,
                message,
            } => write!(f, "generator `{generator}` failed at n={n}: {message}"),
            SweepError::Param { message } => write!(f, "invalid --param: {message}"),
            SweepError::NoCompatibleCells => f.write_str(
                "no compatible (generator, algorithm) cells: every selected algorithm's \
                 domain requirement (min degree) exceeds every selected family's guarantee",
            ),
            SweepError::NotATree {
                algorithm,
                generator,
            } => {
                let trees: Vec<&str> = generators::registry()
                    .iter()
                    .filter(|g| g.is_tree())
                    .map(|g| g.name())
                    .collect();
                write!(
                    f,
                    "`{algorithm}` only runs on forests but `{generator}` is not a tree \
                     family — did you mean one of: {}?",
                    trees.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Measured result of one cell (one verified run).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that was run.
    pub cell: SweepCell,
    /// Realized node count of the instance.
    pub nodes: usize,
    /// Realized edge count of the instance.
    pub edges: usize,
    /// Minimum degree of the instance.
    pub min_degree: usize,
    /// Maximum degree of the instance.
    pub max_degree: usize,
    /// `AVG_V` — node-averaged complexity (Definition 1).
    pub node_averaged: f64,
    /// `AVG_E` — edge-averaged complexity (Definition 1).
    pub edge_averaged: f64,
    /// Edge average under the relaxed one-endpoint convention (fn. 2).
    pub edge_averaged_one_endpoint: f64,
    /// Maximum node completion time.
    pub node_worst: usize,
    /// Total rounds until global termination (classic worst case).
    pub rounds: usize,
    /// Peak CONGEST message size observed, in bits — `None` when the
    /// run's transcript policy skipped the audit pass entirely (the
    /// sweep always audits; lean policies surface here through `exp
    /// serve` and replay paths).
    pub peak_message_bits: Option<usize>,
}

impl CellResult {
    /// The `localavg-sweep/v1` wire view of this result (see
    /// [`crate::emit::cell_json`]).
    pub fn row(&self) -> crate::emit::CellRow<'_> {
        crate::emit::CellRow {
            algorithm: self.cell.algorithm,
            generator: self.cell.generator,
            n: self.cell.n,
            seed: self.cell.seed,
            nodes: self.nodes,
            edges: self.edges,
            min_degree: self.min_degree,
            max_degree: self.max_degree,
            node_averaged: self.node_averaged,
            edge_averaged: self.edge_averaged,
            edge_averaged_one_endpoint: self.edge_averaged_one_endpoint,
            node_worst: self.node_worst,
            rounds: self.rounds,
            peak_message_bits: self.peak_message_bits,
        }
    }
}

/// Distributional summaries of a group, pooled over the seed axis
/// (every run of a group executes on the same fixed instance, so the
/// pooled sample is `runs × n` node observations drawn from the same
/// topology).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDistributions {
    /// Node completion times (Definition 1), pooled across the runs.
    pub node_time: Distribution,
    /// Edge completion times (Definition 1), pooled across the runs.
    pub edge_time: Distribution,
    /// Per-node bits sent over the whole execution, pooled across the
    /// runs. `None` unless **every** run in the group was audited — a
    /// partially audited group would silently under-count.
    pub node_bits_sent: Option<Distribution>,
}

/// Per-group aggregate over the seed axis: Appendix A's expected
/// complexities on the group's fixed graph instance.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// Algorithm registry key.
    pub algorithm: String,
    /// Generator registry key.
    pub generator: String,
    /// Target size of the group's instance.
    pub n: usize,
    /// Number of aggregated runs (1 for deterministic algorithms).
    pub runs: usize,
    /// Mean of the per-run node-averaged complexities (estimates `AVG_V`).
    pub node_averaged: f64,
    /// Mean of the per-run edge-averaged complexities (estimates `AVG_E`).
    pub edge_averaged: f64,
    /// `EXP_V = max_v E[T_v]` (Appendix A).
    pub node_expected: f64,
    /// `EXP_E = max_e E[T_e]` (Appendix A).
    pub edge_expected: f64,
    /// Mean worst case over the runs.
    pub worst_case: f64,
    /// Whether Appendix A's `AVG ≤ AVG^w ≤ EXP ≤ WORST` chain held.
    pub chain_holds: bool,
    /// Pooled completion-time and message-volume distributions.
    pub distributions: GroupDistributions,
    /// Structural statistics of the group's fixed instance.
    pub topology: TopologyStats,
}

/// A complete sweep: the spec that produced it, every cell in canonical
/// order, and the per-group aggregates.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The grid that was run.
    pub spec: SweepSpec,
    /// One verified result per cell, in expansion order.
    pub cells: Vec<CellResult>,
    /// Per-(generator, size, algorithm) aggregates, in expansion order.
    pub groups: Vec<GroupResult>,
}

/// The seed a `(generator, n)` instance is built from: forked from the
/// master seed by generator key and target size only, so every algorithm
/// and every seed index of a group sees the same topology. Public so
/// tests and `exp bench-engine` can rebuild the exact instances a sweep
/// measured. Delegates to [`crate::cell::graph_seed`] — the one seeding
/// code path every front end (sweep, bench, fuzz, serve) shares.
pub fn graph_seed(master: u64, generator: &str, n: usize) -> u64 {
    cell::graph_seed(master, generator, n)
}

/// The seed a cell's algorithm run draws from: additionally forked by
/// algorithm key and seed index. Public for the same reason as
/// [`graph_seed`]: replaying a sweep cell outside the sweep engine.
pub fn algo_seed(master: u64, cell: &SweepCell) -> u64 {
    cell::algo_seed(master, cell.generator, cell.n, cell.algorithm, cell.seed)
}

/// Builds the configured algorithm table for a spec: every algorithm
/// key mapped to a `DynAlgorithm` with the spec's [`ParamOverride`]s
/// applied (defaults when none name it).
///
/// # Errors
///
/// Fails on overrides naming algorithms outside the spec and on
/// key/value pairs the algorithm's validation rejects.
fn configured_algorithms(
    spec: &SweepSpec,
) -> Result<BTreeMap<String, Box<dyn DynAlgorithm>>, SweepError> {
    configure(&spec.algorithms, &spec.params)
}

/// Shared override plumbing for the sweep and `exp bench-engine`: maps
/// every algorithm key to a `DynAlgorithm` carrying its overrides.
pub(crate) fn configure(
    algorithms: &[String],
    params: &[ParamOverride],
) -> Result<BTreeMap<String, Box<dyn DynAlgorithm>>, SweepError> {
    for p in params {
        if !algorithms.contains(&p.algorithm) {
            return Err(SweepError::Param {
                message: format!(
                    "`{}:{}={}` names an algorithm that is not part of this sweep",
                    p.algorithm, p.key, p.value
                ),
            });
        }
    }
    let mut algos: BTreeMap<String, Box<dyn DynAlgorithm>> = BTreeMap::new();
    for name in algorithms {
        let kvs: Vec<(&str, &str)> = params
            .iter()
            .filter(|p| &p.algorithm == name)
            .map(|p| (p.key.as_str(), p.value.as_str()))
            .collect();
        let algo = registry()
            .get(name)
            .ok_or_else(|| SweepError::UnknownAlgorithm {
                name: name.clone(),
                suggestion: registry().suggest(name).map(str::to_string),
            })?
            .with_params(&kvs)
            .map_err(|e| SweepError::Param {
                message: e.to_string(),
            })?;
        algos.insert(name.clone(), algo);
    }
    Ok(algos)
}

/// Runs the sweep over `threads` workers.
///
/// The report is byte-for-byte independent of `threads` (see the module
/// docs); `threads` is clamped to `1..=cells`. Each worker reuses one
/// [`Workspace`] across its cells, so arena allocation is paid per
/// (worker, instance shape, algorithm) instead of per run.
///
/// # Errors
///
/// Returns [`SweepError`] for invalid specs, rejected parameter
/// overrides, or graph-construction failures.
///
/// # Panics
///
/// Panics if a registered algorithm produces an output that fails
/// verification — that is a bug in the algorithm, not in the caller.
pub fn run(spec: &SweepSpec, threads: usize) -> Result<SweepReport, SweepError> {
    run_with_file(spec, threads, None)
}

/// [`run`] with an optional file-backed pseudo-family (`--graph-file`):
/// cells whose generator key equals `file.family` execute on the loaded
/// instance; everything else — seeding, sharding, aggregation, and the
/// byte-identical-across-threads guarantee — is unchanged.
///
/// # Errors
///
/// Same conditions as [`run`].
///
/// # Panics
///
/// Same conditions as [`run`].
pub fn run_with_file(
    spec: &SweepSpec,
    threads: usize,
    file: Option<&FileGraph>,
) -> Result<SweepReport, SweepError> {
    let cells = spec.cells_with(file)?;
    let algos = configured_algorithms(spec)?;
    // Build every (generator, n) instance once, up front and sequentially
    // — deterministic, and workers then share read-only graphs.
    let mut graphs: BTreeMap<(&'static str, usize), Graph> = BTreeMap::new();
    for c in &cells {
        if file.is_some_and(|f| f.family == c.generator) || graphs.contains_key(&(c.generator, c.n))
        {
            continue;
        }
        let g = generators::registry()
            .get(c.generator)
            .expect("cells() validated the key")
            .build(c.n, graph_seed(spec.master_seed, c.generator, c.n))
            .map_err(|e| SweepError::GraphBuild {
                generator: c.generator.to_string(),
                n: c.n,
                message: format!("{e:?}"),
            })?;
        graphs.insert((c.generator, c.n), g);
    }
    // The file-backed instance never clones: cells borrow it directly.
    let instance = |generator: &'static str, n: usize| -> &Graph {
        match file {
            Some(f) if f.family == generator => &f.graph,
            _ => &graphs[&(generator, n)],
        }
    };

    struct Outcome {
        result: CellResult,
        times: CompletionTimes,
        /// Per-node bits sent, `None` when the run was not audited.
        node_bits_sent: Option<Vec<u64>>,
    }

    let threads = threads.clamp(1, cells.len().max(1));
    let slots: Vec<Mutex<Option<Outcome>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // One workspace per worker: cells for the same instance
                // and algorithm reuse arenas instead of reallocating.
                let mut ws = Workspace::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let cell = cells[i];
                    let g = instance(cell.generator, cell.n);
                    let algo = algos.get(cell.algorithm).expect("validated key");
                    let run = algo.execute_in(
                        g,
                        &RunSpec::new(algo_seed(spec.master_seed, &cell)),
                        &mut ws,
                    );
                    run.verify(g).unwrap_or_else(|e| {
                        panic!("{} produced an invalid output: {e}", cell.key())
                    });
                    let times = run.completion_times(g);
                    let result = CellResult {
                        cell,
                        nodes: g.n(),
                        edges: g.m(),
                        min_degree: g.min_degree(),
                        max_degree: g.degrees().max().unwrap_or(0),
                        node_averaged: times.node_mean(),
                        edge_averaged: times.edge_mean(),
                        edge_averaged_one_endpoint: times.edge_one_endpoint_mean(),
                        node_worst: times.node_max(),
                        rounds: run.worst_case(),
                        peak_message_bits: run.transcript.peak_message_bits(),
                    };
                    let node_bits_sent = run
                        .transcript
                        .audited()
                        .then(|| run.transcript.node_bits_sent.clone());
                    *slots[i].lock().expect("result slot") = Some(Outcome {
                        result,
                        times,
                        node_bits_sent,
                    });
                }
            });
        }
    });
    let outcomes: Vec<Outcome> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every cell ran")
        })
        .collect();

    // Group aggregation over the seed axis, preserving expansion order.
    let mut groups: Vec<GroupResult> = Vec::new();
    let mut i = 0;
    while i < outcomes.len() {
        let head = &outcomes[i].result.cell;
        let mut j = i;
        while j < outcomes.len() {
            let c = &outcomes[j].result.cell;
            if (c.algorithm, c.generator, c.n) != (head.algorithm, head.generator, head.n) {
                break;
            }
            j += 1;
        }
        let group = &outcomes[i..j];
        let times: Vec<CompletionTimes> = group.iter().map(|o| o.times.clone()).collect();
        let rounds: Vec<usize> = group.iter().map(|o| o.result.rounds).collect();
        let agg = RunAggregate::from_times(&times, &rounds);
        let pooled_node: Vec<_> = times.iter().flat_map(|t| t.node.iter().copied()).collect();
        let pooled_edge: Vec<_> = times.iter().flat_map(|t| t.edge.iter().copied()).collect();
        let node_bits_sent = group
            .iter()
            .map(|o| o.node_bits_sent.as_deref())
            .collect::<Option<Vec<&[u64]>>>()
            .map(|per_run| Distribution::from_values(&per_run.concat()));
        groups.push(GroupResult {
            algorithm: head.algorithm.to_string(),
            generator: head.generator.to_string(),
            n: head.n,
            runs: agg.runs,
            node_averaged: agg.node_averaged,
            edge_averaged: agg.edge_averaged,
            node_expected: agg.node_expected,
            edge_expected: agg.edge_expected,
            worst_case: agg.worst_case,
            chain_holds: agg.inequality_chain_holds(),
            distributions: GroupDistributions {
                node_time: Distribution::from_rounds(&pooled_node),
                edge_time: Distribution::from_rounds(&pooled_edge),
                node_bits_sent,
            },
            topology: topology_stats(instance(head.generator, head.n)),
        });
        i = j;
    }

    Ok(SweepReport {
        spec: spec.clone(),
        cells: outcomes.into_iter().map(|o| o.result).collect(),
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            algorithms: vec![
                "mis/luby".into(),
                "mis/greedy".into(),
                "ruling/two-two".into(),
            ],
            generators: vec!["regular/4".into(), "tree/random".into()],
            sizes: vec![32, 64],
            seeds: 2,
            master_seed: 7,
            params: Vec::new(),
        }
    }

    #[test]
    fn cells_expand_in_canonical_order_with_domain_filter() {
        let spec = SweepSpec {
            algorithms: vec!["orientation/rand".into(), "mis/luby".into()],
            generators: vec!["regular/3".into(), "tree/random".into()],
            sizes: vec![32],
            seeds: 2,
            master_seed: 0,
            params: Vec::new(),
        };
        let cells = spec.cells().unwrap();
        // Orientation (min degree 3) runs on regular/3 but not on trees.
        assert!(cells
            .iter()
            .any(|c| c.algorithm == "orientation/rand" && c.generator == "regular/3"));
        assert!(!cells
            .iter()
            .any(|c| c.algorithm == "orientation/rand" && c.generator == "tree/random"));
        assert!(cells
            .iter()
            .any(|c| c.algorithm == "mis/luby" && c.generator == "tree/random"));
    }

    #[test]
    fn tree_rc_cells_expand_only_on_tree_families() {
        let spec = SweepSpec {
            algorithms: vec!["mis/tree-rc".into(), "mis/luby".into()],
            generators: vec!["regular/4".into(), "tree/spider".into()],
            sizes: vec![32],
            seeds: 2,
            master_seed: 0,
            params: Vec::new(),
        };
        let cells = spec.cells().unwrap();
        assert!(cells
            .iter()
            .any(|c| c.algorithm == "mis/tree-rc" && c.generator == "tree/spider"));
        assert!(!cells
            .iter()
            .any(|c| c.algorithm == "mis/tree-rc" && c.generator == "regular/4"));
        assert!(cells
            .iter()
            .any(|c| c.algorithm == "mis/luby" && c.generator == "regular/4"));
    }

    #[test]
    fn forcing_tree_rc_onto_cyclic_families_errors_with_tree_suggestions() {
        let spec = SweepSpec {
            algorithms: vec!["coloring/tree-rc".into()],
            generators: vec!["regular/4".into(), "gnp/deg8".into()],
            sizes: vec![32],
            seeds: 1,
            master_seed: 0,
            params: Vec::new(),
        };
        let err = spec.cells().unwrap_err();
        let SweepError::NotATree {
            algorithm,
            ref generator,
        } = err
        else {
            panic!("expected NotATree, got {err}");
        };
        assert_eq!(algorithm, "coloring/tree-rc");
        assert_eq!(generator, "regular/4");
        let msg = err.to_string();
        assert!(msg.contains("only runs on forests"), "{msg}");
        assert!(msg.contains("tree/caterpillar"), "{msg}");
    }

    #[test]
    fn deterministic_algorithms_collapse_the_seed_axis() {
        let spec = SweepSpec {
            algorithms: vec!["mis/greedy".into(), "mis/luby".into()],
            generators: vec!["regular/4".into()],
            sizes: vec![32],
            seeds: 3,
            master_seed: 0,
            params: Vec::new(),
        };
        let cells = spec.cells().unwrap();
        let greedy = cells.iter().filter(|c| c.algorithm == "mis/greedy").count();
        let luby = cells.iter().filter(|c| c.algorithm == "mis/luby").count();
        assert_eq!(greedy, 1);
        assert_eq!(luby, 3);
    }

    #[test]
    fn unknown_keys_are_rejected_with_suggestions() {
        let mut spec = tiny_spec();
        spec.algorithms.push("mis/lubby".into());
        match spec.cells() {
            Err(SweepError::UnknownAlgorithm { name, suggestion }) => {
                assert_eq!(name, "mis/lubby");
                assert_eq!(suggestion.as_deref(), Some("mis/luby"));
            }
            other => panic!("expected UnknownAlgorithm, got {other:?}"),
        }
        let mut spec = tiny_spec();
        spec.generators.push("regullar/4".into());
        match spec.cells() {
            Err(SweepError::UnknownGenerator { name, suggestion }) => {
                assert_eq!(name, "regullar/4");
                assert_eq!(suggestion.as_deref(), Some("regular/4"));
            }
            other => panic!("expected UnknownGenerator, got {other:?}"),
        }
        let mut spec = tiny_spec();
        spec.generators.push("lb/lifft/1".into());
        match spec.cells() {
            Err(SweepError::UnknownGenerator { suggestion, .. }) => {
                assert_eq!(suggestion.as_deref(), Some("lb/lift/1"));
            }
            other => panic!("expected UnknownGenerator, got {other:?}"),
        }
        let mut spec = tiny_spec();
        spec.sizes.clear();
        assert_eq!(spec.cells(), Err(SweepError::EmptyAxis));
    }

    #[test]
    fn parallel_report_is_identical_to_sequential() {
        let spec = tiny_spec();
        let a = run(&spec, 1).unwrap();
        let b = run(&spec, 8).unwrap();
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cell, y.cell);
            assert_eq!(x.node_averaged.to_bits(), y.node_averaged.to_bits());
            assert_eq!(x.rounds, y.rounds);
        }
        for (x, y) in a.groups.iter().zip(&b.groups) {
            assert_eq!(x.node_expected.to_bits(), y.node_expected.to_bits());
            assert_eq!(x.chain_holds, y.chain_holds);
        }
    }

    #[test]
    fn groups_share_one_instance_and_satisfy_appendix_a() {
        let report = run(&tiny_spec(), 4).unwrap();
        assert!(!report.groups.is_empty());
        for g in &report.groups {
            assert!(
                g.chain_holds,
                "{}/{} n={} chain broken",
                g.algorithm, g.generator, g.n
            );
        }
        // All cells of one group report the same instance stats.
        for w in report.cells.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if (a.cell.algorithm, a.cell.generator, a.cell.n)
                == (b.cell.algorithm, b.cell.generator, b.cell.n)
            {
                assert_eq!(a.edges, b.edges);
                assert_eq!(a.nodes, b.nodes);
            }
        }
    }

    #[test]
    fn hard_families_sweep_is_thread_count_independent() {
        // The lb/* and tree/* workloads behave like any other family:
        // domain-filtered, content-addressed seeding, byte-identical
        // reports at any worker count.
        let spec = SweepSpec {
            algorithms: vec![
                "mis/luby".into(),
                "matching/det".into(),
                "orientation/rand".into(),
            ],
            generators: vec![
                "lb/lift/1".into(),
                "lb/doubled/1".into(),
                "tree/spider".into(),
            ],
            sizes: vec![64],
            seeds: 2,
            master_seed: 3,
            params: Vec::new(),
        };
        let a = run(&spec, 1).unwrap();
        let b = run(&spec, 8).unwrap();
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cell, y.cell);
            assert_eq!(x.node_averaged.to_bits(), y.node_averaged.to_bits());
            assert_eq!(x.edge_averaged.to_bits(), y.edge_averaged.to_bits());
            assert_eq!(x.rounds, y.rounds);
        }
        // Sinkless orientation runs on the hard families (min degree ≥ 8)
        // but is filtered off the tree family.
        assert!(a
            .cells
            .iter()
            .any(|c| c.cell.algorithm == "orientation/rand" && c.cell.generator == "lb/lift/1"));
        assert!(!a
            .cells
            .iter()
            .any(|c| c.cell.algorithm == "orientation/rand" && c.cell.generator == "tree/spider"));
        for g in &a.groups {
            assert!(
                g.chain_holds,
                "{}/{} chain broken",
                g.algorithm, g.generator
            );
        }
    }

    #[test]
    fn param_override_parse_accepts_cli_shape() {
        let p = ParamOverride::parse("mis/luby:mark-factor=0.75").unwrap();
        assert_eq!(p.algorithm, "mis/luby");
        assert_eq!(p.key, "mark-factor");
        assert_eq!(p.value, "0.75");
        for bad in ["mis/luby", "mis/luby:mark-factor", ":k=v", "a:=v", "a:k="] {
            assert!(ParamOverride::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn param_overrides_retarget_only_the_named_algorithm() {
        let mut spec = tiny_spec();
        let base = run(&spec, 2).unwrap();
        spec.params
            .push(ParamOverride::parse("mis/luby:mark-factor=1.0").unwrap());
        let tuned = run(&spec, 2).unwrap();
        assert_eq!(base.cells.len(), tuned.cells.len());
        let mut luby_changed = false;
        for (a, b) in base.cells.iter().zip(&tuned.cells) {
            assert_eq!(a.cell, b.cell);
            if a.cell.algorithm == "mis/luby" {
                luby_changed |= a.node_averaged.to_bits() != b.node_averaged.to_bits();
            } else {
                // Untouched algorithms are byte-identical.
                assert_eq!(
                    a.node_averaged.to_bits(),
                    b.node_averaged.to_bits(),
                    "{} drifted without an override",
                    a.cell.algorithm
                );
            }
        }
        assert!(luby_changed, "the override should change mis/luby cells");
    }

    #[test]
    fn param_overrides_are_validated_up_front() {
        let mut spec = tiny_spec();
        spec.params
            .push(ParamOverride::parse("mis/luby:mark-facotr=0.5").unwrap());
        match run(&spec, 1) {
            Err(SweepError::Param { message }) => {
                assert!(message.contains("did you mean"), "got: {message}")
            }
            other => panic!("expected Param error, got {other:?}"),
        }
        let mut spec = tiny_spec();
        spec.params
            .push(ParamOverride::parse("coloring/trial:extra-colors=2").unwrap());
        match run(&spec, 1) {
            Err(SweepError::Param { message }) => {
                assert!(message.contains("not part of this sweep"), "got: {message}")
            }
            other => panic!("expected Param error, got {other:?}"),
        }
    }

    #[test]
    fn file_backed_cells_run_from_the_loaded_instance() {
        use localavg_graph::{gen, io};
        // A path has realized minimum degree 1, so the file's *actual*
        // degree (not a registry formula) must filter the min-degree-3
        // orientation algorithm off the file cells while it still runs
        // on the 4-regular registry family.
        let g = gen::path(64);
        let file = FileGraph {
            family: Box::leak(cell::file_family(io::content_hash(&g)).into_boxed_str()),
            graph: g,
            load_ms: 0.0,
        };
        let spec = SweepSpec {
            algorithms: vec!["mis/luby".into(), "orientation/rand".into()],
            generators: vec![file.family.to_string(), "regular/4".into()],
            sizes: vec![64],
            seeds: 2,
            master_seed: 5,
            params: Vec::new(),
        };
        let a = run_with_file(&spec, 1, Some(&file)).unwrap();
        let b = run_with_file(&spec, 8, Some(&file)).unwrap();
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cell, y.cell);
            assert_eq!(x.node_averaged.to_bits(), y.node_averaged.to_bits());
            assert_eq!(x.rounds, y.rounds);
        }
        // File cells ran on the loaded instance (a 64-path → 63 edges,
        // min degree 1) and the realized degree filtered orientation off
        // the file family but not off the 4-regular registry family.
        let file_cells: Vec<_> = a
            .cells
            .iter()
            .filter(|c| c.cell.generator == file.family)
            .collect();
        assert!(!file_cells.is_empty());
        for c in &file_cells {
            assert_eq!(c.edges, 63);
            assert_eq!(c.min_degree, 1);
        }
        assert!(!file_cells
            .iter()
            .any(|c| c.cell.algorithm == "orientation/rand"));
        assert!(a
            .cells
            .iter()
            .any(|c| c.cell.algorithm == "orientation/rand" && c.cell.generator == "regular/4"));
        // An unknown family is still rejected when it is not the file's.
        let mut bad = spec.clone();
        bad.generators = vec!["file/doesnotexist00".into()];
        assert!(matches!(
            run_with_file(&bad, 1, Some(&file)),
            Err(SweepError::UnknownGenerator { .. })
        ));
    }

    #[test]
    fn seeding_is_content_addressed() {
        // The graph seed ignores the algorithm; the algo seed does not.
        assert_eq!(
            graph_seed(1, "regular/4", 64),
            graph_seed(1, "regular/4", 64)
        );
        assert_ne!(
            graph_seed(1, "regular/4", 64),
            graph_seed(1, "regular/4", 128)
        );
        assert_ne!(
            graph_seed(1, "regular/4", 64),
            graph_seed(2, "regular/4", 64)
        );
        let c1 = SweepCell {
            algorithm: "mis/luby",
            generator: "regular/4",
            n: 64,
            seed: 0,
        };
        let c2 = SweepCell {
            algorithm: "mis/greedy",
            ..c1
        };
        assert_ne!(algo_seed(1, &c1), algo_seed(1, &c2));
        assert_eq!(algo_seed(1, &c1), algo_seed(1, &c1.clone()));
    }
}
