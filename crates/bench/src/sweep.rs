//! Sharded parallel sweep engine (DESIGN.md §6).
//!
//! A [`SweepSpec`] describes a full measurement grid — registry algorithm
//! keys × named graph families × target sizes × seeds — and [`run`]
//! expands it into cells, shards the cells across `std::thread::scope`
//! workers, and collects a [`SweepReport`] that the [`crate::emit`]
//! module serializes to JSON and CSV.
//!
//! # Determinism
//!
//! Parallel and sequential execution produce *byte-identical* reports:
//!
//! * every cell's randomness is derived from the master seed through the
//!   [`localavg_graph::rng::Rng::fork`] substream discipline, keyed by the
//!   cell's **content** (generator key, target size, seed index, algorithm
//!   key) — never by scheduling order or worker id;
//! * each `(generator, n)` pair names one fixed graph instance, built
//!   once up front, so every algorithm and every seed of a group runs on
//!   the same topology (that is what makes the per-group
//!   [`RunAggregate`] an estimate of Appendix A's expected complexities);
//! * results are written into a slot indexed by cell position and
//!   serialized in expansion order, so thread interleaving never shows.
//!
//! Deterministic algorithms ignore their seed, so the sweep collapses
//! their seed axis to a single run per group.

use localavg_core::algo::{registry, DynAlgorithm};
use localavg_core::metrics::{CompletionTimes, RunAggregate};
use localavg_graph::gen::{self, NamedGenerator};
use localavg_graph::rng::{splitmix64, Rng};
use localavg_graph::Graph;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::experiments::Scale;

/// A full measurement grid: algorithms × graph families × sizes × seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Algorithm registry keys (see [`localavg_core::algo::registry`]).
    pub algorithms: Vec<String>,
    /// Generator registry keys (see [`localavg_graph::gen::registry`]).
    pub generators: Vec<String>,
    /// Target graph sizes (families round to their nearest legal size).
    pub sizes: Vec<usize>,
    /// Seeds per (algorithm, generator, size) group; deterministic
    /// algorithms collapse this axis to 1.
    pub seeds: u64,
    /// Master seed every per-cell substream is forked from.
    pub master_seed: u64,
}

impl SweepSpec {
    /// The default grid for a [`Scale`]: every registered algorithm on a
    /// representative family set. `Quick` stays sub-second for tests;
    /// `Full` is the EXPERIMENTS.md grid.
    pub fn for_scale(scale: Scale) -> SweepSpec {
        let algorithms: Vec<String> = registry().names().map(str::to_string).collect();
        match scale {
            Scale::Quick => SweepSpec {
                algorithms,
                generators: vec!["regular/4".into(), "gnp/deg8".into(), "tree/random".into()],
                sizes: vec![64, 128],
                seeds: 2,
                master_seed: 0,
            },
            Scale::Full => SweepSpec {
                algorithms,
                generators: vec![
                    "regular/3".into(),
                    "regular/4".into(),
                    "regular/8".into(),
                    "regular/16".into(),
                    "gnp/0.05".into(),
                    "gnp/deg8".into(),
                    "tree/random".into(),
                    "grid".into(),
                    "hypercube".into(),
                ],
                sizes: vec![256, 1024, 4096],
                seeds: 3,
                master_seed: 0,
            },
        }
    }

    /// Expands the grid into cells in canonical order (generator, size,
    /// algorithm, seed), applying the static domain filter: an algorithm
    /// is skipped on families whose guaranteed minimum degree is below
    /// its problem's requirement.
    ///
    /// # Errors
    ///
    /// Fails on unknown algorithm or generator keys (with a closest-match
    /// suggestion for algorithms) and on empty grid axes.
    pub fn cells(&self) -> Result<Vec<SweepCell>, SweepError> {
        if self.algorithms.is_empty()
            || self.generators.is_empty()
            || self.sizes.is_empty()
            || self.seeds == 0
        {
            return Err(SweepError::EmptyAxis);
        }
        let mut algos: Vec<&'static dyn DynAlgorithm> = Vec::new();
        for name in &self.algorithms {
            match registry().get(name) {
                Some(a) => algos.push(a),
                None => {
                    return Err(SweepError::UnknownAlgorithm {
                        name: name.clone(),
                        suggestion: registry().suggest(name).map(str::to_string),
                    })
                }
            }
        }
        let mut gens: Vec<&'static NamedGenerator> = Vec::new();
        for name in &self.generators {
            match gen::registry().get(name) {
                Some(g) => gens.push(g),
                None => return Err(SweepError::UnknownGenerator { name: name.clone() }),
            }
        }
        let mut cells = Vec::new();
        for g in &gens {
            for &n in &self.sizes {
                for a in &algos {
                    if a.problem().min_degree() > g.min_degree(n) {
                        continue;
                    }
                    let seeds = if a.deterministic() { 1 } else { self.seeds };
                    for seed in 0..seeds {
                        cells.push(SweepCell {
                            algorithm: a.name(),
                            generator: g.name(),
                            n,
                            seed,
                        });
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// One grid cell: a single (algorithm, family, size, seed) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Algorithm registry key.
    pub algorithm: &'static str,
    /// Generator registry key.
    pub generator: &'static str,
    /// Target size (the family may round it).
    pub n: usize,
    /// Seed index within the cell's group.
    pub seed: u64,
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// An algorithm key is not in the registry.
    UnknownAlgorithm {
        /// The offending key.
        name: String,
        /// Closest registered key, if any is plausible.
        suggestion: Option<String>,
    },
    /// A generator key is not in the registry.
    UnknownGenerator {
        /// The offending key.
        name: String,
    },
    /// Some grid axis is empty.
    EmptyAxis,
    /// A graph family failed to build an instance.
    GraphBuild {
        /// Generator registry key.
        generator: String,
        /// Target size.
        n: usize,
        /// Error rendered by the generator.
        message: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::UnknownAlgorithm { name, suggestion } => {
                write!(f, "unknown algorithm `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " — did you mean `{s}`?")?;
                }
                Ok(())
            }
            SweepError::UnknownGenerator { name } => {
                write!(f, "unknown generator `{name}` (known: ")?;
                let names: Vec<&str> = gen::registry().names().collect();
                write!(f, "{})", names.join(", "))
            }
            SweepError::EmptyAxis => f.write_str("sweep grid has an empty axis"),
            SweepError::GraphBuild {
                generator,
                n,
                message,
            } => write!(f, "generator `{generator}` failed at n={n}: {message}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Measured result of one cell (one verified run).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that was run.
    pub cell: SweepCell,
    /// Realized node count of the instance.
    pub nodes: usize,
    /// Realized edge count of the instance.
    pub edges: usize,
    /// Minimum degree of the instance.
    pub min_degree: usize,
    /// Maximum degree of the instance.
    pub max_degree: usize,
    /// `AVG_V` — node-averaged complexity (Definition 1).
    pub node_averaged: f64,
    /// `AVG_E` — edge-averaged complexity (Definition 1).
    pub edge_averaged: f64,
    /// Edge average under the relaxed one-endpoint convention (fn. 2).
    pub edge_averaged_one_endpoint: f64,
    /// Maximum node completion time.
    pub node_worst: usize,
    /// Total rounds until global termination (classic worst case).
    pub rounds: usize,
    /// Peak CONGEST message size observed, in bits.
    pub peak_message_bits: usize,
}

/// Per-group aggregate over the seed axis: Appendix A's expected
/// complexities on the group's fixed graph instance.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// Algorithm registry key.
    pub algorithm: String,
    /// Generator registry key.
    pub generator: String,
    /// Target size of the group's instance.
    pub n: usize,
    /// Number of aggregated runs (1 for deterministic algorithms).
    pub runs: usize,
    /// Mean of the per-run node-averaged complexities (estimates `AVG_V`).
    pub node_averaged: f64,
    /// Mean of the per-run edge-averaged complexities (estimates `AVG_E`).
    pub edge_averaged: f64,
    /// `EXP_V = max_v E[T_v]` (Appendix A).
    pub node_expected: f64,
    /// `EXP_E = max_e E[T_e]` (Appendix A).
    pub edge_expected: f64,
    /// Mean worst case over the runs.
    pub worst_case: f64,
    /// Whether Appendix A's `AVG ≤ AVG^w ≤ EXP ≤ WORST` chain held.
    pub chain_holds: bool,
}

/// A complete sweep: the spec that produced it, every cell in canonical
/// order, and the per-group aggregates.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The grid that was run.
    pub spec: SweepSpec,
    /// One verified result per cell, in expansion order.
    pub cells: Vec<CellResult>,
    /// Per-(generator, size, algorithm) aggregates, in expansion order.
    pub groups: Vec<GroupResult>,
}

/// Hashes a registry key into a substream tag (iterated SplitMix64 over
/// the bytes) — part of the content-addressed seeding discipline: cell
/// seeds depend on *what* runs, never on *where* or *when*.
pub(crate) fn key_tag(s: &str) -> u64 {
    let mut acc = 0x5EED0F5EED ^ s.len() as u64;
    for &b in s.as_bytes() {
        let mut st = acc ^ u64::from(b);
        acc = splitmix64(&mut st);
    }
    acc
}

/// The seed a `(generator, n)` instance is built from: forked from the
/// master seed by generator key and target size only, so every algorithm
/// and every seed index of a group sees the same topology.
pub(crate) fn graph_seed(master: u64, generator: &str, n: usize) -> u64 {
    Rng::seed_from(master)
        .fork(key_tag(generator))
        .fork(n as u64)
        .next_u64()
}

/// The seed a cell's algorithm run draws from: additionally forked by
/// algorithm key and seed index.
fn algo_seed(master: u64, cell: &SweepCell) -> u64 {
    Rng::seed_from(master)
        .fork(key_tag(cell.generator))
        .fork(cell.n as u64)
        .fork(key_tag(cell.algorithm))
        .fork(cell.seed)
        .next_u64()
}

/// Runs the sweep over `threads` workers.
///
/// The report is byte-for-byte independent of `threads` (see the module
/// docs); `threads` is clamped to `1..=cells`.
///
/// # Errors
///
/// Returns [`SweepError`] for invalid specs or graph-construction
/// failures.
///
/// # Panics
///
/// Panics if a registered algorithm produces an output that fails
/// verification — that is a bug in the algorithm, not in the caller.
pub fn run(spec: &SweepSpec, threads: usize) -> Result<SweepReport, SweepError> {
    let cells = spec.cells()?;
    // Build every (generator, n) instance once, up front and sequentially
    // — deterministic, and workers then share read-only graphs.
    let mut graphs: BTreeMap<(&'static str, usize), Graph> = BTreeMap::new();
    for c in &cells {
        if graphs.contains_key(&(c.generator, c.n)) {
            continue;
        }
        let g = gen::registry()
            .get(c.generator)
            .expect("cells() validated the key")
            .build(c.n, graph_seed(spec.master_seed, c.generator, c.n))
            .map_err(|e| SweepError::GraphBuild {
                generator: c.generator.to_string(),
                n: c.n,
                message: format!("{e:?}"),
            })?;
        graphs.insert((c.generator, c.n), g);
    }

    struct Outcome {
        result: CellResult,
        times: CompletionTimes,
    }

    let threads = threads.clamp(1, cells.len().max(1));
    let slots: Vec<Mutex<Option<Outcome>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let cell = cells[i];
                let g = &graphs[&(cell.generator, cell.n)];
                let algo = registry().get(cell.algorithm).expect("validated key");
                let run = algo.run(g, algo_seed(spec.master_seed, &cell));
                run.verify(g).unwrap_or_else(|e| {
                    panic!(
                        "{} produced an invalid output on {} n={} seed={}: {e}",
                        cell.algorithm, cell.generator, cell.n, cell.seed
                    )
                });
                let times = run.completion_times(g);
                let result = CellResult {
                    cell,
                    nodes: g.n(),
                    edges: g.m(),
                    min_degree: g.min_degree(),
                    max_degree: g.degrees().max().unwrap_or(0),
                    node_averaged: times.node_mean(),
                    edge_averaged: times.edge_mean(),
                    edge_averaged_one_endpoint: times.edge_one_endpoint_mean(),
                    node_worst: times.node_max(),
                    rounds: run.worst_case(),
                    peak_message_bits: run.transcript.peak_message_bits(),
                };
                *slots[i].lock().expect("result slot") = Some(Outcome { result, times });
            });
        }
    });
    let outcomes: Vec<Outcome> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every cell ran")
        })
        .collect();

    // Group aggregation over the seed axis, preserving expansion order.
    let mut groups: Vec<GroupResult> = Vec::new();
    let mut i = 0;
    while i < outcomes.len() {
        let head = &outcomes[i].result.cell;
        let mut j = i;
        while j < outcomes.len() {
            let c = &outcomes[j].result.cell;
            if (c.algorithm, c.generator, c.n) != (head.algorithm, head.generator, head.n) {
                break;
            }
            j += 1;
        }
        let group = &outcomes[i..j];
        let times: Vec<CompletionTimes> = group.iter().map(|o| o.times.clone()).collect();
        let rounds: Vec<usize> = group.iter().map(|o| o.result.rounds).collect();
        let agg = RunAggregate::from_times(&times, &rounds);
        groups.push(GroupResult {
            algorithm: head.algorithm.to_string(),
            generator: head.generator.to_string(),
            n: head.n,
            runs: agg.runs,
            node_averaged: agg.node_averaged,
            edge_averaged: agg.edge_averaged,
            node_expected: agg.node_expected,
            edge_expected: agg.edge_expected,
            worst_case: agg.worst_case,
            chain_holds: agg.inequality_chain_holds(),
        });
        i = j;
    }

    Ok(SweepReport {
        spec: spec.clone(),
        cells: outcomes.into_iter().map(|o| o.result).collect(),
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            algorithms: vec![
                "mis/luby".into(),
                "mis/greedy".into(),
                "ruling/two-two".into(),
            ],
            generators: vec!["regular/4".into(), "tree/random".into()],
            sizes: vec![32, 64],
            seeds: 2,
            master_seed: 7,
        }
    }

    #[test]
    fn cells_expand_in_canonical_order_with_domain_filter() {
        let spec = SweepSpec {
            algorithms: vec!["orientation/rand".into(), "mis/luby".into()],
            generators: vec!["regular/3".into(), "tree/random".into()],
            sizes: vec![32],
            seeds: 2,
            master_seed: 0,
        };
        let cells = spec.cells().unwrap();
        // Orientation (min degree 3) runs on regular/3 but not on trees.
        assert!(cells
            .iter()
            .any(|c| c.algorithm == "orientation/rand" && c.generator == "regular/3"));
        assert!(!cells
            .iter()
            .any(|c| c.algorithm == "orientation/rand" && c.generator == "tree/random"));
        assert!(cells
            .iter()
            .any(|c| c.algorithm == "mis/luby" && c.generator == "tree/random"));
    }

    #[test]
    fn deterministic_algorithms_collapse_the_seed_axis() {
        let spec = SweepSpec {
            algorithms: vec!["mis/greedy".into(), "mis/luby".into()],
            generators: vec!["regular/4".into()],
            sizes: vec![32],
            seeds: 3,
            master_seed: 0,
        };
        let cells = spec.cells().unwrap();
        let greedy = cells.iter().filter(|c| c.algorithm == "mis/greedy").count();
        let luby = cells.iter().filter(|c| c.algorithm == "mis/luby").count();
        assert_eq!(greedy, 1);
        assert_eq!(luby, 3);
    }

    #[test]
    fn unknown_keys_are_rejected_with_suggestions() {
        let mut spec = tiny_spec();
        spec.algorithms.push("mis/lubby".into());
        match spec.cells() {
            Err(SweepError::UnknownAlgorithm { name, suggestion }) => {
                assert_eq!(name, "mis/lubby");
                assert_eq!(suggestion.as_deref(), Some("mis/luby"));
            }
            other => panic!("expected UnknownAlgorithm, got {other:?}"),
        }
        let mut spec = tiny_spec();
        spec.generators.push("regullar/4".into());
        assert!(matches!(
            spec.cells(),
            Err(SweepError::UnknownGenerator { .. })
        ));
        let mut spec = tiny_spec();
        spec.sizes.clear();
        assert_eq!(spec.cells(), Err(SweepError::EmptyAxis));
    }

    #[test]
    fn parallel_report_is_identical_to_sequential() {
        let spec = tiny_spec();
        let a = run(&spec, 1).unwrap();
        let b = run(&spec, 8).unwrap();
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cell, y.cell);
            assert_eq!(x.node_averaged.to_bits(), y.node_averaged.to_bits());
            assert_eq!(x.rounds, y.rounds);
        }
        for (x, y) in a.groups.iter().zip(&b.groups) {
            assert_eq!(x.node_expected.to_bits(), y.node_expected.to_bits());
            assert_eq!(x.chain_holds, y.chain_holds);
        }
    }

    #[test]
    fn groups_share_one_instance_and_satisfy_appendix_a() {
        let report = run(&tiny_spec(), 4).unwrap();
        assert!(!report.groups.is_empty());
        for g in &report.groups {
            assert!(
                g.chain_holds,
                "{}/{} n={} chain broken",
                g.algorithm, g.generator, g.n
            );
        }
        // All cells of one group report the same instance stats.
        for w in report.cells.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if (a.cell.algorithm, a.cell.generator, a.cell.n)
                == (b.cell.algorithm, b.cell.generator, b.cell.n)
            {
                assert_eq!(a.edges, b.edges);
                assert_eq!(a.nodes, b.nodes);
            }
        }
    }

    #[test]
    fn seeding_is_content_addressed() {
        // The graph seed ignores the algorithm; the algo seed does not.
        assert_eq!(
            graph_seed(1, "regular/4", 64),
            graph_seed(1, "regular/4", 64)
        );
        assert_ne!(
            graph_seed(1, "regular/4", 64),
            graph_seed(1, "regular/4", 128)
        );
        assert_ne!(
            graph_seed(1, "regular/4", 64),
            graph_seed(2, "regular/4", 64)
        );
        let c1 = SweepCell {
            algorithm: "mis/luby",
            generator: "regular/4",
            n: 64,
            seed: 0,
        };
        let c2 = SweepCell {
            algorithm: "mis/greedy",
            ..c1
        };
        assert_ne!(algo_seed(1, &c1), algo_seed(1, &c2));
        assert_eq!(algo_seed(1, &c1), algo_seed(1, &c1.clone()));
    }
}
