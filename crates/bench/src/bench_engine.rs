//! Round-engine micro-benchmark (`exp bench-engine`).
//!
//! Times registry algorithms through both executors on named graph
//! families and emits a machine-readable `localavg-bench/v1` JSON
//! document (hand-rolled like [`crate::emit`]). The committed
//! `BENCH_<pr>.json` artifacts pin the before/after evidence for engine
//! optimisations: pass `--baseline FILE` (a previous run of the same
//! subcommand) and the emitted document embeds the baseline cells plus a
//! `speedups` section computed per matching cell.
//!
//! Methodology: one graph instance per `(generator, n)` pair (built
//! outside the timed region with the sweep's content-addressed seed),
//! `reps` timed repetitions per cell, and `best_ms` (the metric the
//! speedup uses — least scheduler noise), `mean_ms`, and `total_ms`
//! (per-cell wall-clock over the repetitions) recorded. The timed region
//! is exactly `DynAlgorithm::execute_in`: the round engine plus the
//! O(n + m) transcript-to-solution conversion, i.e. the work a sweep
//! cell pays per run. `--policy` sets the [`TranscriptPolicy`] of the
//! timed runs and `--reuse-workspace` keeps one [`Workspace`] across a
//! cell's repetitions — together they measure the RunSpec-era fast path
//! against the PR 3 defaults (full transcript, fresh arenas).

use crate::cell::{self, CellKey};
use crate::emit::json_escape;
use crate::generators;
use crate::sweep::{self, SweepError};
use localavg_core::algo::{registry, Exec, RunSpec, TranscriptPolicy, Workspace};
use localavg_graph::Graph;
use std::fmt::Write as _;
use std::time::Instant;

/// What `exp bench-engine` measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchSpec {
    /// Algorithm registry keys to time.
    pub algorithms: Vec<String>,
    /// Generator registry keys to time on.
    pub generators: Vec<String>,
    /// Target sizes.
    pub sizes: Vec<usize>,
    /// Executors to time.
    pub executors: Vec<Exec>,
    /// Timed repetitions per cell (after one untimed warm-up run).
    pub reps: usize,
    /// Master seed for the content-addressed graph/run seeds.
    pub master_seed: u64,
    /// Free-form label recorded in the report (e.g. a refactor name).
    pub label: String,
    /// Transcript retention during the timed runs (`--policy`).
    pub policy: TranscriptPolicy,
    /// Whether the repetitions of one cell share a [`Workspace`]
    /// (`--reuse-workspace`); `false` reallocates arenas per run, which
    /// is what the pre-`Workspace` engine always paid.
    pub reuse_workspace: bool,
    /// String-keyed parameter overrides (`--param family/name:key=value`),
    /// validated like the sweep's.
    pub params: Vec<sweep::ParamOverride>,
}

impl Default for BenchSpec {
    /// The grid the committed `BENCH_*.json` artifacts use: Luby's MIS on
    /// `regular/8` and `gnp/deg8` at n ∈ {10³, 10⁴, 10⁵}, sequential and
    /// 2-thread parallel executors, full transcripts, fresh arenas per
    /// run (the PR 3 baseline semantics).
    fn default() -> Self {
        BenchSpec {
            algorithms: vec!["mis/luby".into()],
            generators: vec!["regular/8".into(), "gnp/deg8".into()],
            sizes: vec![1_000, 10_000, 100_000],
            executors: vec![Exec::Sequential, Exec::Parallel { threads: 2 }],
            reps: 5,
            master_seed: 0,
            label: "unlabelled".into(),
            policy: TranscriptPolicy::Full,
            reuse_workspace: false,
            params: Vec::new(),
        }
    }
}

/// One timed (algorithm, generator, n, executor) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Algorithm registry key.
    pub algorithm: String,
    /// Generator registry key.
    pub generator: String,
    /// Target size.
    pub n: usize,
    /// Realized node count.
    pub nodes: usize,
    /// Realized edge count.
    pub edges: usize,
    /// Wall-clock to build the cell's instance — or to load it, for a
    /// `--graph-file` pseudo-family — in milliseconds. Shared by every
    /// cell of one `(generator, n)` pair; tracked separately from the
    /// run timings so a regression in graph construction is visible on
    /// its own.
    pub graph_build_ms: f64,
    /// In-memory CSR footprint of the instance, in bytes
    /// ([`Graph::memory_bytes`]).
    pub graph_bytes: usize,
    /// Executor label: `"sequential"` or `"parallel/<threads>"`.
    pub executor: String,
    /// Timed repetitions.
    pub reps: usize,
    /// Fastest repetition, in milliseconds.
    pub best_ms: f64,
    /// Mean over the repetitions, in milliseconds.
    pub mean_ms: f64,
    /// Total wall-clock over all timed repetitions of this cell, in
    /// milliseconds (the per-cell cost a sweep over this grid would pay).
    pub total_ms: f64,
    /// Rounds the run took (identical across reps — same seed).
    pub rounds: usize,
}

impl BenchCell {
    /// The identity a `--baseline` comparison matches on: the canonical
    /// [`CellKey`] string of the defaults tuple plus the executor label.
    /// The policy is intentionally pinned to the default in this key so
    /// a `--policy none` fast-path run still matches a Full-policy
    /// baseline (that comparison *is* the fast-path measurement), and
    /// the executor stays outside the tuple — it is a scheduling knob,
    /// exactly as in `exp fuzz`.
    fn key(&self) -> (String, String) {
        (
            CellKey::new(self.generator.clone(), self.n, 0, self.algorithm.clone()).canonical(),
            self.executor.clone(),
        )
    }
}

/// A complete benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The spec that produced it.
    pub spec: BenchSpec,
    /// One timed result per cell, in expansion order.
    pub cells: Vec<BenchCell>,
    /// Wall-clock of the whole grid (graph building, warm-ups, and timed
    /// repetitions), in milliseconds.
    pub wall_ms: f64,
}

fn exec_label(exec: Exec) -> String {
    match exec {
        Exec::Sequential => "sequential".to_string(),
        Exec::Parallel { threads } => format!("parallel/{threads}"),
    }
}

/// Runs the benchmark grid.
///
/// # Errors
///
/// Fails on unknown registry keys or graph-construction failures, with
/// the same error type as the sweep engine.
pub fn run(spec: &BenchSpec) -> Result<BenchReport, SweepError> {
    run_with_file(spec, None)
}

/// [`run`] with an optional file-backed pseudo-family (`--graph-file`):
/// a generator key equal to `file.family` resolves to the loaded
/// instance (its `load_ms` reported as the cell's `graph_build_ms`)
/// instead of a timed registry build.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_with_file(
    spec: &BenchSpec,
    file: Option<&sweep::FileGraph>,
) -> Result<BenchReport, SweepError> {
    for name in &spec.algorithms {
        if registry().get(name).is_none() {
            return Err(SweepError::UnknownAlgorithm {
                name: name.clone(),
                suggestion: registry().suggest(name).map(str::to_string),
            });
        }
    }
    for name in &spec.generators {
        if file.is_some_and(|f| f.family == name.as_str()) {
            continue;
        }
        if generators::registry().get(name).is_none() {
            return Err(SweepError::UnknownGenerator {
                name: name.clone(),
                suggestion: generators::registry().suggest(name).map(str::to_string),
            });
        }
    }
    let grid_start = Instant::now();
    let algos = sweep::configure(&spec.algorithms, &spec.params)?;
    let mut cells = Vec::new();
    for gname in &spec.generators {
        for &n in &spec.sizes {
            let mut owned: Option<Graph> = None;
            let (g, graph_build_ms): (&Graph, f64) = match file {
                Some(f) if f.family == gname.as_str() => (&f.graph, f.load_ms),
                _ => {
                    let family = generators::registry().get(gname).expect("validated key");
                    let build_start = Instant::now();
                    let built = family
                        .build(n, sweep::graph_seed(spec.master_seed, gname, n))
                        .map_err(|e| SweepError::GraphBuild {
                            generator: gname.clone(),
                            n,
                            message: format!("{e:?}"),
                        })?;
                    let ms = build_start.elapsed().as_secs_f64() * 1e3;
                    (&*owned.insert(built), ms)
                }
            };
            for aname in &spec.algorithms {
                let algo = algos.get(aname).expect("validated key");
                if algo.problem().min_degree() > g.min_degree() {
                    continue;
                }
                let seed = cell::graph_seed(spec.master_seed ^ 0xBE7C, aname, n);
                for &exec in &spec.executors {
                    let run_spec = RunSpec::new(seed)
                        .with_exec(exec)
                        .with_transcript(spec.policy);
                    let mut ws = Workspace::new();
                    let warm = algo.execute_in(g, &run_spec, &mut ws);
                    let rounds = warm.worst_case();
                    let mut best = f64::INFINITY;
                    let mut total = 0.0;
                    for _ in 0..spec.reps.max(1) {
                        if !spec.reuse_workspace {
                            // Fresh arenas every repetition — the cost
                            // every run paid before `Workspace` existed.
                            ws = Workspace::new();
                        }
                        let t0 = Instant::now();
                        let run = algo.execute_in(g, &run_spec, &mut ws);
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        assert_eq!(
                            run.worst_case(),
                            rounds,
                            "non-deterministic round count in a fixed-seed benchmark at {}",
                            CellKey::new(gname.clone(), n, 0, aname.clone())
                        );
                        best = best.min(ms);
                        total += ms;
                    }
                    cells.push(BenchCell {
                        algorithm: aname.clone(),
                        generator: gname.clone(),
                        n,
                        nodes: g.n(),
                        edges: g.m(),
                        graph_build_ms,
                        graph_bytes: g.memory_bytes(),
                        executor: exec_label(exec),
                        reps: spec.reps.max(1),
                        best_ms: best,
                        mean_ms: total / spec.reps.max(1) as f64,
                        total_ms: total,
                        rounds,
                    });
                }
            }
        }
    }
    Ok(BenchReport {
        spec: spec.clone(),
        cells,
        wall_ms: grid_start.elapsed().as_secs_f64() * 1e3,
    })
}

fn fmt_ms(x: f64) -> String {
    if x.is_finite() {
        format!("{:.3}", x)
    } else {
        "null".to_string()
    }
}

fn cell_json(c: &BenchCell) -> String {
    format!(
        "{{\"algorithm\": \"{}\", \"generator\": \"{}\", \"n\": {}, \"nodes\": {}, \
         \"edges\": {}, \"graph_build_ms\": {}, \"graph_bytes\": {}, \"executor\": \"{}\", \
         \"reps\": {}, \"best_ms\": {}, \"mean_ms\": {}, \"total_ms\": {}, \"rounds\": {}}}",
        json_escape(&c.algorithm),
        json_escape(&c.generator),
        c.n,
        c.nodes,
        c.edges,
        fmt_ms(c.graph_build_ms),
        c.graph_bytes,
        json_escape(&c.executor),
        c.reps,
        fmt_ms(c.best_ms),
        fmt_ms(c.mean_ms),
        fmt_ms(c.total_ms),
        c.rounds
    )
}

fn push_cells(out: &mut String, cells: &[BenchCell], indent: &str) {
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "{indent}{}{}",
            cell_json(c),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
}

/// Serializes a report to the `localavg-bench/v1` JSON document.
///
/// When `baseline` is given, its cells are embedded under `"baseline"`
/// and a `"speedups"` array records `baseline best_ms / current best_ms`
/// for every cell present in both reports.
pub fn to_json(report: &BenchReport, baseline: Option<&BenchReport>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"localavg-bench/v1\",\n");
    let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(&report.spec.label));
    let _ = writeln!(
        out,
        "  \"spec\": {{\"reps\": {}, \"master_seed\": {}, \"policy\": \"{}\", \
         \"reuse_workspace\": {}}},",
        report.spec.reps,
        report.spec.master_seed,
        report.spec.policy.label(),
        report.spec.reuse_workspace
    );
    let _ = writeln!(out, "  \"wall_ms\": {},", fmt_ms(report.wall_ms));
    out.push_str("  \"cells\": [\n");
    push_cells(&mut out, &report.cells, "    ");
    out.push_str("  ]");
    if let Some(base) = baseline {
        out.push_str(",\n  \"baseline\": {\n");
        let _ = writeln!(out, "    \"label\": \"{}\",", json_escape(&base.spec.label));
        out.push_str("    \"cells\": [\n");
        push_cells(&mut out, &base.cells, "      ");
        let _ = writeln!(
            out,
            "    ],\n    \"unmatched_cells\": {}\n  }},",
            unmatched_baseline_cells(report, base).len()
        );
        out.push_str("  \"speedups\": [\n");
        let pairs: Vec<(&BenchCell, &BenchCell)> = report
            .cells
            .iter()
            .filter_map(|c| {
                base.cells
                    .iter()
                    .find(|b| b.key() == c.key())
                    .map(|b| (c, b))
            })
            .collect();
        for (i, (c, b)) in pairs.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"algorithm\": \"{}\", \"generator\": \"{}\", \"n\": {}, \
                 \"executor\": \"{}\", \"baseline_best_ms\": {}, \"best_ms\": {}, \
                 \"speedup\": {}}}{}",
                json_escape(&c.algorithm),
                json_escape(&c.generator),
                c.n,
                json_escape(&c.executor),
                fmt_ms(b.best_ms),
                fmt_ms(c.best_ms),
                fmt_ms(b.best_ms / c.best_ms),
                if i + 1 < pairs.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("\n}\n");
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_raw(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find([',', '}'])
        .map(|i| i + start)
        .unwrap_or(line.len());
    Some(line[start..end].trim().to_string())
}

/// Number of current cells with no key-matching baseline cell (and thus
/// absent from [`to_json`]'s `speedups` section). The cell key includes
/// the executor label (`"parallel/<threads>"`), so comparing runs made
/// with different `--threads` drops the parallel rows — callers should
/// surface this count instead of letting the rows vanish silently.
pub fn baseline_coverage_gap(current: &BenchReport, baseline: &BenchReport) -> usize {
    current
        .cells
        .iter()
        .filter(|c| !baseline.cells.iter().any(|b| b.key() == c.key()))
        .count()
}

/// Baseline cells with no key-matching counterpart in the current run —
/// the mirror of [`baseline_coverage_gap`]. These rows used to vanish
/// from a `--baseline` comparison without a trace (a shrunk grid or a
/// renamed generator silently compared against nothing); callers should
/// warn per cell and the JSON document records the count.
pub fn unmatched_baseline_cells<'a>(
    current: &BenchReport,
    baseline: &'a BenchReport,
) -> Vec<&'a BenchCell> {
    baseline
        .cells
        .iter()
        .filter(|b| !current.cells.iter().any(|c| c.key() == b.key()))
        .collect()
}

/// CI perf-regression tripwire: for every `(algorithm, generator, n)`
/// group timed on both the sequential executor and a parallel one, the
/// parallel `best_ms` may exceed the sequential `best_ms` by at most
/// `pct` percent. A persistent-pool executor that loses more than that
/// to coordination overhead on a quick-scale cell is a regression, not
/// noise — `exp bench-engine --tripwire PCT` exits nonzero on it.
///
/// Returns one human-readable line per comparison; `Err` carries the
/// first offending line. Groups without both executors are skipped (a
/// sequential-only grid trips nothing).
pub fn tripwire(report: &BenchReport, pct: f64) -> Result<Vec<String>, String> {
    let mut lines = Vec::new();
    for c in &report.cells {
        if c.executor == "sequential" {
            continue;
        }
        let Some(seq) = report.cells.iter().find(|b| {
            b.executor == "sequential"
                && b.algorithm == c.algorithm
                && b.generator == c.generator
                && b.n == c.n
        }) else {
            continue;
        };
        let ratio = c.best_ms / seq.best_ms;
        let line = format!(
            "tripwire: {} on {} n={} — {} {:.3} ms vs sequential {:.3} ms \
             (ratio {:.2}, limit {:.2})",
            c.algorithm,
            c.generator,
            c.n,
            c.executor,
            c.best_ms,
            seq.best_ms,
            ratio,
            1.0 + pct / 100.0
        );
        if ratio > 1.0 + pct / 100.0 {
            return Err(format!(
                "{line}: the parallel executor is more than {pct}% slower than sequential"
            ));
        }
        lines.push(line);
    }
    Ok(lines)
}

/// Parses the cells of a previously written `localavg-bench/v1` document.
///
/// This is a line-based reader for our own fixed emitter format (one cell
/// object per line), not a general JSON parser; it stops at the end of
/// the top-level `"cells"` array, so a document that itself embeds a
/// baseline round-trips to its *current* cells only. Returns `None` for
/// text that does not carry the `localavg-bench/v1` schema marker or has
/// no `"cells"` array — pointing `--baseline` at the wrong file must be
/// an error, not an empty comparison.
///
/// Fields that predate the `v1` additions of this release (`total_ms`,
/// `wall_ms`, the spec's `policy`/`reuse_workspace`, and the
/// `graph_build_ms`/`graph_bytes` columns) are optional, so older
/// committed artifacts (e.g. `BENCH_3.json`) still load as baselines: a
/// missing `total_ms` is reconstructed as `mean_ms * reps`, missing
/// build-cost columns load as zero.
pub fn parse_report(text: &str) -> Option<BenchReport> {
    if !text.contains("\"schema\": \"localavg-bench/v1\"") {
        return None;
    }
    let mut label = "unknown".to_string();
    let mut policy = TranscriptPolicy::Full;
    let mut reuse_workspace = false;
    let mut wall_ms = 0.0;
    let mut cells = Vec::new();
    let mut in_cells = false;
    let mut saw_cells = false;
    for line in text.lines() {
        let t = line.trim();
        if !in_cells {
            if t.starts_with("\"label\"") {
                if let Some(l) = field_str(line, "label") {
                    label = l;
                }
            }
            if t.starts_with("\"spec\"") {
                if let Some(p) = field_str(line, "policy").and_then(|p| TranscriptPolicy::parse(&p))
                {
                    policy = p;
                }
                if let Some(r) = field_raw(line, "reuse_workspace") {
                    reuse_workspace = r == "true";
                }
            }
            if t.starts_with("\"wall_ms\"") {
                if let Some(w) = field_raw(line, "wall_ms").and_then(|w| w.parse().ok()) {
                    wall_ms = w;
                }
            }
            if t.starts_with("\"cells\"") {
                in_cells = true;
                saw_cells = true;
            }
            continue;
        }
        if t.starts_with(']') {
            break;
        }
        let reps: usize = field_raw(line, "reps")?.parse().ok()?;
        let mean_ms: f64 = field_raw(line, "mean_ms")?.parse().ok()?;
        let total_ms = field_raw(line, "total_ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(mean_ms * reps as f64);
        let cell = BenchCell {
            algorithm: field_str(line, "algorithm")?,
            generator: field_str(line, "generator")?,
            n: field_raw(line, "n")?.parse().ok()?,
            nodes: field_raw(line, "nodes")?.parse().ok()?,
            edges: field_raw(line, "edges")?.parse().ok()?,
            // Pre-v1-addition documents (BENCH_5 and earlier) carry no
            // build-cost columns; they load with zeros.
            graph_build_ms: field_raw(line, "graph_build_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0),
            graph_bytes: field_raw(line, "graph_bytes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            executor: field_str(line, "executor")?,
            reps,
            best_ms: field_raw(line, "best_ms")?.parse().ok()?,
            mean_ms,
            total_ms,
            rounds: field_raw(line, "rounds")?.parse().ok()?,
        };
        cells.push(cell);
    }
    if !saw_cells {
        return None;
    }
    Some(BenchReport {
        spec: BenchSpec {
            label,
            policy,
            reuse_workspace,
            ..BenchSpec::default()
        },
        cells,
        wall_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> BenchSpec {
        BenchSpec {
            algorithms: vec!["mis/luby".into()],
            generators: vec!["regular/4".into()],
            sizes: vec![64],
            executors: vec![Exec::Sequential, Exec::Parallel { threads: 2 }],
            reps: 2,
            master_seed: 3,
            label: "test".into(),
            policy: TranscriptPolicy::Full,
            reuse_workspace: false,
            params: Vec::new(),
        }
    }

    #[test]
    fn bench_runs_and_reports_every_executor() {
        let report = run(&tiny_spec()).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].executor, "sequential");
        assert_eq!(report.cells[1].executor, "parallel/2");
        let mut cell_total = 0.0;
        for c in &report.cells {
            assert!(c.best_ms.is_finite() && c.best_ms >= 0.0);
            assert!(c.mean_ms >= c.best_ms);
            assert!((c.total_ms - c.mean_ms * c.reps as f64).abs() < 1e-6);
            assert!(c.rounds > 0);
            assert_eq!(c.nodes, 64);
            assert!(c.graph_build_ms >= 0.0);
            assert!(c.graph_bytes > 0);
            cell_total += c.total_ms;
        }
        // Both cells time the same (generator, n) instance, so the build
        // cost and footprint are shared.
        assert_eq!(report.cells[0].graph_bytes, report.cells[1].graph_bytes);
        assert_eq!(
            report.cells[0].graph_build_ms.to_bits(),
            report.cells[1].graph_build_ms.to_bits()
        );
        // The grid wall-clock covers at least the timed repetitions.
        assert!(report.wall_ms >= cell_total);
    }

    #[test]
    fn policy_and_reuse_produce_identical_rounds() {
        // The fast path (no audit, reused arenas) must not change the
        // simulated execution — only its cost.
        let full = run(&tiny_spec()).unwrap();
        let mut spec = tiny_spec();
        spec.policy = TranscriptPolicy::None;
        spec.reuse_workspace = true;
        let fast = run(&spec).unwrap();
        assert_eq!(full.cells.len(), fast.cells.len());
        for (a, b) in full.cells.iter().zip(&fast.cells) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut spec = tiny_spec();
        spec.algorithms = vec!["mis/lubby".into()];
        assert!(matches!(
            run(&spec),
            Err(SweepError::UnknownAlgorithm { .. })
        ));
        let mut spec = tiny_spec();
        spec.generators = vec!["regullar/4".into()];
        assert!(matches!(
            run(&spec),
            Err(SweepError::UnknownGenerator { .. })
        ));
    }

    #[test]
    fn json_roundtrips_through_parse_report() {
        let mut spec = tiny_spec();
        spec.policy = TranscriptPolicy::CompletionsOnly;
        spec.reuse_workspace = true;
        let report = run(&spec).unwrap();
        let json = to_json(&report, None);
        assert!(json.contains("\"schema\": \"localavg-bench/v1\""));
        assert!(json.contains("\"policy\": \"completions\""));
        assert!(json.contains("\"reuse_workspace\": true"));
        assert!(json.contains("\"wall_ms\""));
        let parsed = parse_report(&json).expect("parse back");
        assert_eq!(parsed.spec.label, "test");
        assert_eq!(parsed.spec.policy, TranscriptPolicy::CompletionsOnly);
        assert!(parsed.spec.reuse_workspace);
        assert!(parsed.wall_ms > 0.0);
        assert_eq!(parsed.cells.len(), report.cells.len());
        for (a, b) in parsed.cells.iter().zip(&report.cells) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.rounds, b.rounds);
            assert!((a.best_ms - b.best_ms).abs() < 1e-3);
            assert!((a.total_ms - b.total_ms).abs() < 1e-3);
            assert!((a.graph_build_ms - b.graph_build_ms).abs() < 1e-3);
            assert_eq!(a.graph_bytes, b.graph_bytes);
        }
    }

    #[test]
    fn file_backed_cells_use_the_loaded_instance() {
        use localavg_graph::{gen, io, rng::Rng};
        let g = gen::random_regular(64, 4, &mut Rng::seed_from(2)).unwrap();
        let file = sweep::FileGraph {
            family: Box::leak(cell::file_family(io::content_hash(&g)).into_boxed_str()),
            graph: g,
            load_ms: 1.5,
        };
        let mut spec = tiny_spec();
        spec.generators = vec![file.family.to_string()];
        let report = run_with_file(&spec, Some(&file)).unwrap();
        assert_eq!(report.cells.len(), 2);
        for c in &report.cells {
            assert_eq!(c.generator, file.family);
            assert_eq!(c.nodes, 64);
            assert_eq!(c.edges, 128);
            // The load time stands in for the build time.
            assert_eq!(c.graph_build_ms, 1.5);
            assert_eq!(c.graph_bytes, file.graph.memory_bytes());
        }
        // Without the file, the pseudo-family is unknown.
        assert!(matches!(
            run(&spec),
            Err(SweepError::UnknownGenerator { .. })
        ));
    }

    #[test]
    fn parse_report_accepts_pre_total_ms_documents() {
        // The committed BENCH_3.json predates total_ms/wall_ms/policy;
        // it must keep loading as a --baseline.
        let legacy = "{\n  \"schema\": \"localavg-bench/v1\",\n  \"label\": \"old\",\n  \
                      \"spec\": {\"reps\": 5, \"master_seed\": 0},\n  \"cells\": [\n    \
                      {\"algorithm\": \"mis/luby\", \"generator\": \"regular/8\", \"n\": 1000, \
                      \"nodes\": 1000, \"edges\": 4000, \"executor\": \"sequential\", \
                      \"reps\": 5, \"best_ms\": 1.000, \"mean_ms\": 2.000, \"rounds\": 23}\n  \
                      ]\n}\n";
        let parsed = parse_report(legacy).expect("legacy document parses");
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.spec.policy, TranscriptPolicy::Full);
        assert!(!parsed.spec.reuse_workspace);
        assert_eq!(parsed.wall_ms, 0.0);
        // total_ms reconstructed as mean * reps.
        assert!((parsed.cells[0].total_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_json_escaped() {
        let mut report = run(&tiny_spec()).unwrap();
        report.spec.label = "quo\"te".into();
        let json = to_json(&report, Some(&report));
        assert!(json.contains(r#""label": "quo\"te""#));
    }

    #[test]
    fn baseline_coverage_gap_counts_unmatched_cells() {
        let report = run(&tiny_spec()).unwrap();
        assert_eq!(baseline_coverage_gap(&report, &report), 0);
        let mut other = report.clone();
        other.cells[1].executor = "parallel/7".into();
        assert_eq!(baseline_coverage_gap(&report, &other), 1);
    }

    #[test]
    fn unmatched_baseline_cells_are_counted_and_recorded() {
        let report = run(&tiny_spec()).unwrap();
        assert!(unmatched_baseline_cells(&report, &report).is_empty());
        let mut base = report.clone();
        base.cells[0].generator = "regular/8".into(); // no counterpart now
        let dropped = unmatched_baseline_cells(&report, &base);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].generator, "regular/8");
        // The emitted document carries the nonzero count.
        let json = to_json(&report, Some(&base));
        assert!(json.contains("\"unmatched_cells\": 1"));
        let clean = to_json(&report, Some(&report));
        assert!(clean.contains("\"unmatched_cells\": 0"));
    }

    #[test]
    fn tripwire_trips_only_on_a_real_slowdown() {
        let mut report = run(&tiny_spec()).unwrap();
        // Pin the timings: parallel exactly 20% slower than sequential.
        report.cells[0].best_ms = 10.0;
        report.cells[1].best_ms = 12.0;
        let lines = tripwire(&report, 25.0).expect("within the limit");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("ratio 1.20"));
        // 35% slower trips a 25% limit with a clear message.
        report.cells[1].best_ms = 13.5;
        let err = tripwire(&report, 25.0).expect_err("beyond the limit");
        assert!(err.contains("more than 25% slower"), "{err}");
        assert!(err.contains("mis/luby"), "{err}");
        // A sequential-only report has nothing to compare.
        report.cells.truncate(1);
        assert_eq!(tripwire(&report, 25.0).unwrap().len(), 0);
    }

    #[test]
    fn baseline_produces_speedups_section() {
        let report = run(&tiny_spec()).unwrap();
        let json = to_json(&report, Some(&report));
        assert!(json.contains("\"baseline\""));
        assert!(json.contains("\"speedups\""));
        assert!(json.contains("\"speedup\": 1.000"));
        // A doc with an embedded baseline parses back to the current cells.
        let parsed = parse_report(&json).expect("parse back");
        assert_eq!(parsed.cells.len(), report.cells.len());
    }
}
