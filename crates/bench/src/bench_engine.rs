//! Round-engine micro-benchmark (`exp bench-engine`).
//!
//! Times registry algorithms through both executors on named graph
//! families and emits a machine-readable `localavg-bench/v1` JSON
//! document (hand-rolled like [`crate::emit`]). The committed
//! `BENCH_<pr>.json` artifacts pin the before/after evidence for engine
//! optimisations: pass `--baseline FILE` (a previous run of the same
//! subcommand) and the emitted document embeds the baseline cells plus a
//! `speedups` section computed per matching cell.
//!
//! Methodology: one graph instance per `(generator, n)` pair (built
//! outside the timed region with the sweep's content-addressed seed),
//! `reps` timed repetitions per cell, and both `best_ms` (the metric the
//! speedup uses — least scheduler noise) and `mean_ms` recorded. The
//! timed region is exactly `DynAlgorithm::run_exec`: the round engine
//! plus the O(n + m) transcript-to-solution conversion, i.e. the work a
//! sweep cell pays per run.

use crate::emit::json_escape;
use crate::sweep::{self, SweepError};
use localavg_core::algo::{registry, Exec};
use localavg_graph::gen;
use localavg_graph::Graph;
use std::fmt::Write as _;
use std::time::Instant;

/// What `exp bench-engine` measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchSpec {
    /// Algorithm registry keys to time.
    pub algorithms: Vec<String>,
    /// Generator registry keys to time on.
    pub generators: Vec<String>,
    /// Target sizes.
    pub sizes: Vec<usize>,
    /// Executors to time.
    pub executors: Vec<Exec>,
    /// Timed repetitions per cell (after one untimed warm-up run).
    pub reps: usize,
    /// Master seed for the content-addressed graph/run seeds.
    pub master_seed: u64,
    /// Free-form label recorded in the report (e.g. a refactor name).
    pub label: String,
}

impl Default for BenchSpec {
    /// The grid the committed `BENCH_*.json` artifacts use: Luby's MIS on
    /// `regular/8` and `gnp/deg8` at n ∈ {10³, 10⁴, 10⁵}, sequential and
    /// 2-thread parallel executors.
    fn default() -> Self {
        BenchSpec {
            algorithms: vec!["mis/luby".into()],
            generators: vec!["regular/8".into(), "gnp/deg8".into()],
            sizes: vec![1_000, 10_000, 100_000],
            executors: vec![Exec::Sequential, Exec::Parallel { threads: 2 }],
            reps: 5,
            master_seed: 0,
            label: "unlabelled".into(),
        }
    }
}

/// One timed (algorithm, generator, n, executor) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Algorithm registry key.
    pub algorithm: String,
    /// Generator registry key.
    pub generator: String,
    /// Target size.
    pub n: usize,
    /// Realized node count.
    pub nodes: usize,
    /// Realized edge count.
    pub edges: usize,
    /// Executor label: `"sequential"` or `"parallel/<threads>"`.
    pub executor: String,
    /// Timed repetitions.
    pub reps: usize,
    /// Fastest repetition, in milliseconds.
    pub best_ms: f64,
    /// Mean over the repetitions, in milliseconds.
    pub mean_ms: f64,
    /// Rounds the run took (identical across reps — same seed).
    pub rounds: usize,
}

impl BenchCell {
    fn key(&self) -> (&str, &str, usize, &str) {
        (&self.algorithm, &self.generator, self.n, &self.executor)
    }
}

/// A complete benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The spec that produced it.
    pub spec: BenchSpec,
    /// One timed result per cell, in expansion order.
    pub cells: Vec<BenchCell>,
}

fn exec_label(exec: Exec) -> String {
    match exec {
        Exec::Sequential => "sequential".to_string(),
        Exec::Parallel { threads } => format!("parallel/{threads}"),
    }
}

/// Runs the benchmark grid.
///
/// # Errors
///
/// Fails on unknown registry keys or graph-construction failures, with
/// the same error type as the sweep engine.
pub fn run(spec: &BenchSpec) -> Result<BenchReport, SweepError> {
    for name in &spec.algorithms {
        if registry().get(name).is_none() {
            return Err(SweepError::UnknownAlgorithm {
                name: name.clone(),
                suggestion: registry().suggest(name).map(str::to_string),
            });
        }
    }
    for name in &spec.generators {
        if gen::registry().get(name).is_none() {
            return Err(SweepError::UnknownGenerator { name: name.clone() });
        }
    }
    let mut cells = Vec::new();
    for gname in &spec.generators {
        let family = gen::registry().get(gname).expect("validated key");
        for &n in &spec.sizes {
            let g: Graph = family
                .build(n, sweep::graph_seed(spec.master_seed, gname, n))
                .map_err(|e| SweepError::GraphBuild {
                    generator: gname.clone(),
                    n,
                    message: format!("{e:?}"),
                })?;
            for aname in &spec.algorithms {
                let algo = registry().get(aname).expect("validated key");
                if algo.problem().min_degree() > g.min_degree() {
                    continue;
                }
                let seed = sweep::graph_seed(spec.master_seed ^ 0xBE7C, aname, n);
                for &exec in &spec.executors {
                    let warm = algo.run_exec(&g, seed, exec);
                    let rounds = warm.worst_case();
                    let mut best = f64::INFINITY;
                    let mut total = 0.0;
                    for _ in 0..spec.reps.max(1) {
                        let t0 = Instant::now();
                        let run = algo.run_exec(&g, seed, exec);
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        assert_eq!(
                            run.worst_case(),
                            rounds,
                            "non-deterministic round count in a fixed-seed benchmark"
                        );
                        best = best.min(ms);
                        total += ms;
                    }
                    cells.push(BenchCell {
                        algorithm: aname.clone(),
                        generator: gname.clone(),
                        n,
                        nodes: g.n(),
                        edges: g.m(),
                        executor: exec_label(exec),
                        reps: spec.reps.max(1),
                        best_ms: best,
                        mean_ms: total / spec.reps.max(1) as f64,
                        rounds,
                    });
                }
            }
        }
    }
    Ok(BenchReport {
        spec: spec.clone(),
        cells,
    })
}

fn fmt_ms(x: f64) -> String {
    if x.is_finite() {
        format!("{:.3}", x)
    } else {
        "null".to_string()
    }
}

fn cell_json(c: &BenchCell) -> String {
    format!(
        "{{\"algorithm\": \"{}\", \"generator\": \"{}\", \"n\": {}, \"nodes\": {}, \
         \"edges\": {}, \"executor\": \"{}\", \"reps\": {}, \"best_ms\": {}, \
         \"mean_ms\": {}, \"rounds\": {}}}",
        json_escape(&c.algorithm),
        json_escape(&c.generator),
        c.n,
        c.nodes,
        c.edges,
        json_escape(&c.executor),
        c.reps,
        fmt_ms(c.best_ms),
        fmt_ms(c.mean_ms),
        c.rounds
    )
}

fn push_cells(out: &mut String, cells: &[BenchCell], indent: &str) {
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "{indent}{}{}",
            cell_json(c),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
}

/// Serializes a report to the `localavg-bench/v1` JSON document.
///
/// When `baseline` is given, its cells are embedded under `"baseline"`
/// and a `"speedups"` array records `baseline best_ms / current best_ms`
/// for every cell present in both reports.
pub fn to_json(report: &BenchReport, baseline: Option<&BenchReport>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"localavg-bench/v1\",\n");
    let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(&report.spec.label));
    let _ = writeln!(
        out,
        "  \"spec\": {{\"reps\": {}, \"master_seed\": {}}},",
        report.spec.reps, report.spec.master_seed
    );
    out.push_str("  \"cells\": [\n");
    push_cells(&mut out, &report.cells, "    ");
    out.push_str("  ]");
    if let Some(base) = baseline {
        out.push_str(",\n  \"baseline\": {\n");
        let _ = writeln!(out, "    \"label\": \"{}\",", json_escape(&base.spec.label));
        out.push_str("    \"cells\": [\n");
        push_cells(&mut out, &base.cells, "      ");
        out.push_str("    ]\n  },\n  \"speedups\": [\n");
        let pairs: Vec<(&BenchCell, &BenchCell)> = report
            .cells
            .iter()
            .filter_map(|c| {
                base.cells
                    .iter()
                    .find(|b| b.key() == c.key())
                    .map(|b| (c, b))
            })
            .collect();
        for (i, (c, b)) in pairs.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"algorithm\": \"{}\", \"generator\": \"{}\", \"n\": {}, \
                 \"executor\": \"{}\", \"baseline_best_ms\": {}, \"best_ms\": {}, \
                 \"speedup\": {}}}{}",
                json_escape(&c.algorithm),
                json_escape(&c.generator),
                c.n,
                json_escape(&c.executor),
                fmt_ms(b.best_ms),
                fmt_ms(c.best_ms),
                fmt_ms(b.best_ms / c.best_ms),
                if i + 1 < pairs.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("\n}\n");
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_raw(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find([',', '}'])
        .map(|i| i + start)
        .unwrap_or(line.len());
    Some(line[start..end].trim().to_string())
}

/// Number of current cells with no key-matching baseline cell (and thus
/// absent from [`to_json`]'s `speedups` section). The cell key includes
/// the executor label (`"parallel/<threads>"`), so comparing runs made
/// with different `--threads` drops the parallel rows — callers should
/// surface this count instead of letting the rows vanish silently.
pub fn baseline_coverage_gap(current: &BenchReport, baseline: &BenchReport) -> usize {
    current
        .cells
        .iter()
        .filter(|c| !baseline.cells.iter().any(|b| b.key() == c.key()))
        .count()
}

/// Parses the cells of a previously written `localavg-bench/v1` document.
///
/// This is a line-based reader for our own fixed emitter format (one cell
/// object per line), not a general JSON parser; it stops at the end of
/// the top-level `"cells"` array, so a document that itself embeds a
/// baseline round-trips to its *current* cells only. Returns `None` for
/// text that does not carry the `localavg-bench/v1` schema marker or has
/// no `"cells"` array — pointing `--baseline` at the wrong file must be
/// an error, not an empty comparison.
pub fn parse_report(text: &str) -> Option<BenchReport> {
    if !text.contains("\"schema\": \"localavg-bench/v1\"") {
        return None;
    }
    let mut label = "unknown".to_string();
    let mut cells = Vec::new();
    let mut in_cells = false;
    let mut saw_cells = false;
    for line in text.lines() {
        let t = line.trim();
        if !in_cells {
            if t.starts_with("\"label\"") {
                if let Some(l) = field_str(line, "label") {
                    label = l;
                }
            }
            if t.starts_with("\"cells\"") {
                in_cells = true;
                saw_cells = true;
            }
            continue;
        }
        if t.starts_with(']') {
            break;
        }
        let cell = BenchCell {
            algorithm: field_str(line, "algorithm")?,
            generator: field_str(line, "generator")?,
            n: field_raw(line, "n")?.parse().ok()?,
            nodes: field_raw(line, "nodes")?.parse().ok()?,
            edges: field_raw(line, "edges")?.parse().ok()?,
            executor: field_str(line, "executor")?,
            reps: field_raw(line, "reps")?.parse().ok()?,
            best_ms: field_raw(line, "best_ms")?.parse().ok()?,
            mean_ms: field_raw(line, "mean_ms")?.parse().ok()?,
            rounds: field_raw(line, "rounds")?.parse().ok()?,
        };
        cells.push(cell);
    }
    if !saw_cells {
        return None;
    }
    Some(BenchReport {
        spec: BenchSpec {
            label,
            ..BenchSpec::default()
        },
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> BenchSpec {
        BenchSpec {
            algorithms: vec!["mis/luby".into()],
            generators: vec!["regular/4".into()],
            sizes: vec![64],
            executors: vec![Exec::Sequential, Exec::Parallel { threads: 2 }],
            reps: 2,
            master_seed: 3,
            label: "test".into(),
        }
    }

    #[test]
    fn bench_runs_and_reports_every_executor() {
        let report = run(&tiny_spec()).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].executor, "sequential");
        assert_eq!(report.cells[1].executor, "parallel/2");
        for c in &report.cells {
            assert!(c.best_ms.is_finite() && c.best_ms >= 0.0);
            assert!(c.mean_ms >= c.best_ms);
            assert!(c.rounds > 0);
            assert_eq!(c.nodes, 64);
        }
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut spec = tiny_spec();
        spec.algorithms = vec!["mis/lubby".into()];
        assert!(matches!(
            run(&spec),
            Err(SweepError::UnknownAlgorithm { .. })
        ));
        let mut spec = tiny_spec();
        spec.generators = vec!["regullar/4".into()];
        assert!(matches!(
            run(&spec),
            Err(SweepError::UnknownGenerator { .. })
        ));
    }

    #[test]
    fn json_roundtrips_through_parse_report() {
        let report = run(&tiny_spec()).unwrap();
        let json = to_json(&report, None);
        assert!(json.contains("\"schema\": \"localavg-bench/v1\""));
        let parsed = parse_report(&json).expect("parse back");
        assert_eq!(parsed.spec.label, "test");
        assert_eq!(parsed.cells.len(), report.cells.len());
        for (a, b) in parsed.cells.iter().zip(&report.cells) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.rounds, b.rounds);
            assert!((a.best_ms - b.best_ms).abs() < 1e-3);
        }
    }

    #[test]
    fn labels_are_json_escaped() {
        let mut report = run(&tiny_spec()).unwrap();
        report.spec.label = "quo\"te".into();
        let json = to_json(&report, Some(&report));
        assert!(json.contains(r#""label": "quo\"te""#));
    }

    #[test]
    fn baseline_coverage_gap_counts_unmatched_cells() {
        let report = run(&tiny_spec()).unwrap();
        assert_eq!(baseline_coverage_gap(&report, &report), 0);
        let mut other = report.clone();
        other.cells[1].executor = "parallel/7".into();
        assert_eq!(baseline_coverage_gap(&report, &other), 1);
    }

    #[test]
    fn baseline_produces_speedups_section() {
        let report = run(&tiny_spec()).unwrap();
        let json = to_json(&report, Some(&report));
        assert!(json.contains("\"baseline\""));
        assert!(json.contains("\"speedups\""));
        assert!(json.contains("\"speedup\": 1.000"));
        // A doc with an embedded baseline parses back to the current cells.
        let parsed = parse_report(&json).expect("parse back");
        assert_eq!(parsed.cells.len(), report.cells.len());
    }
}
