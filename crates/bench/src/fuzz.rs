//! `exp fuzz` — the seeded differential fuzz harness.
//!
//! Four PRs of engine surgery (CSR core, flat arenas, transcript
//! policies, workspace reuse) left correctness resting on golden bytes —
//! self-consistency, not independent evidence. This harness supplies the
//! evidence: it samples (family × size × algorithm × params × policy ×
//! executor) cells from a master seed, runs the fast engine, and
//! cross-checks every run against the `localavg_core::check` oracle:
//!
//! 1. the fast `analysis.rs` validator and the naive oracle validator
//!    must both accept the solution;
//! 2. the oracle's independent Definition 1 recomputation must match
//!    `metrics.rs` elementwise, and the per-run Appendix A inequality
//!    chain must hold;
//! 3. a canonical re-run (sequential executor, full transcript, fresh
//!    workspace) must reproduce the solution and completion times
//!    bit-for-bit — policies and executors are pure performance knobs;
//! 4. on tiny instances the brute-force optimality bounds must hold;
//! 5. a deterministically corrupted copy of the solution must be
//!    **rejected by both validators** — this is the mutation leg that
//!    catches a weakened validator on either side (break one locally and
//!    `exp fuzz` fails within a handful of cases);
//! 6. the canonical run's live-frontier ledger must replay from its
//!    per-node termination ledger: recomputing "nodes still live after
//!    round r" from the halt rounds has to reproduce the engine's O(1)
//!    live counter at every round, monotone non-increasing, reaching
//!    zero exactly at the final round — the invariant the delta-routed
//!    executor's per-round cost model stands on;
//! 7. a re-run of the same cell with the chunk size forced to one node
//!    per chunk (the most adversarial geometry the chunked executor
//!    admits) must byte-match the default geometry;
//! 8. the instance must survive a `localavg-csr/v1` serialization round
//!    trip bit-for-bit with a footer equal to its content hash, and a
//!    copy whose header counts are byte-swapped to big-endian must be
//!    rejected as [`localavg_graph::io::ReadError::HeaderOutOfRange`] —
//!    the reader must never misread a foreign-endian file as a small
//!    valid graph;
//! 9. the distributional summaries the sweep emits per group must be
//!    internally consistent on the cell's own sample: nearest-rank
//!    percentiles are monotone (`p50 ≤ p90 ≤ p99 ≤ max`), histograms
//!    account for every observation, the node mean never exceeds the
//!    node p99, and an audited run's per-node sent-volume summary obeys
//!    the same ordering.
//!
//! On failure the harness shrinks the cell — smaller size, default
//! params, full transcript, sequential executor, smaller seed — and
//! reports the minimal failing `(generator, n, seed, algorithm, params)`
//! tuple, ready to paste into a regression test.
//!
//! Everything is a pure function of `FuzzSpec`: case `i` draws from
//! `Rng::seed_from(master_seed).fork(i)`, and instances reuse the
//! sweep's content-addressed [`sweep::graph_seed`], so a reported tuple
//! replays exactly.

use crate::cell::CellKey;
use crate::generators;
use crate::sweep::{self, SweepError};
use localavg_core::algo::{
    registry, DynAlgorithm, Exec, RunSpec, Solution, TranscriptPolicy, Workspace,
};
use localavg_core::check;
use localavg_core::metrics::Distribution;
use localavg_graph::analysis::Orientation;
use localavg_graph::io;
use localavg_graph::rng::Rng;
use localavg_graph::Graph;
use std::collections::BTreeMap;
use std::fmt;

/// What `exp fuzz` samples over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSpec {
    /// Number of sampled cells.
    pub cases: usize,
    /// Master seed every per-case substream forks from.
    pub master_seed: u64,
    /// Algorithm registry keys to sample (default: all of them).
    pub algorithms: Vec<String>,
    /// Generator registry keys to sample (default: a mix of easy, tree,
    /// and lower-bound hard families).
    pub generators: Vec<String>,
    /// Target sizes to sample, biased small so the brute-force layer
    /// fires often.
    pub sizes: Vec<usize>,
    /// Fully pinned single-cell mode — the replay path printed on
    /// failure. Requires exactly one generator, one size, and one
    /// algorithm; seed/policy/threads/params come from here instead of
    /// being sampled, so the reported shrunk tuple reproduces verbatim.
    pub exact: Option<ExactCell>,
}

/// The pinned axes of an `--exact` replay (see [`FuzzSpec::exact`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExactCell {
    /// Run seed.
    pub seed: u64,
    /// Transcript policy.
    pub policy: TranscriptPolicy,
    /// Parallel worker count (0 = sequential executor).
    pub threads: usize,
    /// Parameter overrides for the single selected algorithm.
    pub params: Vec<(String, String)>,
}

impl Default for FuzzSpec {
    fn default() -> Self {
        FuzzSpec {
            cases: 256,
            master_seed: 0,
            algorithms: registry().names().map(str::to_string).collect(),
            generators: [
                "path",
                "cycle",
                "grid",
                "tree/random",
                "tree/bounded/3",
                "tree/bounded/8",
                "tree/caterpillar",
                "tree/spider",
                "regular/3",
                "regular/8",
                "gnp/deg8",
                "lb/cluster-tree/1",
                "lb/cluster-tree/2",
                "lb/lift/1",
                "lb/lift/2",
                "lb/doubled/1",
            ]
            .map(str::to_string)
            .to_vec(),
            sizes: vec![8, 10, 12, 14, 16, 18, 20, 32, 64, 128, 256],
            exact: None,
        }
    }
}

/// One sampled cell — also the shape of the shrunk failure tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCell {
    /// Generator registry key.
    pub generator: &'static str,
    /// Target size (the family may round it).
    pub n: usize,
    /// Algorithm registry key.
    pub algorithm: &'static str,
    /// Sampled `(key, value)` parameter overrides (empty = defaults).
    pub params: Vec<(String, String)>,
    /// Transcript policy of the fast run.
    pub policy: TranscriptPolicy,
    /// Parallel worker count of the fast run (0 = sequential executor).
    pub threads: usize,
    /// Run seed.
    pub seed: u64,
}

impl FuzzCell {
    fn exec(&self) -> Exec {
        if self.threads == 0 {
            Exec::Sequential
        } else {
            Exec::Parallel {
                threads: self.threads,
            }
        }
    }

    /// The canonical [`CellKey`] of this cell — the identity the failure
    /// report prints and the `--exact` replay command is built from
    /// (`threads` is an executor knob, carried separately).
    pub fn key(&self) -> CellKey {
        CellKey::new(self.generator, self.n, self.seed, self.algorithm)
            .with_params(self.params.clone())
            .with_policy(self.policy)
    }
}

impl fmt::Display for FuzzCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}; threads={})", self.key(), self.threads)
    }
}

/// A confirmed disagreement, with its shrunk reproduction.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The cell as originally sampled.
    pub original: FuzzCell,
    /// The minimal failing cell after shrinking.
    pub shrunk: FuzzCell,
    /// What went wrong at the shrunk cell.
    pub message: String,
}

/// Outcome of a fuzz session.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cells sampled and checked.
    pub cases: usize,
    /// Cells per algorithm key (coverage evidence).
    pub per_algorithm: BTreeMap<&'static str, usize>,
    /// Cells per generator key.
    pub per_generator: BTreeMap<&'static str, usize>,
    /// Cells small enough for the brute-force layer.
    pub brute_checked: usize,
    /// Cells whose corrupted twin exercised the mutation leg.
    pub mutations_checked: usize,
    /// The first failure, shrunk, if any check tripped.
    pub failure: Option<FuzzFailure>,
}

/// Known-good sample values per tunable parameter, used to exercise the
/// `with_params` path without tripping its validation. One pair is
/// sampled at a time (some keys are mutually exclusive, e.g.
/// `ruling/det`'s `variant` vs `iterations`).
fn param_pool(algorithm: &str) -> &'static [(&'static str, &'static [&'static str])] {
    match algorithm {
        "mis/luby" => &[("mark-factor", &["0.25", "0.75", "1.0"])],
        "mis/degree-guided" => &[
            ("initial-desire", &["0.25", "0.4"]),
            ("mass-threshold", &["1.0", "4.0"]),
        ],
        "ruling/det" => &[
            ("variant", &["log-delta", "log-log-n"]),
            ("iterations", &["1", "2", "4"]),
        ],
        "matching/luby" => &[("mark-factor", &["0.1", "0.5", "1.0"])],
        "orientation/rand" => &[("contest-iterations", &["1", "4", "16"])],
        "orientation/det" => &[
            ("r", &["2", "3"]),
            ("finish-threshold", &["8", "64"]),
            ("max-depth", &["4", "12"]),
        ],
        "coloring/trial" => &[("extra-colors", &["1", "3"])],
        _ => &[],
    }
}

/// Deterministically corrupts a valid solution into one that violates
/// its problem's constraints (`None` when the graph is edgeless and no
/// single corruption is guaranteed to invalidate).
fn corrupt(g: &Graph, sol: &Solution, seed: u64) -> Option<Solution> {
    if g.m() == 0 {
        return None;
    }
    let mut rng = Rng::seed_from(seed ^ 0xBAD5EED);
    match sol {
        Solution::Mis { in_set } => {
            // Any single flip breaks an MIS: removing a member leaves it
            // undominated, adding a non-member breaks independence.
            let mut bad = in_set.clone();
            let v = rng.index(bad.len());
            bad[v] = !bad[v];
            Some(Solution::Mis { in_set: bad })
        }
        Solution::RulingSet { in_set, beta } => {
            // Adding a neighbor of a member breaks α = 2. A valid ruling
            // set on a graph with edges always has a member with a
            // neighbor (the set dominates both endpoints of some edge).
            let member = g.nodes().find(|&v| in_set[v] && g.degree(v) >= 1)?;
            let nbr = g.neighbor_ids(member).next()?;
            let mut bad = in_set.clone();
            bad[nbr] = true;
            Some(Solution::RulingSet {
                in_set: bad,
                beta: *beta,
            })
        }
        Solution::Matching { in_matching } => {
            // Any single flip breaks a maximal matching: adding an edge
            // conflicts with the matched endpoint maximality guarantees,
            // removing one leaves its endpoints jointly uncovered.
            let mut bad = in_matching.clone();
            let e = rng.index(bad.len());
            bad[e] = !bad[e];
            Some(Solution::Matching { in_matching: bad })
        }
        Solution::Orientation { orientation } => {
            // Point every edge of one node inward: a guaranteed sink.
            let v = g.nodes().max_by_key(|&v| g.degree(v))?;
            let mut bad = orientation.clone();
            for &(_, e) in g.neighbors(v) {
                let (u, w) = g.endpoints(e);
                bad[e] = if v == w {
                    Orientation::Forward // u -> v
                } else {
                    debug_assert_eq!(v, u);
                    Orientation::Backward // w -> v
                };
            }
            Some(Solution::Orientation { orientation: bad })
        }
        Solution::Coloring { colors } => {
            // Copy a neighbor's color across an edge.
            let (_, u, v) = g.edges().next()?;
            let mut bad = colors.clone();
            bad[u] = bad[v];
            Some(Solution::Coloring { colors: bad })
        }
    }
}

/// Leg 8 of [`Session::check_cell`]: the `localavg-csr/v1` differential.
///
/// Serializes `g` to an in-memory buffer, requires the read-back graph
/// to be bit-identical with a footer equal to [`io::content_hash`], and
/// then byte-swaps each header count (`n` at bytes 16..24, `m` at
/// 24..32) to big-endian: any nonzero count stored big-endian decodes as
/// an astronomically large little-endian value, so the reader must
/// reject it as [`io::ReadError::HeaderOutOfRange`] for *that field* —
/// before the checksum, before any allocation sized by the lie.
fn check_csr_round_trip(g: &Graph) -> Result<(), String> {
    let mut bytes = Vec::new();
    io::write_graph(&mut bytes, g).map_err(|e| format!("csr write failed: {e}"))?;
    let (twin, footer) = io::read_graph_with_hash(&bytes[..])
        .map_err(|e| format!("csr round trip rejected a freshly written graph: {e}"))?;
    if &twin != g {
        return Err("csr round trip changed the graph".to_string());
    }
    if footer != io::content_hash(g) {
        return Err(format!(
            "csr footer {footer:#018x} disagrees with content_hash {:#018x}",
            io::content_hash(g)
        ));
    }
    for (field, at) in [("n", 16usize), ("m", 24usize)] {
        let word: [u8; 8] = bytes[at..at + 8].try_into().expect("8-byte header field");
        let swapped = u64::from_le_bytes(word).swap_bytes();
        if swapped == u64::from_le_bytes(word) {
            continue; // an all-zero count (edgeless graph) swaps to itself
        }
        let mut bad = bytes.clone();
        bad[at..at + 8].copy_from_slice(&swapped.to_le_bytes());
        match io::read_graph(&bad[..]) {
            Err(io::ReadError::HeaderOutOfRange { field: f, value }) if f == field => {
                if value != swapped {
                    return Err(format!(
                        "big-endian `{field}` rejected with the wrong value {value}"
                    ));
                }
            }
            Ok(_) => {
                return Err(format!(
                    "big-endian `{field}` header was accepted as a valid graph"
                ));
            }
            Err(e) => {
                return Err(format!(
                    "big-endian `{field}` header rejected for the wrong reason: {e}"
                ));
            }
        }
    }
    Ok(())
}

struct Session {
    /// One fixed instance per (generator, n), exactly like the sweep.
    graphs: BTreeMap<(&'static str, usize), Graph>,
    master_seed: u64,
    workspace: Workspace,
}

impl Session {
    fn ensure_graph(&mut self, generator: &'static str, n: usize) -> Result<(), SweepError> {
        if !self.graphs.contains_key(&(generator, n)) {
            let g = generators::registry()
                .get(generator)
                .expect("validated key")
                .build(n, sweep::graph_seed(self.master_seed, generator, n))
                .map_err(|e| SweepError::GraphBuild {
                    generator: generator.to_string(),
                    n,
                    message: format!("{e:?}"),
                })?;
            self.graphs.insert((generator, n), g);
        }
        Ok(())
    }

    /// Runs every differential check for one cell. `Ok(stats)` reports
    /// which optional layers fired; `Err` carries the failure message.
    fn check_cell(&mut self, cell: &FuzzCell) -> Result<(bool, bool), String> {
        let kvs: Vec<(&str, &str)> = cell
            .params
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let algo = registry()
            .get(cell.algorithm)
            .ok_or_else(|| format!("unknown algorithm `{}`", cell.algorithm))?
            .with_params(&kvs)
            .map_err(|e| format!("param rejection: {e}"))?;
        let (generator, n) = (cell.generator, cell.n);
        self.ensure_graph(generator, n)
            .map_err(|e| format!("graph build failed: {e}"))?;
        // Split borrows: the cached instance is read-only while the
        // workspace arenas mutate.
        let Session {
            graphs, workspace, ..
        } = self;
        let g = &graphs[&(generator, n)];
        if algo.problem().min_degree() > g.min_degree() {
            return Err(format!(
                "domain filter breach: {} on {} (min degree {} < {})",
                cell.algorithm,
                cell.generator,
                g.min_degree(),
                algo.problem().min_degree()
            ));
        }
        if algo.requires_tree() && !localavg_graph::analysis::is_forest(g) {
            return Err(format!(
                "domain filter breach: {} only runs on forests but {} built a cyclic graph",
                cell.algorithm, cell.generator
            ));
        }
        let fast_spec = RunSpec::new(cell.seed)
            .with_exec(cell.exec())
            .with_transcript(cell.policy);
        let run = algo.execute_in(g, &fast_spec, workspace);

        // 1. Both validators accept.
        run.verify(g)
            .map_err(|e| format!("fast validator rejected the run: {e}"))?;
        check::verify_solution(g, &run.solution)
            .map_err(|e| format!("oracle validator rejected the run: {e}"))?;

        // 2. Independent metrics recomputation + per-run Appendix A chain.
        check::check_metrics(g, &run).map_err(|e| format!("metrics oracle: {e}"))?;

        // 9. Distributional summaries: the same shapes the sweep pools
        //    per group, checked on the single-run sample. The node-mean
        //    ≤ node-p99 claim is the one the emitted tail statistics
        //    stand on (a nearest-rank p99 covers ≥ 99% of the mass, and
        //    completion times are never concentrated in the top 1% on
        //    instances the samplers build).
        let times = run.completion_times(g);
        let d_node = Distribution::from_rounds(&times.node);
        let d_edge = Distribution::from_rounds(&times.edge);
        for (label, d) in [("node", &d_node), ("edge", &d_edge)] {
            if !d.is_well_ordered() {
                return Err(format!(
                    "{label} time distribution is not well ordered: {d:?}"
                ));
            }
        }
        if d_node.mean > d_node.p99 as f64 {
            return Err(format!(
                "node mean {} exceeds node p99 {}",
                d_node.mean, d_node.p99
            ));
        }
        if run.transcript.audited() {
            let d_bits = Distribution::from_values(&run.transcript.node_bits_sent);
            if !d_bits.is_well_ordered() {
                return Err(format!(
                    "sent-volume distribution is not well ordered: {d_bits:?}"
                ));
            }
        }

        // 3. Canonical re-run: sequential, full transcript, fresh arenas.
        let canon = algo.execute(g, &RunSpec::new(cell.seed));
        if canon.solution != run.solution {
            return Err(format!(
                "solution differs from the canonical run under policy={} threads={}",
                cell.policy.label(),
                cell.threads
            ));
        }
        if canon.completion_times(g) != times {
            return Err(format!(
                "completion times differ from the canonical run under policy={} threads={}",
                cell.policy.label(),
                cell.threads
            ));
        }

        // 6. Frontier decay: the canonical run records the engine's O(1)
        //    live counter after every round; it must replay exactly from
        //    the per-node termination ledger.
        let ledger = &canon.transcript.live_after_round;
        if ledger.len() != canon.transcript.rounds as usize + 1 {
            return Err(format!(
                "live ledger has {} entries for {} rounds",
                ledger.len(),
                canon.transcript.rounds
            ));
        }
        for (r, &live) in ledger.iter().enumerate() {
            let recount = canon
                .transcript
                .node_halt_round
                .iter()
                .filter(|&&h| h > r)
                .count();
            if live != recount {
                return Err(format!(
                    "live counter diverges from the termination ledger at round {r}: \
                     engine says {live}, recount says {recount}"
                ));
            }
            if r + 1 == ledger.len() && live != 0 {
                return Err(format!("final live count is {live}, not zero"));
            }
        }
        if ledger.windows(2).any(|w| w[0] < w[1]) {
            return Err("live frontier grew between rounds".to_string());
        }

        // 7. Chunk-geometry leg: one node per chunk, same cell, same
        //    arenas — the schedule must be invisible in the bytes.
        let shredded = algo.execute_in(g, &fast_spec.clone().with_chunk_nodes(Some(1)), workspace);
        if shredded.solution != run.solution || shredded.transcript != run.transcript {
            return Err(format!(
                "chunk-size 1 diverges from the default geometry under policy={} threads={}",
                cell.policy.label(),
                cell.threads
            ));
        }

        // 8. Serialization leg: the fuzz sizes are small enough to
        //    round-trip the instance through localavg-csr/v1 on every
        //    case. The read-back graph must be bit-identical, the footer
        //    must equal the content hash, and big-endian header counts
        //    must be rejected as out-of-range, never misread.
        check_csr_round_trip(g)?;

        // 4. Brute-force optimality bounds on tiny instances.
        let brute = g.n() <= check::BRUTE_MAX_NODES;
        if brute {
            check::check_brute_bounds(g, &run.solution)
                .map_err(|e| format!("brute-force bound: {e}"))?;
        }

        // 5. Mutation leg: a corrupted solution must fail on both sides.
        let mutated = corrupt(g, &run.solution, cell.seed);
        if let Some(bad) = &mutated {
            if check::verify_solution(g, bad).is_ok() {
                return Err("oracle validator accepted a corrupted solution".to_string());
            }
            let mut twin = run.clone();
            twin.solution = bad.clone();
            if twin.verify(g).is_ok() {
                return Err("fast validator accepted a corrupted solution".to_string());
            }
        }
        Ok((brute, mutated.is_some()))
    }
}

/// The compatible sampling domain: one entry per (family, size) pair
/// with the algorithms whose domain requirement the family guarantees.
/// Pairs with no eligible algorithm are dropped here, so sampling can
/// never land on an empty choice.
type Domain = Vec<(&'static str, usize, Vec<&'static dyn DynAlgorithm>)>;

fn sample_domain(
    spec: &FuzzSpec,
    gens: &[&'static str],
    algos: &[&'static dyn DynAlgorithm],
) -> Domain {
    let mut domain = Vec::new();
    for &generator in gens {
        let fam = generators::registry().get(generator).expect("validated");
        for &n in &spec.sizes {
            let eligible: Vec<&'static dyn DynAlgorithm> = algos
                .iter()
                .copied()
                .filter(|a| {
                    a.problem().min_degree() <= fam.min_degree(n)
                        && (!a.requires_tree() || fam.is_tree())
                })
                .collect();
            if !eligible.is_empty() {
                domain.push((generator, n, eligible));
            }
        }
    }
    domain
}

/// Samples one cell from the case substream.
fn sample_cell(spec: &FuzzSpec, domain: &Domain, case: u64) -> FuzzCell {
    let mut rng = Rng::seed_from(spec.master_seed).fork(0xF0CC_u64 ^ case);
    let (generator, n, eligible) = &domain[rng.index(domain.len())];
    let algo = eligible[rng.index(eligible.len())];
    let pool = param_pool(algo.name());
    let params = if !pool.is_empty() && rng.chance(0.5) {
        let (key, values) = pool[rng.index(pool.len())];
        vec![(key.to_string(), values[rng.index(values.len())].to_string())]
    } else {
        Vec::new()
    };
    let policy = [
        TranscriptPolicy::Full,
        TranscriptPolicy::CompletionsOnly,
        TranscriptPolicy::None,
    ][rng.index(3)];
    let threads = [0usize, 2, 4][rng.index(3)];
    FuzzCell {
        generator,
        n: *n,
        algorithm: algo.name(),
        params,
        policy,
        threads,
        seed: rng.next_u64() % 1_000,
    }
}

/// Shrinks a failing cell to a minimal failing tuple: smaller sizes
/// first (the biggest win for a human), then default params, full
/// transcript, sequential executor, smaller seeds. Each accepted step
/// must still fail; the loop runs to fixpoint.
fn shrink(session: &mut Session, spec: &FuzzSpec, cell: &FuzzCell, message: String) -> FuzzFailure {
    let mut sizes = spec.sizes.clone();
    sizes.sort_unstable();
    let mut cur = cell.clone();
    let mut msg = message;
    loop {
        let mut improved = false;
        for &n in sizes.iter().filter(|&&n| n < cur.n) {
            let cand = FuzzCell { n, ..cur.clone() };
            if let Err(m) = session.check_cell(&cand) {
                (cur, msg) = (cand, m);
                improved = true;
                break;
            }
        }
        if !cur.params.is_empty() {
            let cand = FuzzCell {
                params: Vec::new(),
                ..cur.clone()
            };
            if let Err(m) = session.check_cell(&cand) {
                (cur, msg) = (cand, m);
                improved = true;
            }
        }
        if cur.policy != TranscriptPolicy::Full {
            let cand = FuzzCell {
                policy: TranscriptPolicy::Full,
                ..cur.clone()
            };
            if let Err(m) = session.check_cell(&cand) {
                (cur, msg) = (cand, m);
                improved = true;
            }
        }
        if cur.threads != 0 {
            let cand = FuzzCell {
                threads: 0,
                ..cur.clone()
            };
            if let Err(m) = session.check_cell(&cand) {
                (cur, msg) = (cand, m);
                improved = true;
            }
        }
        for seed in 0..cur.seed.min(8) {
            let cand = FuzzCell {
                seed,
                ..cur.clone()
            };
            if let Err(m) = session.check_cell(&cand) {
                (cur, msg) = (cand, m);
                improved = true;
                break;
            }
        }
        if !improved {
            return FuzzFailure {
                original: cell.clone(),
                shrunk: cur,
                message: msg,
            };
        }
    }
}

/// Runs the differential harness.
///
/// # Errors
///
/// Returns [`SweepError`] for unknown registry keys or empty axes (a
/// *failing check* is not an error — it is reported in
/// [`FuzzReport::failure`], shrunk).
pub fn run(spec: &FuzzSpec) -> Result<FuzzReport, SweepError> {
    if spec.cases == 0
        || spec.algorithms.is_empty()
        || spec.generators.is_empty()
        || spec.sizes.is_empty()
    {
        return Err(SweepError::EmptyAxis);
    }
    let mut algos: Vec<&'static dyn DynAlgorithm> = Vec::new();
    for name in &spec.algorithms {
        match registry().get(name) {
            Some(a) => algos.push(a),
            None => {
                return Err(SweepError::UnknownAlgorithm {
                    name: name.clone(),
                    suggestion: registry().suggest(name).map(str::to_string),
                })
            }
        }
    }
    let mut gens: Vec<&'static str> = Vec::new();
    for name in &spec.generators {
        match generators::registry().get(name) {
            Some(g) => gens.push(g.name()),
            None => {
                return Err(SweepError::UnknownGenerator {
                    name: name.clone(),
                    suggestion: generators::registry().suggest(name).map(str::to_string),
                })
            }
        }
    }

    let mut session = Session {
        graphs: BTreeMap::new(),
        master_seed: spec.master_seed,
        workspace: Workspace::new(),
    };
    let mut report = FuzzReport {
        cases: 0,
        per_algorithm: BTreeMap::new(),
        per_generator: BTreeMap::new(),
        brute_checked: 0,
        mutations_checked: 0,
        failure: None,
    };

    // `--exact` replay: one fully pinned cell, no sampling, no shrinking
    // (the tuple is already minimal — shrinking would move the pins).
    if let Some(exact) = &spec.exact {
        if gens.len() != 1 || algos.len() != 1 || spec.sizes.len() != 1 {
            return Err(SweepError::Param {
                message: "--exact requires exactly one generator, one algorithm, and one size"
                    .to_string(),
            });
        }
        let cell = FuzzCell {
            generator: gens[0],
            n: spec.sizes[0],
            algorithm: algos[0].name(),
            params: exact.params.clone(),
            policy: exact.policy,
            threads: exact.threads,
            seed: exact.seed,
        };
        report.cases = 1;
        *report.per_algorithm.entry(cell.algorithm).or_insert(0) += 1;
        *report.per_generator.entry(cell.generator).or_insert(0) += 1;
        match session.check_cell(&cell) {
            Ok((brute, mutated)) => {
                report.brute_checked += usize::from(brute);
                report.mutations_checked += usize::from(mutated);
            }
            Err(message) => {
                report.failure = Some(FuzzFailure {
                    original: cell.clone(),
                    shrunk: cell,
                    message,
                });
            }
        }
        return Ok(report);
    }

    let domain = sample_domain(spec, &gens, &algos);
    if domain.is_empty() {
        return Err(SweepError::NoCompatibleCells);
    }
    for case in 0..spec.cases as u64 {
        let cell = sample_cell(spec, &domain, case);
        report.cases += 1;
        *report.per_algorithm.entry(cell.algorithm).or_insert(0) += 1;
        *report.per_generator.entry(cell.generator).or_insert(0) += 1;
        match session.check_cell(&cell) {
            Ok((brute, mutated)) => {
                report.brute_checked += usize::from(brute);
                report.mutations_checked += usize::from(mutated);
            }
            Err(message) => {
                report.failure = Some(shrink(&mut session, spec, &cell, message));
                return Ok(report);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> FuzzSpec {
        FuzzSpec {
            cases: 24,
            master_seed: 5,
            sizes: vec![8, 12, 16, 32],
            ..FuzzSpec::default()
        }
    }

    #[test]
    fn quick_fuzz_session_is_clean() {
        let report = run(&quick_spec()).expect("valid spec");
        assert_eq!(report.cases, 24);
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.brute_checked > 0, "tiny sizes must hit brute force");
        assert!(report.mutations_checked > 0);
        assert!(!report.per_algorithm.is_empty());
    }

    fn resolve(spec: &FuzzSpec) -> (Vec<&'static str>, Vec<&'static dyn DynAlgorithm>) {
        let gens = spec
            .generators
            .iter()
            .map(|g| generators::registry().get(g).unwrap().name())
            .collect();
        let algos = spec
            .algorithms
            .iter()
            .map(|a| registry().get(a).unwrap())
            .collect();
        (gens, algos)
    }

    #[test]
    fn sampling_is_deterministic() {
        let spec = quick_spec();
        let (gens, algos) = resolve(&spec);
        let domain = sample_domain(&spec, &gens, &algos);
        for case in 0..10 {
            let a = sample_cell(&spec, &domain, case);
            let b = sample_cell(&spec, &domain, case);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sampling_respects_domain_filters() {
        let spec = FuzzSpec {
            cases: 64,
            generators: vec!["tree/random".into(), "path".into()],
            ..quick_spec()
        };
        let (gens, algos) = resolve(&spec);
        let domain = sample_domain(&spec, &gens, &algos);
        assert!(!domain.is_empty());
        for case in 0..64 {
            let cell = sample_cell(&spec, &domain, case);
            assert!(
                !cell.algorithm.starts_with("orientation/"),
                "sinkless orientation sampled on a tree family"
            );
        }
    }

    #[test]
    fn tree_rc_samples_only_on_tree_families() {
        // Mixed axes: `*/tree-rc` must never land on the cyclic families,
        // and must still be reachable on the tree families.
        let spec = FuzzSpec {
            cases: 96,
            generators: vec!["gnp/deg8".into(), "tree/random".into(), "cycle".into()],
            ..quick_spec()
        };
        let (gens, algos) = resolve(&spec);
        let domain = sample_domain(&spec, &gens, &algos);
        let mut seen_on_tree = false;
        for case in 0..512 {
            let cell = sample_cell(&spec, &domain, case);
            if cell.algorithm.ends_with("/tree-rc") {
                let fam = generators::registry().get(cell.generator).unwrap();
                assert!(
                    fam.is_tree(),
                    "{} sampled on {}",
                    cell.algorithm,
                    cell.generator
                );
                seen_on_tree = true;
            }
        }
        assert!(seen_on_tree, "tree-rc never sampled on the tree family");
    }

    #[test]
    fn forcing_tree_rc_onto_a_cyclic_family_is_a_clean_check_error() {
        let mut session = Session {
            graphs: BTreeMap::new(),
            master_seed: 1,
            workspace: Workspace::new(),
        };
        let cell = FuzzCell {
            generator: "cycle",
            n: 16,
            algorithm: "mis/tree-rc",
            params: Vec::new(),
            policy: TranscriptPolicy::Full,
            threads: 0,
            seed: 0,
        };
        let err = session.check_cell(&cell).unwrap_err();
        assert!(
            err.contains("only runs on forests"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn incompatible_axes_error_instead_of_panicking() {
        // Every selected algorithm's domain exceeds every selected
        // family's guarantee: a clean error, not an index-out-of-bounds
        // in the sampler.
        let spec = FuzzSpec {
            algorithms: vec!["orientation/rand".into(), "orientation/det".into()],
            generators: vec!["tree/spider".into(), "path".into()],
            ..quick_spec()
        };
        assert!(matches!(run(&spec), Err(SweepError::NoCompatibleCells)));
    }

    fn bad_run_err(spec: &FuzzSpec) -> SweepError {
        match run(spec) {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn exact_mode_replays_a_pinned_cell_verbatim() {
        // A pinned invalid-param cell must fail identically through the
        // --exact path, with the reported tuple equal to the pins.
        let spec = FuzzSpec {
            cases: 1,
            master_seed: 5,
            algorithms: vec!["mis/luby".into()],
            generators: vec!["path".into()],
            sizes: vec![8],
            exact: Some(ExactCell {
                seed: 3,
                policy: TranscriptPolicy::None,
                threads: 2,
                params: vec![("mark-factor".into(), "2.5".into())],
            }),
        };
        let report = run(&spec).expect("valid spec");
        let failure = report.failure.expect("invalid param must fail");
        assert_eq!(failure.shrunk.seed, 3);
        assert_eq!(failure.shrunk.policy, TranscriptPolicy::None);
        assert_eq!(failure.shrunk.threads, 2);
        assert!(failure.message.contains("param rejection"));
        // The same pins with a valid value pass.
        let mut ok = spec.clone();
        ok.exact = Some(ExactCell {
            seed: 3,
            policy: TranscriptPolicy::None,
            threads: 2,
            params: vec![("mark-factor".into(), "0.5".into())],
        });
        assert!(run(&ok).expect("valid spec").failure.is_none());
        // Multiple generators are rejected up front in exact mode.
        let mut bad = spec.clone();
        bad.generators.push("cycle".into());
        assert!(matches!(bad_run_err(&bad), SweepError::Param { .. }));
    }

    #[test]
    fn corrupted_solutions_are_rejected_by_both_validators() {
        // The mutation leg's own guarantee, checked directly on one run
        // per problem family.
        let spec = RunSpec::new(3);
        let mut rng = Rng::seed_from(9);
        let g = localavg_graph::gen::random_regular(24, 4, &mut rng).unwrap();
        let tree = localavg_graph::gen::random_tree(24, &mut rng);
        for algo in registry().iter() {
            let g = if algo.requires_tree() { &tree } else { &g };
            let run = algo.execute(g, &spec);
            let bad = corrupt(g, &run.solution, 3).expect("graph has edges");
            assert!(
                check::verify_solution(g, &bad).is_err(),
                "{}: oracle accepted a corrupted solution",
                algo.name()
            );
            let mut twin = run.clone();
            twin.solution = bad;
            assert!(
                twin.verify(g).is_err(),
                "{}: fast validator accepted a corrupted solution",
                algo.name()
            );
        }
    }

    #[test]
    fn a_broken_run_shrinks_to_a_minimal_tuple() {
        // Feed the harness a cell that *will* fail (a param rejection
        // masquerades as a check failure) and watch shrinking reduce the
        // incidental axes.
        let spec = quick_spec();
        let mut session = Session {
            graphs: BTreeMap::new(),
            master_seed: spec.master_seed,
            workspace: Workspace::new(),
        };
        let cell = FuzzCell {
            generator: "path",
            n: 32,
            algorithm: "mis/luby",
            params: vec![("mark-factor".into(), "2.5".into())], // invalid: > 1
            policy: TranscriptPolicy::None,
            threads: 4,
            seed: 700,
        };
        let failure = shrink(&mut session, &spec, &cell, "seed message".into());
        // Params are the actual culprit, so they survive; everything
        // incidental shrinks away.
        assert_eq!(
            failure.shrunk.params,
            vec![("mark-factor".to_string(), "2.5".to_string())]
        );
        assert_eq!(failure.shrunk.n, 8);
        assert_eq!(failure.shrunk.policy, TranscriptPolicy::Full);
        assert_eq!(failure.shrunk.threads, 0);
        assert_eq!(failure.shrunk.seed, 0);
        assert!(failure.message.contains("param rejection"));
    }

    #[test]
    fn csr_leg_accepts_valid_instances_including_edgeless() {
        // The serialization leg must pass on any graph the sampler can
        // build — including the m = 0 corner where the big-endian swap
        // of the edge count is a no-op and the sub-check is skipped.
        let mut rng = Rng::seed_from(4);
        let g = localavg_graph::gen::gnp(32, 0.2, &mut rng);
        check_csr_round_trip(&g).expect("valid instance");
        check_csr_round_trip(&Graph::empty(5)).expect("edgeless instance");
    }

    #[test]
    fn unknown_keys_error_with_suggestions() {
        let mut spec = quick_spec();
        spec.generators.push("lb/clustertree/1".into());
        match run(&spec) {
            Err(SweepError::UnknownGenerator { suggestion, .. }) => {
                assert_eq!(suggestion.as_deref(), Some("lb/cluster-tree/1"));
            }
            other => panic!("expected UnknownGenerator, got {other:?}"),
        }
        let mut spec = quick_spec();
        spec.algorithms = vec!["mis/lubby".into()];
        assert!(matches!(
            run(&spec),
            Err(SweepError::UnknownAlgorithm { .. })
        ));
    }
}
