//! Bounded blocking FIFO job queue for the serve worker pool.
//!
//! `std::sync::mpsc` channels are either unbounded (`channel`) or
//! rendezvous-bounded but single-consumer; the pool needs a bounded
//! multi-consumer queue so that a flood of submitted cells exerts
//! backpressure on connection threads instead of growing without limit.
//! This is the classic Mutex + two-condvar design: producers block in
//! [`JobQueue::push`] while the queue is full, consumers block in
//! [`JobQueue::pop`] while it is empty.
//!
//! Shutdown semantics: after [`JobQueue::close`], `push` fails
//! immediately (`Err` returns the rejected item) and `pop` keeps
//! draining whatever was already enqueued, returning `None` only once
//! the queue is empty — so closing never drops accepted work, it only
//! stops new work from entering.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO (see the module docs).
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item arrives or the queue closes (wakes `pop`).
    filled: Condvar,
    /// Signalled when an item leaves or the queue closes (wakes `push`).
    drained: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue bounded to `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            filled: Condvar::new(),
            drained: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the queue is (or becomes, while waiting)
    /// closed; the item is handed back untouched.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        while !inner.closed && inner.items.len() >= self.capacity {
            inner = self.drained.wait(inner).expect("queue poisoned");
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.filled.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.drained.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.filled.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending `push`es fail, `pop` drains then ends.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.filled.notify_all();
        self.drained.notify_all();
    }

    /// Items currently enqueued (snapshot; racy by nature).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (snapshot; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_len() {
        let q = JobQueue::new(4);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!((q.pop(), q.pop(), q.pop()), (Some(0), Some(1), Some(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends_and_rejects_pushes() {
        let q = JobQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let q: JobQueue<u8> = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn full_queue_blocks_producer_until_consumed() {
        let q = Arc::new(JobQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is (or will shortly be) blocked on the full
        // queue; popping must unblock it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(JobQueue::new(2));
        let total = 4 * 50;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(x) = q.pop() {
                        got.push(x);
                    }
                    got
                })
            })
            .collect();
        std::thread::scope(|scope| {
            for p in 0..4u32 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..50u32 {
                        q.push(p * 50 + i).unwrap();
                    }
                });
            }
        });
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}
