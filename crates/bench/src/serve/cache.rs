//! Content-addressed result cache with single-flight coalescing.
//!
//! The cache maps a canonical [`CellKey`] to the finished result line
//! (the exact bytes [`crate::emit::cell_json`] produced for that cell).
//! Because a cell tuple plus the daemon's master seed fully determines
//! the output, a cached line can be replayed forever — there is no
//! invalidation, only a bounded LRU eviction policy.
//!
//! Concurrent duplicates are **coalesced**: the first thread to ask for
//! a missing key becomes the *leader* ([`Acquire::Lead`]) and must later
//! call [`CellCache::complete`] (or [`CellCache::abandon`] on failure);
//! every other thread asking for the same key while the leader is in
//! flight blocks on a condvar and receives the finished value as a
//! **hit** — the algorithm executes exactly once no matter how many
//! clients submit the cell simultaneously. This is what lets the serve
//! goldens assert that resubmitting a batch performs zero executions.
//!
//! Eviction is strict LRU over *completed* entries, tracked by a
//! monotonic use-stamp in a `BTreeMap<u64, CellKey>` side index (stamp
//! space is `u64`, so wraparound is out of reach). In-flight leaders
//! hold a reservation that does not count against the capacity bound
//! and cannot be evicted; capacity is clamped to at least 1.

use crate::cell::CellKey;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Condvar, Mutex};

/// Outcome of [`CellCache::acquire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// The finished result line (a cache hit, possibly after waiting on
    /// an in-flight leader).
    Hit(String),
    /// The caller is now the leader for this key: execute the cell and
    /// report back via `complete` or `abandon`.
    Lead,
}

#[derive(Debug)]
enum Slot {
    /// A leader is computing this key; waiters sleep on the condvar.
    InFlight,
    /// Finished value plus its current LRU stamp.
    Done { line: String, stamp: u64 },
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<CellKey, Slot>,
    /// stamp → key, oldest first; only `Done` slots appear here.
    order: BTreeMap<u64, CellKey>,
    next_stamp: u64,
    done_count: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Cache counter snapshot (see [`CellCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from a completed entry (including coalesced
    /// waiters on an in-flight leader).
    pub hits: u64,
    /// Requests that became leaders and had to execute.
    pub misses: u64,
    /// Completed entries evicted by the LRU bound.
    pub evictions: u64,
    /// Completed entries currently resident.
    pub entries: usize,
    /// Configured capacity bound.
    pub capacity: usize,
}

/// Bounded LRU cache over canonical cell keys (see the module docs).
#[derive(Debug)]
pub struct CellCache {
    inner: Mutex<Inner>,
    settled: Condvar,
    capacity: usize,
}

impl CellCache {
    /// Creates a cache bounded to `capacity` completed entries
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        CellCache {
            inner: Mutex::new(Inner::default()),
            settled: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, blocking while another thread is computing it.
    ///
    /// Returns [`Acquire::Hit`] with the finished line, or
    /// [`Acquire::Lead`] if the caller must compute the value itself
    /// and then call [`Self::complete`] / [`Self::abandon`].
    pub fn acquire(&self, key: &CellKey) -> Acquire {
        let mut inner = self.inner.lock().expect("cache poisoned");
        loop {
            match inner.slots.get(key) {
                Some(Slot::Done { .. }) => {
                    inner.hits += 1;
                    let line = touch(&mut inner, key);
                    return Acquire::Hit(line);
                }
                Some(Slot::InFlight) => {
                    // Coalesce: sleep until the leader settles the slot
                    // (complete or abandon), then re-inspect. If the
                    // entry was completed and already evicted before we
                    // woke, the loop turns us into the next leader.
                    inner = self.settled.wait(inner).expect("cache poisoned");
                }
                None => {
                    inner.misses += 1;
                    inner.slots.insert(key.clone(), Slot::InFlight);
                    return Acquire::Lead;
                }
            }
        }
    }

    /// Peeks without blocking or leadership: `Some(line)` on a
    /// completed entry (counts as a hit), `None` otherwise.
    pub fn get(&self, key: &CellKey) -> Option<String> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if matches!(inner.slots.get(key), Some(Slot::Done { .. })) {
            inner.hits += 1;
            Some(touch(&mut inner, key))
        } else {
            None
        }
    }

    /// Publishes the leader's finished `line` for `key`, waking every
    /// coalesced waiter, and evicts the least-recently-used completed
    /// entry if the capacity bound is now exceeded.
    pub fn complete(&self, key: &CellKey, line: String) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let prev = inner.slots.insert(key.clone(), Slot::Done { line, stamp });
        inner.order.insert(stamp, key.clone());
        // `prev` is the leader's InFlight reservation; a `Done` here
        // would mean two leaders for one key, which acquire() excludes.
        debug_assert!(!matches!(prev, Some(Slot::Done { .. })));
        inner.done_count += 1;
        while inner.done_count > self.capacity {
            let (&oldest, _) = inner
                .order
                .iter()
                .next()
                .expect("count>0 implies non-empty");
            let victim = inner.order.remove(&oldest).expect("stamp present");
            inner.slots.remove(&victim);
            inner.done_count -= 1;
            inner.evictions += 1;
        }
        drop(inner);
        self.settled.notify_all();
    }

    /// Drops the leader's reservation after a failed execution, waking
    /// waiters so one of them can lead a retry (or fail the same way).
    pub fn abandon(&self, key: &CellKey) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if matches!(inner.slots.get(key), Some(Slot::InFlight)) {
            inner.slots.remove(key);
        }
        drop(inner);
        self.settled.notify_all();
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.done_count,
            capacity: self.capacity,
        }
    }
}

/// Re-stamps `key` as most recently used and returns its line. Caller
/// must have verified the slot is `Done`.
fn touch(inner: &mut Inner, key: &CellKey) -> String {
    let fresh = inner.next_stamp;
    inner.next_stamp += 1;
    let Some(Slot::Done { line, stamp }) = inner.slots.get_mut(key) else {
        unreachable!("touch() requires a Done slot");
    };
    let old = *stamp;
    *stamp = fresh;
    let out = line.clone();
    inner.order.remove(&old);
    inner.order.insert(fresh, key.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn key(n: usize) -> CellKey {
        CellKey::new("path", n, 0, "mis/luby")
    }

    #[test]
    fn miss_lead_complete_hit() {
        let cache = CellCache::new(4);
        assert_eq!(cache.acquire(&key(8)), Acquire::Lead);
        cache.complete(&key(8), "line-8".to_string());
        assert_eq!(cache.acquire(&key(8)), Acquire::Hit("line-8".to_string()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest_and_touch_refreshes() {
        let cache = CellCache::new(2);
        for n in [1, 2] {
            assert_eq!(cache.acquire(&key(n)), Acquire::Lead);
            cache.complete(&key(n), format!("line-{n}"));
        }
        // Touch 1 so 2 becomes the LRU victim.
        assert!(matches!(cache.acquire(&key(1)), Acquire::Hit(_)));
        assert_eq!(cache.acquire(&key(3)), Acquire::Lead);
        cache.complete(&key(3), "line-3".to_string());
        assert_eq!(cache.stats().evictions, 1);
        assert!(matches!(cache.acquire(&key(1)), Acquire::Hit(_)));
        assert_eq!(cache.acquire(&key(2)), Acquire::Lead); // evicted
        cache.abandon(&key(2));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = CellCache::new(0);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.acquire(&key(1)), Acquire::Lead);
        cache.complete(&key(1), "a".to_string());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn abandon_releases_leadership() {
        let cache = CellCache::new(4);
        assert_eq!(cache.acquire(&key(1)), Acquire::Lead);
        cache.abandon(&key(1));
        assert_eq!(cache.acquire(&key(1)), Acquire::Lead);
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (2, 0));
    }

    #[test]
    fn concurrent_duplicates_coalesce_to_one_leader() {
        let cache = Arc::new(CellCache::new(8));
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let leaders = Arc::clone(&leaders);
                scope.spawn(move || match cache.acquire(&key(7)) {
                    Acquire::Lead => {
                        leaders.fetch_add(1, Ordering::SeqCst);
                        // Give waiters time to pile onto the condvar.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        cache.complete(&key(7), "value".to_string());
                    }
                    Acquire::Hit(line) => assert_eq!(line, "value"),
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }
}
