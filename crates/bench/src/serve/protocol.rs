//! The `exp serve` JSON-lines wire protocol (DESIGN.md §9).
//!
//! Every request is one JSON object per line; every response is one or
//! more JSON lines. The four operations:
//!
//! * `{"op": "submit", "cells": [CELL, ...]}` — the server streams back,
//!   **in submission order**, one line per cell: either a raw
//!   `localavg-sweep/v1` cell object (exactly the bytes
//!   [`crate::emit::cell_json`] produces — byte-identical to a sweep of
//!   the same tuple) or `{"error": "...", "index": I}`; the batch is
//!   terminated by `{"done": true, "cells": N, "errors": K}`.
//! * `{"op": "stats"}` — one `{"stats": {...}}` line with the cache,
//!   execution, and workspace-reuse counters.
//! * `{"op": "ping"}` — one `{"pong": true}` line (readiness probe).
//! * `{"op": "shutdown"}` — one `{"ok": true}` line, then the daemon
//!   stops accepting and exits.
//!
//! A `CELL` object carries the canonical tuple of
//! [`CellKey`]: `{"algorithm": "mis/luby", "generator": "regular/4",
//! "n": 64, "seed": 0, "params": {"mark-factor": "0.5"}, "policy":
//! "full"}` — `seed`, `params`, and `policy` are optional (defaults: 0,
//! none, `full`). Params may be JSON strings or numbers; both normalize
//! to the string-keyed form the algorithm registry validates.
//!
//! The parser below is a deliberately small recursive-descent JSON
//! reader (the workspace is std-only); it accepts exactly standard JSON
//! and is shared by the server, the `exp submit` client, and the tests.

use crate::cell::CellKey;
use crate::emit::json_escape;
use localavg_core::algo::TranscriptPolicy;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like every emitted metric).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with the byte offset of the
    /// first violation.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogate pairs are not needed by this
                            // protocol (registry keys are ASCII); map
                            // lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or answer from cache) a batch of cells, streaming results in
    /// submission order.
    Submit(Vec<CellKey>),
    /// Report the service counters.
    Stats,
    /// Liveness/readiness probe.
    Ping,
    /// Stop the daemon.
    Shutdown,
}

/// Renders a JSON number the same way the emitters do (used for param
/// values arriving as numbers).
fn num_string(x: f64) -> String {
    format!("{x}")
}

/// Parses one `CELL` object (see the module docs) into a canonical
/// [`CellKey`].
///
/// # Errors
///
/// Returns a human-readable message on missing/ill-typed fields or an
/// unknown policy label. Registry keys are validated later, at
/// execution, so the error can carry a closest-match suggestion.
pub fn parse_cell(v: &Json) -> Result<CellKey, String> {
    if !matches!(v, Json::Obj(_)) {
        return Err("cell must be a JSON object".to_string());
    }
    let algo = v
        .get("algorithm")
        .and_then(Json::as_str)
        .ok_or("cell is missing a string `algorithm` field")?;
    let family = v
        .get("generator")
        .and_then(Json::as_str)
        .ok_or("cell is missing a string `generator` field")?;
    let n = v
        .get("n")
        .and_then(Json::as_u64)
        .ok_or("cell is missing a non-negative integer `n` field")? as usize;
    let seed = match v.get("seed") {
        None => 0,
        Some(s) => s.as_u64().ok_or("`seed` must be a non-negative integer")?,
    };
    let policy = match v.get("policy") {
        None => TranscriptPolicy::Full,
        Some(p) => {
            let label = p.as_str().ok_or("`policy` must be a string")?;
            TranscriptPolicy::parse(label).ok_or_else(|| {
                format!("unknown policy `{label}` (expected `full`, `completions`, or `none`)")
            })?
        }
    };
    let mut params = Vec::new();
    if let Some(p) = v.get("params") {
        let Json::Obj(fields) = p else {
            return Err("`params` must be an object of key → string/number".to_string());
        };
        for (k, pv) in fields {
            let value = match pv {
                Json::Str(s) => s.clone(),
                Json::Num(x) => num_string(*x),
                _ => return Err(format!("param `{k}` must be a string or number")),
            };
            params.push((k.clone(), value));
        }
    }
    Ok(CellKey::new(family, n, seed, algo)
        .with_params(params)
        .with_policy(policy))
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown ops, or
/// malformed cells (the server answers with an `{"error": ...}` line).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request is missing a string `op` field")?;
    match op {
        "submit" => {
            let cells = v
                .get("cells")
                .and_then(Json::as_array)
                .ok_or("`submit` needs a `cells` array")?;
            let mut keys = Vec::with_capacity(cells.len());
            for (i, c) in cells.iter().enumerate() {
                keys.push(parse_cell(c).map_err(|e| format!("cell {i}: {e}"))?);
            }
            Ok(Request::Submit(keys))
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op `{other}` (expected `submit`, `stats`, `ping`, or `shutdown`)"
        )),
    }
}

/// Renders one `CELL` object for a submit request — the client-side
/// inverse of [`parse_cell`].
pub fn cell_request_json(key: &CellKey) -> String {
    let mut out = format!(
        "{{\"algorithm\": \"{}\", \"generator\": \"{}\", \"n\": {}, \"seed\": {}",
        json_escape(&key.algo),
        json_escape(&key.family),
        key.n,
        key.seed
    );
    if !key.params.is_empty() {
        out.push_str(", \"params\": {");
        for (i, (k, v)) in key.params.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": \"{}\"",
                if i > 0 { ", " } else { "" },
                json_escape(k),
                json_escape(v)
            );
        }
        out.push('}');
    }
    let _ = write!(out, ", \"policy\": \"{}\"}}", key.policy.label());
    out
}

/// Renders a whole submit request line from a batch of cells.
pub fn submit_request_json(cells: &[CellKey]) -> String {
    let body: Vec<String> = cells.iter().map(cell_request_json).collect();
    format!("{{\"op\": \"submit\", \"cells\": [{}]}}", body.join(", "))
}

/// The counters a `stats` response reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Cells answered from the cache (including coalesced waiters).
    pub hits: u64,
    /// Cells that had to execute (cache misses that became leaders).
    pub misses: u64,
    /// Cache entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Configured cache capacity.
    pub capacity: usize,
    /// Algorithm executions actually performed (`== misses` minus
    /// failed runs; resubmitting a served batch must leave this flat).
    pub executed: u64,
    /// Cells answered over all submissions (hits + executions + errors).
    pub served: u64,
    /// Cells that answered with an error line.
    pub errors: u64,
    /// Worker-pool workspace runs (every execution passes through a
    /// per-worker [`localavg_sim::workspace::Workspace`]).
    pub workspace_runs: u64,
    /// Workspace runs that reused an already-allocated arena.
    pub workspace_reuses: u64,
    /// Worker threads in the pool.
    pub threads: usize,
    /// The master seed the daemon derives every cell seed from.
    pub master_seed: u64,
}

/// Renders the `{"stats": {...}}` response line.
pub fn stats_line(s: &ServeStats) -> String {
    format!(
        "{{\"stats\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \
         \"capacity\": {}, \"executed\": {}, \"served\": {}, \"errors\": {}, \
         \"workspace_runs\": {}, \"workspace_reuses\": {}, \"threads\": {}, \
         \"master_seed\": {}}}}}",
        s.hits,
        s.misses,
        s.evictions,
        s.entries,
        s.capacity,
        s.executed,
        s.served,
        s.errors,
        s.workspace_runs,
        s.workspace_reuses,
        s.threads,
        s.master_seed
    )
}

/// Parses a `{"stats": {...}}` line back into [`ServeStats`] — the
/// client-side inverse of [`stats_line`], used by `exp submit --stats`
/// and the tests.
pub fn parse_stats(line: &str) -> Option<ServeStats> {
    let v = Json::parse(line).ok()?;
    let s = v.get("stats")?;
    Some(ServeStats {
        hits: s.get("hits")?.as_u64()?,
        misses: s.get("misses")?.as_u64()?,
        evictions: s.get("evictions")?.as_u64()?,
        entries: s.get("entries")?.as_u64()? as usize,
        capacity: s.get("capacity")?.as_u64()? as usize,
        executed: s.get("executed")?.as_u64()?,
        served: s.get("served")?.as_u64()?,
        errors: s.get("errors")?.as_u64()?,
        workspace_runs: s.get("workspace_runs")?.as_u64()?,
        workspace_reuses: s.get("workspace_reuses")?.as_u64()?,
        threads: s.get("threads")?.as_u64()? as usize,
        master_seed: s.get("master_seed")?.as_u64()?,
    })
}

/// Renders a per-cell or per-request error line.
pub fn error_line(index: Option<usize>, message: &str) -> String {
    match index {
        Some(i) => format!(
            "{{\"error\": \"{}\", \"index\": {i}}}",
            json_escape(message)
        ),
        None => format!("{{\"error\": \"{}\"}}", json_escape(message)),
    }
}

/// Renders the batch-terminating line.
pub fn done_line(cells: usize, errors: usize) -> String {
    format!("{{\"done\": true, \"cells\": {cells}, \"errors\": {errors}}}")
}

/// Renders the ping response.
pub fn pong_line() -> String {
    "{\"pong\": true}".to_string()
}

/// Renders the shutdown acknowledgement.
pub fn ok_line() -> String {
    "{\"ok\": true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_scalars_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            Json::parse("\"a\\\"b\\u0041\"").unwrap(),
            Json::Str("a\"bA".to_string())
        );
        let v = Json::parse(r#"{"a": [1, {"b": "c"}], "d": false}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("c"));
    }

    #[test]
    fn json_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn cell_round_trips_through_request_json() {
        let key = CellKey::new("regular/4", 64, 3, "mis/luby")
            .with_params(vec![("mark-factor".into(), "0.5".into())])
            .with_policy(TranscriptPolicy::CompletionsOnly);
        let json = cell_request_json(&key);
        let parsed = parse_cell(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, key);
        assert_eq!(parsed.canonical(), key.canonical());
    }

    #[test]
    fn cell_defaults_and_numeric_params() {
        let v = Json::parse(
            r#"{"algorithm": "mis/luby", "generator": "path", "n": 16, "params": {"mark-factor": 0.5}}"#,
        )
        .unwrap();
        let key = parse_cell(&v).unwrap();
        assert_eq!(key.seed, 0);
        assert_eq!(key.policy, TranscriptPolicy::Full);
        assert_eq!(
            key.params,
            vec![("mark-factor".to_string(), "0.5".to_string())]
        );
    }

    #[test]
    fn malformed_cells_are_rejected_with_context() {
        let missing = Json::parse(r#"{"generator": "path", "n": 16}"#).unwrap();
        assert!(parse_cell(&missing).unwrap_err().contains("algorithm"));
        let bad_policy =
            Json::parse(r#"{"algorithm": "a", "generator": "g", "n": 1, "policy": "fast"}"#)
                .unwrap();
        assert!(parse_cell(&bad_policy).unwrap_err().contains("policy"));
        let err = parse_request(r#"{"op": "submit", "cells": [{"n": 1}]}"#).unwrap_err();
        assert!(err.contains("cell 0"), "got: {err}");
    }

    #[test]
    fn requests_parse_every_op() {
        assert_eq!(parse_request(r#"{"op": "stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op": "ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        let sub = parse_request(
            r#"{"op": "submit", "cells": [{"algorithm": "mis/luby", "generator": "path", "n": 8}]}"#,
        )
        .unwrap();
        match sub {
            Request::Submit(cells) => {
                assert_eq!(cells.len(), 1);
                assert_eq!(cells[0].algo, "mis/luby");
            }
            other => panic!("expected Submit, got {other:?}"),
        }
        assert!(parse_request(r#"{"op": "frobnicate"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn stats_round_trip() {
        let s = ServeStats {
            hits: 10,
            misses: 4,
            evictions: 1,
            entries: 3,
            capacity: 8,
            executed: 4,
            served: 14,
            errors: 0,
            workspace_runs: 4,
            workspace_reuses: 2,
            threads: 2,
            master_seed: 2022,
        };
        assert_eq!(parse_stats(&stats_line(&s)), Some(s));
        assert_eq!(parse_stats("{\"pong\": true}"), None);
    }

    #[test]
    fn response_lines_are_well_formed_json() {
        for line in [
            error_line(Some(3), "boom \"quoted\""),
            error_line(None, "bad request"),
            done_line(10, 2),
            pong_line(),
            ok_line(),
        ] {
            assert!(Json::parse(&line).is_ok(), "unparseable: {line}");
        }
        let e = Json::parse(&error_line(Some(3), "x")).unwrap();
        assert_eq!(e.get("index").and_then(Json::as_u64), Some(3));
    }
}
