//! `exp serve` — a long-running result service with a content-addressed
//! cell cache (DESIGN.md §9).
//!
//! Sweeps recompute every cell on every invocation. But a cell's result
//! is a pure function of its canonical tuple ([`crate::cell::CellKey`])
//! plus the master seed — the whole stack is content-addressed — so
//! results can be served from a cache keyed by the tuple alone. This
//! subsystem turns that observation into a daemon:
//!
//! * [`protocol`] — the std-only JSON-lines wire format: `submit` /
//!   `stats` / `ping` / `shutdown` requests, cell objects in, raw
//!   `localavg-sweep/v1` cell lines out (byte-identical to `exp sweep`
//!   output for the same tuple).
//! * [`cache`] — bounded LRU over canonical keys with single-flight
//!   coalescing: concurrent duplicates execute once, repeats execute
//!   never.
//! * [`queue`] — the bounded FIFO connecting connection handlers to
//!   workers; full queues apply backpressure to clients instead of
//!   buffering without limit.
//! * [`pool`] — shared daemon state plus the worker loop; each worker
//!   owns a reusable [`localavg_sim::workspace::Workspace`], and the
//!   cell executor reproduces the sweep engine's semantics exactly.
//! * [`server`] — the TCP accept/connection/shutdown machinery and the
//!   blocking [`server::Client`] used by `exp submit` and the tests.
//!
//! The CLI pair: `exp serve --port 0 --port-file p.txt` runs a daemon,
//! `exp submit --addr $(cat p.txt) --scale quick` streams a batch
//! through it. See DESIGN.md §9 and the README's "Serving results"
//! walkthrough.

pub mod cache;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{Acquire, CacheStats, CellCache};
pub use pool::{execute_cell, GraphStore, Job, JobReply, Pool};
pub use protocol::{parse_request, Json, Request, ServeStats};
pub use queue::JobQueue;
pub use server::{run, Client, ServeConfig, SubmitOutcome};
