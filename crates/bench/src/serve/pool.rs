//! The serve worker pool: jobs, shared state, and the cell executor.
//!
//! A [`Pool`] owns everything the daemon's worker threads share — the
//! bounded [`JobQueue`], the content-addressed [`CellCache`], a
//! single-flight [`GraphStore`] of built instances, the master seed,
//! and the service counters. Connection handlers enqueue one [`Job`]
//! per submitted cell; each worker thread runs [`Pool::worker_loop`]
//! with a private reusable [`Workspace`] until the queue closes.
//!
//! Execution reproduces the sweep engine's cell semantics exactly —
//! same registries, same content-addressed seeds
//! ([`CellKey::graph_seed`] / [`CellKey::algo_seed`]), same domain
//! filter, same verified metrics — and renders the result through
//! [`crate::emit::cell_json`], so a served line is byte-identical to
//! the same cell's line in an `exp sweep` report (the serve goldens
//! pin this).
//!
//! Liveness: workers never push onto the bounded queue and reply over
//! unbounded mpsc channels, so the only blocking edges are connection
//! threads → queue (relieved by workers popping) and waiter-workers →
//! in-flight cache leaders (always another worker actively executing).
//! The wait-for graph is acyclic and every sink makes progress.

use super::cache::{Acquire, CellCache};
use super::protocol::ServeStats;
use super::queue::JobQueue;
use crate::cell::CellKey;
use crate::emit::{cell_json, CellRow};
use crate::generators;
use localavg_core::algo::{registry, RunSpec};
use localavg_graph::Graph;
use localavg_sim::workspace::Workspace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

/// One unit of work: answer `key` and send the outcome back tagged
/// with the submission `index`.
#[derive(Debug)]
pub struct Job {
    /// The cell to answer.
    pub key: CellKey,
    /// Position of the cell in its batch (results are streamed back in
    /// submission order).
    pub index: usize,
    /// Reply channel of the submitting connection (unbounded, so
    /// workers never block sending).
    pub reply: Sender<JobReply>,
}

/// A worker's answer to one [`Job`].
#[derive(Debug)]
pub struct JobReply {
    /// The job's batch position.
    pub index: usize,
    /// The finished `localavg-sweep/v1` cell line, or a human-readable
    /// error.
    pub line: Result<String, String>,
}

#[derive(Debug)]
enum GraphSlot {
    Building,
    Ready(Arc<Graph>),
}

/// Single-flight store of built `(family, n)` instances.
///
/// The graph seed ignores algorithm and seed index, so every cell of a
/// `(family, n)` pair shares one instance — exactly the sweep engine's
/// "one fixed graph per group" rule. The first worker to need an
/// instance builds it; concurrent requests for the same pair wait on a
/// condvar instead of duplicating the build. Build errors are not
/// cached (they are deterministic, so retries fail identically, but
/// keeping failures out of the store keeps its invariant trivial).
#[derive(Debug, Default)]
pub struct GraphStore {
    slots: Mutex<HashMap<(String, usize), GraphSlot>>,
    built: Condvar,
}

impl GraphStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        GraphStore::default()
    }

    /// Returns the instance for `(key.family, key.n)`, building it on
    /// first use from the cell's content-addressed graph seed.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown families (with a
    /// closest-match suggestion) or generator failures.
    pub fn get(&self, key: &CellKey, master_seed: u64) -> Result<Arc<Graph>, String> {
        let store_key = (key.family.clone(), key.n);
        let mut slots = self.slots.lock().expect("graph store poisoned");
        loop {
            match slots.get(&store_key) {
                Some(GraphSlot::Ready(g)) => return Ok(Arc::clone(g)),
                Some(GraphSlot::Building) => {
                    slots = self.built.wait(slots).expect("graph store poisoned");
                }
                None => {
                    slots.insert(store_key.clone(), GraphSlot::Building);
                    break;
                }
            }
        }
        drop(slots);
        let built = build_instance(key, master_seed);
        let mut slots = self.slots.lock().expect("graph store poisoned");
        match &built {
            Ok(g) => {
                slots.insert(store_key, GraphSlot::Ready(Arc::clone(g)));
            }
            Err(_) => {
                slots.remove(&store_key);
            }
        }
        drop(slots);
        self.built.notify_all();
        built
    }

    /// Number of instances currently resident.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("graph store poisoned").len()
    }

    /// Whether no instance has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn build_instance(key: &CellKey, master_seed: u64) -> Result<Arc<Graph>, String> {
    let gen =
        generators::registry().get(&key.family).ok_or_else(|| {
            match generators::registry().suggest(&key.family) {
                Some(s) => format!("unknown generator `{}` — did you mean `{s}`?", key.family),
                None => format!("unknown generator `{}`", key.family),
            }
        })?;
    gen.build(key.n, key.graph_seed(master_seed))
        .map(Arc::new)
        .map_err(|e| format!("generator `{}` failed at n={}: {e:?}", key.family, key.n))
}

/// Everything the daemon's threads share (see the module docs).
#[derive(Debug)]
pub struct Pool {
    /// Bounded job queue connection handlers feed.
    pub queue: JobQueue<Job>,
    /// Content-addressed result cache.
    pub cache: CellCache,
    /// Shared built instances.
    pub graphs: GraphStore,
    /// The master seed every cell seed is derived from (fixed at
    /// startup, so the cache key is exactly the cell tuple).
    pub master_seed: u64,
    threads: usize,
    executed: AtomicU64,
    served: AtomicU64,
    errors: AtomicU64,
    ws_runs: AtomicU64,
    ws_reuses: AtomicU64,
}

impl Pool {
    /// Creates the shared state for a pool of `threads` workers with the
    /// given cache/queue bounds (each clamped to ≥ 1 by its owner).
    pub fn new(
        threads: usize,
        cache_capacity: usize,
        queue_capacity: usize,
        master_seed: u64,
    ) -> Pool {
        Pool {
            queue: JobQueue::new(queue_capacity),
            cache: CellCache::new(cache_capacity),
            graphs: GraphStore::new(),
            master_seed,
            threads: threads.max(1),
            executed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            ws_runs: AtomicU64::new(0),
            ws_reuses: AtomicU64::new(0),
        }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Drains jobs until the queue closes. Run by each worker thread;
    /// owns one reusable [`Workspace`] across all its cells.
    pub fn worker_loop(&self) {
        let mut ws = Workspace::new();
        while let Some(job) = self.queue.pop() {
            let line = self.answer(&job.key, &mut ws);
            self.served.fetch_add(1, Ordering::Relaxed);
            if line.is_err() {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            // A send error means the submitting connection hung up;
            // the work is cached either way, so drop the reply.
            let _ = job.reply.send(JobReply {
                index: job.index,
                line,
            });
        }
    }

    /// Answers one cell: cache hit, or lead the execution and publish.
    fn answer(&self, key: &CellKey, ws: &mut Workspace) -> Result<String, String> {
        match self.cache.acquire(key) {
            Acquire::Hit(line) => Ok(line),
            Acquire::Lead => {
                let before = ws.stats();
                let outcome = execute_cell(key, self.master_seed, &self.graphs, ws);
                let after = ws.stats();
                self.ws_runs
                    .fetch_add((after.runs - before.runs) as u64, Ordering::Relaxed);
                self.ws_reuses
                    .fetch_add((after.reuses - before.reuses) as u64, Ordering::Relaxed);
                match outcome {
                    Ok(line) => {
                        self.executed.fetch_add(1, Ordering::Relaxed);
                        self.cache.complete(key, line.clone());
                        Ok(line)
                    }
                    Err(e) => {
                        self.cache.abandon(key);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Point-in-time service counters (the `stats` response).
    pub fn stats(&self) -> ServeStats {
        let c = self.cache.stats();
        ServeStats {
            hits: c.hits,
            misses: c.misses,
            evictions: c.evictions,
            entries: c.entries,
            capacity: c.capacity,
            executed: self.executed.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            workspace_runs: self.ws_runs.load(Ordering::Relaxed),
            workspace_reuses: self.ws_reuses.load(Ordering::Relaxed),
            threads: self.threads,
            master_seed: self.master_seed,
        }
    }
}

/// Runs one cell end to end — registry lookup, param configuration,
/// domain filter, shared instance, content-addressed seeds, verified
/// metrics — and renders the `localavg-sweep/v1` line.
///
/// This is the serve-side twin of the sweep engine's per-cell body
/// ([`crate::sweep::run`]); the serve goldens assert the two produce
/// byte-identical lines for every golden cell.
///
/// # Errors
///
/// Returns a human-readable message for unknown registry keys (with
/// closest-match suggestions), rejected params, domain violations,
/// generator failures, and outputs that fail verification.
pub fn execute_cell(
    key: &CellKey,
    master_seed: u64,
    graphs: &GraphStore,
    ws: &mut Workspace,
) -> Result<String, String> {
    let algo = registry()
        .get(&key.algo)
        .ok_or_else(|| match registry().suggest(&key.algo) {
            Some(s) => format!("unknown algorithm `{}` — did you mean `{s}`?", key.algo),
            None => format!("unknown algorithm `{}`", key.algo),
        })?;
    let kvs: Vec<(&str, &str)> = key
        .params
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let algo = algo.with_params(&kvs).map_err(|e| e.to_string())?;
    let gen =
        generators::registry().get(&key.family).ok_or_else(|| {
            match generators::registry().suggest(&key.family) {
                Some(s) => format!("unknown generator `{}` — did you mean `{s}`?", key.family),
                None => format!("unknown generator `{}`", key.family),
            }
        })?;
    let need = algo.problem().min_degree();
    let have = gen.min_degree(key.n);
    if need > have {
        return Err(format!(
            "`{}` needs minimum degree {need} but `{}` only guarantees {have} at n={}",
            key.algo, key.family, key.n
        ));
    }
    let g = graphs.get(key, master_seed)?;
    let spec = RunSpec::new(key.algo_seed(master_seed)).with_transcript(key.policy);
    let run = algo.execute_in(&g, &spec, ws);
    run.verify(&g)
        .map_err(|e| format!("{key} produced an invalid output: {e}"))?;
    let times = run.completion_times(&g);
    Ok(cell_json(&CellRow {
        algorithm: &key.algo,
        generator: &key.family,
        n: key.n,
        seed: key.seed,
        nodes: g.n(),
        edges: g.m(),
        min_degree: g.min_degree(),
        max_degree: g.degrees().max().unwrap_or(0),
        node_averaged: times.node_mean(),
        edge_averaged: times.edge_mean(),
        edge_averaged_one_endpoint: times.edge_one_endpoint_mean(),
        node_worst: times.node_max(),
        rounds: run.worst_case(),
        peak_message_bits: run.transcript.peak_message_bits(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run as sweep_run, SweepSpec};
    use std::sync::mpsc::channel;

    fn pool() -> Pool {
        Pool::new(2, 64, 8, 7)
    }

    #[test]
    fn execute_cell_matches_the_sweep_engine_bytes() {
        let spec = SweepSpec {
            algorithms: vec!["mis/luby".into()],
            generators: vec!["regular/4".into()],
            sizes: vec![32],
            seeds: 2,
            master_seed: 7,
            params: Vec::new(),
        };
        let report = sweep_run(&spec, 1).unwrap();
        let graphs = GraphStore::new();
        let mut ws = Workspace::new();
        for result in &report.cells {
            let line = execute_cell(&result.cell.key(), 7, &graphs, &mut ws).unwrap();
            assert_eq!(line, cell_json(&result.row()), "cell {}", result.cell.key());
        }
        assert_eq!(graphs.len(), 1, "one shared (family, n) instance");
    }

    #[test]
    fn execute_cell_reports_unknown_keys_with_suggestions() {
        let graphs = GraphStore::new();
        let mut ws = Workspace::new();
        let bad_algo = CellKey::new("regular/4", 32, 0, "mis/lubby");
        let err = execute_cell(&bad_algo, 0, &graphs, &mut ws).unwrap_err();
        assert!(err.contains("mis/luby"), "got: {err}");
        let bad_gen = CellKey::new("regullar/4", 32, 0, "mis/luby");
        let err = execute_cell(&bad_gen, 0, &graphs, &mut ws).unwrap_err();
        assert!(err.contains("regular/4"), "got: {err}");
    }

    #[test]
    fn execute_cell_enforces_the_domain_filter() {
        let graphs = GraphStore::new();
        let mut ws = Workspace::new();
        // Sinkless orientation needs min degree 3; trees have leaves.
        let key = CellKey::new("tree/random", 32, 0, "orientation/rand");
        let err = execute_cell(&key, 0, &graphs, &mut ws).unwrap_err();
        assert!(err.contains("minimum degree"), "got: {err}");
    }

    #[test]
    fn worker_loop_serves_jobs_and_counts_hits() {
        let p = pool();
        let (tx, rx) = channel();
        let key = CellKey::new("regular/4", 32, 0, "mis/luby");
        for index in 0..3 {
            p.queue
                .push(Job {
                    key: key.clone(),
                    index,
                    reply: tx.clone(),
                })
                .unwrap();
        }
        p.queue.close();
        std::thread::scope(|s| {
            s.spawn(|| p.worker_loop());
            s.spawn(|| p.worker_loop());
        });
        drop(tx);
        let replies: Vec<JobReply> = rx.iter().collect();
        assert_eq!(replies.len(), 3);
        let lines: Vec<&String> = replies.iter().map(|r| r.line.as_ref().unwrap()).collect();
        assert!(lines.windows(2).all(|w| w[0] == w[1]));
        let s = p.stats();
        assert_eq!(s.executed, 1, "duplicates must coalesce or hit");
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.served, 3);
        assert_eq!(s.errors, 0);
        assert!(s.workspace_runs >= 1);
    }

    #[test]
    fn worker_loop_streams_errors_without_caching_them() {
        let p = pool();
        let (tx, rx) = channel();
        let key = CellKey::new("tree/random", 32, 0, "orientation/rand");
        p.queue
            .push(Job {
                key: key.clone(),
                index: 0,
                reply: tx.clone(),
            })
            .unwrap();
        p.queue
            .push(Job {
                key,
                index: 1,
                reply: tx,
            })
            .unwrap();
        p.queue.close();
        std::thread::scope(|s| {
            s.spawn(|| p.worker_loop());
        });
        let replies: Vec<JobReply> = rx.iter().collect();
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| r.line.is_err()));
        let s = p.stats();
        assert_eq!(s.errors, 2);
        assert_eq!(s.executed, 0);
        assert_eq!(s.entries, 0, "failures must not be cached");
    }
}
