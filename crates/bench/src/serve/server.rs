//! The `exp serve` TCP daemon and its line-protocol client.
//!
//! [`run`] binds a `TcpListener`, spawns the worker pool inside one
//! `std::thread::scope`, and then accepts connections until a client
//! sends `{"op": "shutdown"}`. Every connection gets its own handler
//! thread that parses one request per line and streams responses (see
//! [`super::protocol`] for the wire format).
//!
//! A submit handler enqueues one [`Job`] per cell onto the bounded
//! queue — blocking for backpressure when the daemon is saturated —
//! while results flow back over an unbounded mpsc channel. Replies
//! arrive in completion order and are re-sequenced into submission
//! order before writing, so the client reads its cells in the order it
//! sent them, followed by one `done` line.
//!
//! Shutdown: the handling thread acknowledges, raises the shared flag,
//! and self-connects to the listener to wake the accept loop; the
//! accept loop then closes the queue (workers drain what was already
//! accepted and exit) and shuts down every registered connection
//! socket (handlers observe EOF and return), and the scope joins
//! everything before [`run`] returns.

use super::pool::{Job, JobReply, Pool};
use super::protocol::{
    self, done_line, error_line, ok_line, parse_request, pong_line, stats_line,
    submit_request_json, Json, Request, ServeStats,
};
use crate::cell::CellKey;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Daemon configuration (the `exp serve` flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Address to bind (default loopback).
    pub host: String,
    /// Port to bind; 0 asks the OS for an ephemeral port (the bound
    /// address is reported through `run`'s `on_ready` callback).
    pub port: u16,
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// Cache bound, in completed cells (clamped to ≥ 1).
    pub cache_capacity: usize,
    /// Queue bound, in pending jobs (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// The master seed every served cell derives its randomness from.
    /// Fixed per daemon so the cache key is exactly the cell tuple; a
    /// daemon started with the sweep default (0) serves lines
    /// byte-identical to `exp sweep` defaults.
    pub master_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            threads: 4,
            cache_capacity: 4096,
            queue_capacity: 1024,
            master_seed: 0,
        }
    }
}

struct Shared {
    pool: Pool,
    shutdown: AtomicBool,
    addr: SocketAddr,
    conns: Mutex<HashMap<usize, TcpStream>>,
    next_conn: AtomicUsize,
}

/// Runs the daemon to completion (until a `shutdown` request).
///
/// `on_ready` is invoked exactly once, with the bound address, after
/// the listener and worker pool are up — tests and the CLI use it to
/// learn the ephemeral port before the first client connects.
///
/// # Errors
///
/// Returns the bind error if the listener cannot be created; per-
/// connection I/O errors are handled by dropping the connection.
pub fn run(cfg: &ServeConfig, on_ready: impl FnOnce(SocketAddr)) -> std::io::Result<()> {
    let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
    let addr = listener.local_addr()?;
    let shared = Shared {
        pool: Pool::new(
            cfg.threads,
            cfg.cache_capacity,
            cfg.queue_capacity,
            cfg.master_seed,
        ),
        shutdown: AtomicBool::new(false),
        addr,
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicUsize::new(0),
    };
    std::thread::scope(|s| {
        for _ in 0..shared.pool.threads() {
            s.spawn(|| shared.pool.worker_loop());
        }
        on_ready(addr);
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = &shared;
            s.spawn(move || handle_conn(stream, shared));
        }
        // Stop the pool: drain accepted work, then workers exit…
        shared.pool.queue.close();
        // …and unblock any handler still reading from its client.
        for (_, conn) in shared.conns.lock().expect("conn registry").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    });
    Ok(())
}

fn handle_conn(stream: TcpStream, shared: &Shared) {
    let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        shared
            .conns
            .lock()
            .expect("conn registry")
            .insert(id, clone);
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let keep_going = match parse_request(trimmed) {
            Err(e) => writeln!(writer, "{}", error_line(None, &e)).is_ok(),
            Ok(Request::Ping) => writeln!(writer, "{}", pong_line()).is_ok(),
            Ok(Request::Stats) => writeln!(writer, "{}", stats_line(&shared.pool.stats())).is_ok(),
            Ok(Request::Submit(cells)) => handle_submit(&mut writer, shared, cells),
            Ok(Request::Shutdown) => {
                let _ = writeln!(writer, "{}", ok_line());
                shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
                false
            }
        };
        if !keep_going {
            break;
        }
    }
    shared.conns.lock().expect("conn registry").remove(&id);
}

/// Enqueues a batch and streams results back in submission order.
/// Returns `false` when the connection should close.
fn handle_submit(writer: &mut TcpStream, shared: &Shared, cells: Vec<CellKey>) -> bool {
    let total = cells.len();
    let (tx, rx) = mpsc::channel::<JobReply>();
    let mut rejected = 0usize;
    for (index, key) in cells.into_iter().enumerate() {
        let job = Job {
            key,
            index,
            reply: tx.clone(),
        };
        if shared.pool.queue.push(job).is_err() {
            // The daemon is shutting down; answer what we can.
            let _ = tx.send(JobReply {
                index,
                line: Err("server is shutting down".to_string()),
            });
            rejected += 1;
        }
    }
    drop(tx);
    let _ = rejected; // informational; the per-cell error lines carry it
    let mut pending: BTreeMap<usize, Result<String, String>> = BTreeMap::new();
    let mut next = 0usize;
    let mut errors = 0usize;
    for reply in &rx {
        pending.insert(reply.index, reply.line);
        while let Some(line) = pending.remove(&next) {
            let ok = match line {
                Ok(cell) => writeln!(writer, "{cell}").is_ok(),
                Err(e) => {
                    errors += 1;
                    writeln!(writer, "{}", error_line(Some(next), &e)).is_ok()
                }
            };
            if !ok {
                // Client hung up; drain remaining replies and bail so
                // workers never block (the channel is unbounded).
                for _ in rx.iter() {}
                return false;
            }
            next += 1;
        }
    }
    debug_assert_eq!(next, total, "every job must be answered exactly once");
    writeln!(writer, "{}", done_line(total, errors)).is_ok()
}

/// Outcome of one [`Client::submit`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// One response line per submitted cell, in submission order: raw
    /// `localavg-sweep/v1` cell objects or `{"error": ...}` objects.
    pub lines: Vec<String>,
    /// Cells the `done` line reported.
    pub cells: usize,
    /// Errors the `done` line reported.
    pub errors: usize,
}

/// A blocking line-protocol client (used by `exp submit` and the serve
/// tests; one TCP connection, any number of requests).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    fn request(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.read_line()
    }

    /// Submits a batch and collects the streamed results.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/foreign terminating line
    /// (e.g. the server rejecting the whole request).
    pub fn submit(&mut self, cells: &[CellKey]) -> std::io::Result<SubmitOutcome> {
        writeln!(self.writer, "{}", submit_request_json(cells))?;
        let mut lines = Vec::new();
        loop {
            let line = self.read_line()?;
            let parsed = Json::parse(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unparseable response line `{line}`: {e}"),
                )
            })?;
            if parsed.get("done").and_then(Json::as_bool) == Some(true) {
                let cells = parsed
                    .get("cells")
                    .and_then(Json::as_u64)
                    .unwrap_or(lines.len() as u64) as usize;
                let errors = parsed.get("errors").and_then(Json::as_u64).unwrap_or(0) as usize;
                return Ok(SubmitOutcome {
                    lines,
                    cells,
                    errors,
                });
            }
            if parsed.get("error").is_some() && parsed.get("index").is_none() {
                // Whole-request rejection (malformed batch): surface it.
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, line));
            }
            lines.push(line);
        }
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an unparseable stats line.
    pub fn stats(&mut self) -> std::io::Result<ServeStats> {
        let line = self.request("{\"op\": \"stats\"}")?;
        protocol::parse_stats(&line).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad stats line `{line}`"),
            )
        })
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a non-pong response.
    pub fn ping(&mut self) -> std::io::Result<()> {
        let line = self.request("{\"op\": \"ping\"}")?;
        if line == pong_line() {
            Ok(())
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad ping response `{line}`"),
            ))
        }
    }

    /// Asks the daemon to stop (acknowledged before it exits).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        let _ = self.request("{\"op\": \"shutdown\"}")?;
        Ok(())
    }
}
