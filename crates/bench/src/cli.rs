//! Flag parsing shared by the `exp` subcommands.
//!
//! Kept in the library (rather than the binary) so the parsing rules are
//! unit-testable — a measurement pipeline must not silently reinterpret
//! its own flags.

/// Returns the value following `--flag`, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses an integer-valued `--flag`, falling back to `default`.
///
/// # Errors
///
/// Returns a human-readable message when the value is present but not an
/// integer (the binary prints it and exits 2).
pub fn parse_usize(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects an integer, got `{v}`")),
    }
}

/// Parses a comma-separated `--flag a,b,c` list, if present.
pub fn flag_list(args: &[String], flag: &str) -> Option<Vec<String>> {
    flag_value(args, flag).map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
}

/// Parses one graph-size token. Large instances make plain digit strings
/// unreadable, so three equivalent forms are accepted:
///
/// * plain integers — `4096`
/// * underscore digit grouping — `10_000_000`
/// * scientific notation — `1e7`, `2.5e6` — as long as the value is an
///   exact nonnegative integer (`2.5e0` is rejected, not rounded)
///
/// # Errors
///
/// Returns a human-readable message for anything else, including values
/// that overflow `usize`.
pub fn parse_size(s: &str) -> Result<usize, String> {
    let err = || format!("`{s}` is not a size (try `4096`, `10_000_000`, or `1e7`)");
    if s.starts_with('_') || s.ends_with('_') {
        return Err(err());
    }
    let t: String = s.chars().filter(|&c| c != '_').collect();
    let (mant, exp) = match t.split_once(['e', 'E']) {
        Some((m, x)) => (m, x.parse::<u32>().map_err(|_| err())?),
        None => (t.as_str(), 0),
    };
    // A fractional mantissa (`2.5e6`) just shifts digits into the
    // exponent; the exponent must cover every fractional digit.
    let (digits, scale) = match mant.split_once('.') {
        Some((i, f)) => {
            let shift = u32::try_from(f.len()).map_err(|_| err())?;
            if shift > exp {
                return Err(err());
            }
            (format!("{i}{f}"), exp - shift)
        }
        None => (mant.to_string(), exp),
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(err());
    }
    let base: usize = digits.parse().map_err(|_| err())?;
    let pow = 10usize.checked_pow(scale).ok_or_else(err)?;
    base.checked_mul(pow).ok_or_else(err)
}

/// Parses a comma-separated `--sizes 1000,1e6,10_000_000` list through
/// [`parse_size`], if the flag is present.
///
/// # Errors
///
/// Returns the first offending token's [`parse_size`] message, prefixed
/// with the flag name.
pub fn parse_size_list(args: &[String], flag: &str) -> Result<Option<Vec<usize>>, String> {
    match flag_list(args, flag) {
        None => Ok(None),
        Some(items) => items
            .iter()
            .map(|s| parse_size(s).map_err(|e| format!("{flag}: {e}")))
            .collect::<Result<Vec<usize>, String>>()
            .map(Some),
    }
}

/// Returns the values of *every* occurrence of a repeatable `--flag`
/// (e.g. `--param a:k=v --param b:k=w`), in argument order.
pub fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Parses a `--policy full|completions|none` value into a
/// [`localavg_core::algo::TranscriptPolicy`] (flag absent = `Full`).
///
/// # Errors
///
/// Returns a human-readable message naming the accepted labels.
pub fn parse_policy(args: &[String]) -> Result<localavg_core::algo::TranscriptPolicy, String> {
    use localavg_core::algo::TranscriptPolicy;
    match flag_value(args, "--policy") {
        None => Ok(TranscriptPolicy::Full),
        Some(v) => TranscriptPolicy::parse(&v)
            .ok_or_else(|| format!("--policy expects `full`, `completions`, or `none`, got `{v}`")),
    }
}

/// Resolves a `--threads` value: `0` means "number of available cores",
/// matching `SimConfig::threads`' convention; any other value is taken
/// literally.
pub fn resolve_threads(raw: usize) -> usize {
    if raw == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        raw
    }
}

/// Parses the `--threads` flag with the `0 = auto` convention.
///
/// The default (flag absent) is also "auto": sweeps want every core
/// unless told otherwise.
///
/// # Errors
///
/// Same conditions as [`parse_usize`].
pub fn parse_threads(args: &[String]) -> Result<usize, String> {
    Ok(resolve_threads(parse_usize(args, "--threads", 0)?))
}

/// Validates a subcommand's flags up front: every argument must be a
/// known value-taking flag followed by a value, or a known bare flag.
/// In a measurement pipeline a silently-dropped typo (`--size` for
/// `--sizes`) would emit results for a different grid than the user
/// asked for.
///
/// # Errors
///
/// Returns a human-readable message naming the offending argument.
pub fn validate_flags(args: &[String], valued: &[&str], bare: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if bare.contains(&a) {
            i += 1;
        } else if valued.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => return Err(format!("{a} expects a value")),
            }
        } else {
            return Err(format!("unknown option `{a}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_value_and_list() {
        let a = args(&["--out", "x.json", "--sizes", "8, 16,32"]);
        assert_eq!(flag_value(&a, "--out").as_deref(), Some("x.json"));
        assert_eq!(flag_value(&a, "--missing"), None);
        assert_eq!(flag_list(&a, "--sizes").unwrap(), vec!["8", "16", "32"]);
        assert_eq!(flag_list(&a, "--missing"), None);
    }

    #[test]
    fn parse_size_accepts_plain_underscore_and_scientific_forms() {
        assert_eq!(parse_size("4096"), Ok(4096));
        assert_eq!(parse_size("10_000_000"), Ok(10_000_000));
        assert_eq!(parse_size("1_000"), Ok(1000));
        assert_eq!(parse_size("1e6"), Ok(1_000_000));
        assert_eq!(parse_size("1E7"), Ok(10_000_000));
        assert_eq!(parse_size("2.5e6"), Ok(2_500_000));
        assert_eq!(parse_size("1.25e4"), Ok(12_500));
        assert_eq!(parse_size("2.50e2"), Ok(250));
        assert_eq!(parse_size("0"), Ok(0));
        assert_eq!(parse_size("0e9"), Ok(0));
    }

    #[test]
    fn parse_size_rejects_non_integers_and_garbage() {
        for bad in [
            "", "x", "-5", "1.5", "2.5e0", "1.25e1", "e6", "1e", "1e1.5", "_100", "100_", "1e-3",
            "0x10", "ten",
        ] {
            assert!(parse_size(bad).is_err(), "`{bad}` should be rejected");
        }
        // usize overflow is an error, not a wrap.
        assert!(parse_size("1e30").is_err());
        assert!(parse_size("99999999999999999999999999").is_err());
    }

    #[test]
    fn parse_size_list_maps_every_token() {
        let a = args(&["--sizes", "1000, 1e6 ,10_000_000"]);
        assert_eq!(
            parse_size_list(&a, "--sizes"),
            Ok(Some(vec![1000, 1_000_000, 10_000_000]))
        );
        assert_eq!(parse_size_list(&a, "--missing"), Ok(None));
        let bad = args(&["--sizes", "1000,huge"]);
        let e = parse_size_list(&bad, "--sizes").unwrap_err();
        assert!(e.contains("--sizes") && e.contains("huge"), "{e}");
    }

    #[test]
    fn parse_usize_default_and_error() {
        let a = args(&["--seeds", "5", "--bad", "x"]);
        assert_eq!(parse_usize(&a, "--seeds", 1), Ok(5));
        assert_eq!(parse_usize(&a, "--missing", 7), Ok(7));
        assert!(parse_usize(&a, "--bad", 0).is_err());
    }

    #[test]
    fn threads_zero_means_available_cores() {
        // `--threads 0` must behave like SimConfig::threads == 0: auto.
        let a = args(&["--threads", "0"]);
        let t = parse_threads(&a).unwrap();
        assert!(t >= 1);
        assert_eq!(
            t,
            std::thread::available_parallelism().map_or(1, |p| p.get())
        );
        assert_eq!(resolve_threads(0), t);
    }

    #[test]
    fn threads_explicit_value_is_literal() {
        let a = args(&["--threads", "3"]);
        assert_eq!(parse_threads(&a).unwrap(), 3);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn threads_absent_defaults_to_auto() {
        let a = args(&[]);
        assert_eq!(parse_threads(&a).unwrap(), resolve_threads(0));
    }

    #[test]
    fn threads_garbage_is_an_error() {
        let a = args(&["--threads", "two"]);
        assert!(parse_threads(&a).is_err());
    }

    #[test]
    fn flag_values_collects_every_occurrence() {
        let a = args(&["--param", "a:k=1", "--out", "x", "--param", "b:k=2"]);
        assert_eq!(flag_values(&a, "--param"), vec!["a:k=1", "b:k=2"]);
        assert!(flag_values(&a, "--missing").is_empty());
    }

    #[test]
    fn parse_policy_labels() {
        use localavg_core::algo::TranscriptPolicy;
        assert_eq!(parse_policy(&args(&[])), Ok(TranscriptPolicy::Full));
        assert_eq!(
            parse_policy(&args(&["--policy", "none"])),
            Ok(TranscriptPolicy::None)
        );
        assert_eq!(
            parse_policy(&args(&["--policy", "completions"])),
            Ok(TranscriptPolicy::CompletionsOnly)
        );
        assert!(parse_policy(&args(&["--policy", "fast"])).is_err());
    }

    #[test]
    fn validate_flags_accepts_known_shapes() {
        let a = args(&["--out", "x.json", "--list-generators", "--sizes", "8,16"]);
        assert_eq!(
            validate_flags(&a, &["--out", "--sizes"], &["--list-generators"]),
            Ok(())
        );
    }

    #[test]
    fn validate_flags_rejects_typos_and_missing_values() {
        let valued = ["--threads", "--out"];
        assert!(validate_flags(&args(&["--thread", "2"]), &valued, &[])
            .is_err_and(|e| e.contains("--thread")));
        assert!(validate_flags(&args(&["--out"]), &valued, &[])
            .is_err_and(|e| e.contains("expects a value")));
        assert!(validate_flags(&args(&["--out", "--threads"]), &valued, &[]).is_err());
    }
}
