//! Flag parsing shared by the `exp` subcommands.
//!
//! Kept in the library (rather than the binary) so the parsing rules are
//! unit-testable — a measurement pipeline must not silently reinterpret
//! its own flags.

/// Returns the value following `--flag`, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses an integer-valued `--flag`, falling back to `default`.
///
/// # Errors
///
/// Returns a human-readable message when the value is present but not an
/// integer (the binary prints it and exits 2).
pub fn parse_usize(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects an integer, got `{v}`")),
    }
}

/// Parses a comma-separated `--flag a,b,c` list, if present.
pub fn flag_list(args: &[String], flag: &str) -> Option<Vec<String>> {
    flag_value(args, flag).map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
}

/// Returns the values of *every* occurrence of a repeatable `--flag`
/// (e.g. `--param a:k=v --param b:k=w`), in argument order.
pub fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Parses a `--policy full|completions|none` value into a
/// [`localavg_core::algo::TranscriptPolicy`] (flag absent = `Full`).
///
/// # Errors
///
/// Returns a human-readable message naming the accepted labels.
pub fn parse_policy(args: &[String]) -> Result<localavg_core::algo::TranscriptPolicy, String> {
    use localavg_core::algo::TranscriptPolicy;
    match flag_value(args, "--policy") {
        None => Ok(TranscriptPolicy::Full),
        Some(v) => TranscriptPolicy::parse(&v)
            .ok_or_else(|| format!("--policy expects `full`, `completions`, or `none`, got `{v}`")),
    }
}

/// Resolves a `--threads` value: `0` means "number of available cores",
/// matching `SimConfig::threads`' convention; any other value is taken
/// literally.
pub fn resolve_threads(raw: usize) -> usize {
    if raw == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        raw
    }
}

/// Parses the `--threads` flag with the `0 = auto` convention.
///
/// The default (flag absent) is also "auto": sweeps want every core
/// unless told otherwise.
///
/// # Errors
///
/// Same conditions as [`parse_usize`].
pub fn parse_threads(args: &[String]) -> Result<usize, String> {
    Ok(resolve_threads(parse_usize(args, "--threads", 0)?))
}

/// Validates a subcommand's flags up front: every argument must be a
/// known value-taking flag followed by a value, or a known bare flag.
/// In a measurement pipeline a silently-dropped typo (`--size` for
/// `--sizes`) would emit results for a different grid than the user
/// asked for.
///
/// # Errors
///
/// Returns a human-readable message naming the offending argument.
pub fn validate_flags(args: &[String], valued: &[&str], bare: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if bare.contains(&a) {
            i += 1;
        } else if valued.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => return Err(format!("{a} expects a value")),
            }
        } else {
            return Err(format!("unknown option `{a}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_value_and_list() {
        let a = args(&["--out", "x.json", "--sizes", "8, 16,32"]);
        assert_eq!(flag_value(&a, "--out").as_deref(), Some("x.json"));
        assert_eq!(flag_value(&a, "--missing"), None);
        assert_eq!(flag_list(&a, "--sizes").unwrap(), vec!["8", "16", "32"]);
        assert_eq!(flag_list(&a, "--missing"), None);
    }

    #[test]
    fn parse_usize_default_and_error() {
        let a = args(&["--seeds", "5", "--bad", "x"]);
        assert_eq!(parse_usize(&a, "--seeds", 1), Ok(5));
        assert_eq!(parse_usize(&a, "--missing", 7), Ok(7));
        assert!(parse_usize(&a, "--bad", 0).is_err());
    }

    #[test]
    fn threads_zero_means_available_cores() {
        // `--threads 0` must behave like SimConfig::threads == 0: auto.
        let a = args(&["--threads", "0"]);
        let t = parse_threads(&a).unwrap();
        assert!(t >= 1);
        assert_eq!(
            t,
            std::thread::available_parallelism().map_or(1, |p| p.get())
        );
        assert_eq!(resolve_threads(0), t);
    }

    #[test]
    fn threads_explicit_value_is_literal() {
        let a = args(&["--threads", "3"]);
        assert_eq!(parse_threads(&a).unwrap(), 3);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn threads_absent_defaults_to_auto() {
        let a = args(&[]);
        assert_eq!(parse_threads(&a).unwrap(), resolve_threads(0));
    }

    #[test]
    fn threads_garbage_is_an_error() {
        let a = args(&["--threads", "two"]);
        assert!(parse_threads(&a).is_err());
    }

    #[test]
    fn flag_values_collects_every_occurrence() {
        let a = args(&["--param", "a:k=1", "--out", "x", "--param", "b:k=2"]);
        assert_eq!(flag_values(&a, "--param"), vec!["a:k=1", "b:k=2"]);
        assert!(flag_values(&a, "--missing").is_empty());
    }

    #[test]
    fn parse_policy_labels() {
        use localavg_core::algo::TranscriptPolicy;
        assert_eq!(parse_policy(&args(&[])), Ok(TranscriptPolicy::Full));
        assert_eq!(
            parse_policy(&args(&["--policy", "none"])),
            Ok(TranscriptPolicy::None)
        );
        assert_eq!(
            parse_policy(&args(&["--policy", "completions"])),
            Ok(TranscriptPolicy::CompletionsOnly)
        );
        assert!(parse_policy(&args(&["--policy", "fast"])).is_err());
    }

    #[test]
    fn validate_flags_accepts_known_shapes() {
        let a = args(&["--out", "x.json", "--list-generators", "--sizes", "8,16"]);
        assert_eq!(
            validate_flags(&a, &["--out", "--sizes"], &["--list-generators"]),
            Ok(())
        );
    }

    #[test]
    fn validate_flags_rejects_typos_and_missing_values() {
        let valued = ["--threads", "--out"];
        assert!(validate_flags(&args(&["--thread", "2"]), &valued, &[])
            .is_err_and(|e| e.contains("--thread")));
        assert!(validate_flags(&args(&["--out"]), &valued, &[])
            .is_err_and(|e| e.contains("expects a value")));
        assert!(validate_flags(&args(&["--out", "--threads"]), &valued, &[]).is_err());
    }
}
