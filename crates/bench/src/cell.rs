//! The canonical cell identity shared by every measurement front end.
//!
//! A *cell* — the unit of work everywhere in this crate — is fully
//! determined by the tuple `(family, n, seed, algo, params, policy)`
//! (the sweep goldens and the `exp fuzz` canonical-re-run leg prove
//! it). [`CellKey`] is the one canonical representation of that tuple:
//!
//! * [`CellKey::canonical`] is the stable string form — the `exp serve`
//!   content-addressed cache key, the identity printed in sweep/fuzz
//!   failure messages, and (via [`CellKey::replay_flags`]) the
//!   `exp fuzz --exact` replay command are all the same code path;
//! * [`CellKey::hash`] folds the canonical string through the same
//!   iterated-SplitMix64 digest ([`key_tag`]) the seeding discipline
//!   uses;
//! * [`graph_seed`] / [`algo_seed`] are the content-addressed seed
//!   derivations (DESIGN.md §7), moved here from the sweep engine so
//!   that `exp sweep`, `exp bench-engine`, `exp fuzz`, and `exp serve`
//!   provably run every cell from the same substreams.
//!
//! Canonicalization rules: parameter overrides are sorted by key (the
//! CLI/protocol order never matters), and the policy is rendered by its
//! stable [`TranscriptPolicy::label`]. Two requests that differ only in
//! param order or policy spelling therefore collapse to one cache entry.

use localavg_core::algo::TranscriptPolicy;
use localavg_graph::rng::{splitmix64, Rng};
use std::fmt;

/// Hashes a registry key (or any canonical string) into a substream tag:
/// iterated SplitMix64 over the bytes. Part of the content-addressed
/// seeding discipline — cell seeds depend on *what* runs, never on
/// *where* or *when*.
pub fn key_tag(s: &str) -> u64 {
    let mut acc = 0x5EED0F5EED ^ s.len() as u64;
    for &b in s.as_bytes() {
        let mut st = acc ^ u64::from(b);
        acc = splitmix64(&mut st);
    }
    acc
}

/// The seed a `(family, n)` instance is built from: forked from the
/// master seed by generator key and target size only, so every algorithm
/// and every seed index sees the same topology.
pub fn graph_seed(master: u64, family: &str, n: usize) -> u64 {
    Rng::seed_from(master)
        .fork(key_tag(family))
        .fork(n as u64)
        .next_u64()
}

/// The seed a cell's algorithm run draws from: additionally forked by
/// algorithm key and seed index.
pub fn algo_seed(master: u64, family: &str, n: usize, algo: &str, seed: u64) -> u64 {
    Rng::seed_from(master)
        .fork(key_tag(family))
        .fork(n as u64)
        .fork(key_tag(algo))
        .fork(seed)
        .next_u64()
}

/// The pseudo-family key of a file-backed instance: `file/<hash>`, where
/// `<hash>` is the 16-hex-digit `localavg_graph::io::content_hash` of
/// the loaded graph (identical to the `localavg-csr/v1` checksum
/// footer). `--graph-file` cells use this as their `family` component,
/// so the canonical cell string — and therefore goldens and the serve
/// cache — stays content-addressed: two files holding the same graph
/// name the same cells, a different graph names different ones, and no
/// registry-family canonical form changes (registry keys never start
/// with `file/`).
pub fn file_family(content_hash: u64) -> String {
    format!("file/{content_hash:016x}")
}

/// Recovers the content hash from a [`file_family`] key, or `None` for
/// registry families.
pub fn parse_file_family(family: &str) -> Option<u64> {
    let hex = family.strip_prefix("file/")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The canonical `(family, n, seed, algo, params, policy)` cell tuple
/// (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Generator registry key.
    pub family: String,
    /// Target size (the family may round it).
    pub n: usize,
    /// Seed index within the cell's group.
    pub seed: u64,
    /// Algorithm registry key.
    pub algo: String,
    /// String-keyed parameter overrides, sorted by key (empty =
    /// defaults). Kept sorted by the constructors.
    pub params: Vec<(String, String)>,
    /// Transcript policy the run executes under (a pure performance
    /// knob — metrics are policy-independent — but part of the tuple so
    /// a cache entry records exactly what was asked).
    pub policy: TranscriptPolicy,
}

impl CellKey {
    /// A defaults-identity key: no parameter overrides, `Full` policy.
    pub fn new(family: impl Into<String>, n: usize, seed: u64, algo: impl Into<String>) -> CellKey {
        CellKey {
            family: family.into(),
            n,
            seed,
            algo: algo.into(),
            params: Vec::new(),
            policy: TranscriptPolicy::Full,
        }
    }

    /// Attaches parameter overrides, sorting them into canonical order.
    #[must_use]
    pub fn with_params(mut self, mut params: Vec<(String, String)>) -> CellKey {
        params.sort();
        self.params = params;
        self
    }

    /// Sets the transcript policy.
    #[must_use]
    pub fn with_policy(mut self, policy: TranscriptPolicy) -> CellKey {
        self.policy = policy;
        self
    }

    /// The stable string form — the `exp serve` cache key. Params appear
    /// sorted, the policy by its stable label.
    pub fn canonical(&self) -> String {
        let params = self
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "family={};n={};seed={};algo={};params=[{}];policy={}",
            self.family,
            self.n,
            self.seed,
            self.algo,
            params,
            self.policy.label()
        )
    }

    /// [`key_tag`] of the canonical string: the content-addressed hash of
    /// the whole tuple.
    pub fn hash(&self) -> u64 {
        key_tag(&self.canonical())
    }

    /// The instance seed of this cell's `(family, n)` graph.
    pub fn graph_seed(&self, master: u64) -> u64 {
        graph_seed(master, &self.family, self.n)
    }

    /// The run seed of this cell's algorithm execution.
    pub fn algo_seed(&self, master: u64) -> u64 {
        algo_seed(master, &self.family, self.n, &self.algo, self.seed)
    }

    /// The `exp fuzz --exact` flags that replay this cell verbatim —
    /// the same canonical tuple, rendered as CLI arguments (`threads` is
    /// an executor knob, not part of the tuple, so it is passed in).
    pub fn replay_flags(&self, master_seed: u64, threads: usize) -> String {
        let mut flags = format!(
            "--master-seed {} --generators {} --algorithms {} --sizes {} --seed {} \
             --policy {} --threads {}",
            master_seed,
            self.family,
            self.algo,
            self.n,
            self.seed,
            self.policy.label(),
            threads
        );
        for (k, v) in &self.params {
            flags.push_str(&format!(" --param {}:{}={}", self.algo, k, v));
        }
        flags
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_stable_and_param_order_independent() {
        // Params arrive in either order, canonicalize identically.
        let a = CellKey::new("regular/4", 64, 1, "mis/luby")
            .with_params(vec![("b".into(), "2".into()), ("a".into(), "1".into())]);
        let b = CellKey::new("regular/4", 64, 1, "mis/luby")
            .with_params(vec![("a".into(), "1".into()), ("b".into(), "2".into())]);
        assert_eq!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.hash(), b.hash());
        assert_eq!(
            a.canonical(),
            "family=regular/4;n=64;seed=1;algo=mis/luby;params=[a=1,b=2];policy=full"
        );
    }

    #[test]
    fn distinct_tuples_have_distinct_canonical_forms() {
        let base = CellKey::new("regular/4", 64, 0, "mis/luby");
        let by_seed = CellKey::new("regular/4", 64, 1, "mis/luby");
        let by_policy = base.clone().with_policy(TranscriptPolicy::None);
        let by_params = base
            .clone()
            .with_params(vec![("mark-factor".into(), "0.5".into())]);
        for other in [&by_seed, &by_policy, &by_params] {
            assert_ne!(base.canonical(), other.canonical());
            assert_ne!(base.hash(), other.hash());
        }
    }

    #[test]
    fn seeds_match_the_sweep_discipline() {
        // cell::graph_seed/algo_seed are the seeding functions the sweep
        // engine re-exports; the golden bytes pin this indirectly, this
        // test pins it directly.
        let key = CellKey::new("regular/4", 64, 2, "mis/luby");
        assert_eq!(key.graph_seed(7), graph_seed(7, "regular/4", 64));
        assert_eq!(
            key.algo_seed(7),
            algo_seed(7, "regular/4", 64, "mis/luby", 2)
        );
        assert_ne!(key.algo_seed(7), key.algo_seed(8));
    }

    #[test]
    fn file_family_round_trips_and_stays_out_of_the_registry_namespace() {
        let fam = file_family(0x0123_4567_89ab_cdef);
        assert_eq!(fam, "file/0123456789abcdef");
        assert_eq!(parse_file_family(&fam), Some(0x0123_4567_89ab_cdef));
        assert_eq!(parse_file_family("file/abc"), None);
        assert_eq!(parse_file_family("regular/4"), None);
        // A file-backed cell canonicalizes like any other — the hash is
        // simply part of the family string.
        let key = CellKey::new(file_family(7), 64, 0, "mis/luby");
        assert_eq!(
            key.canonical(),
            "family=file/0000000000000007;n=64;seed=0;algo=mis/luby;params=[];policy=full"
        );
    }

    #[test]
    fn replay_flags_round_trip_the_tuple() {
        let key = CellKey::new("path", 8, 3, "mis/luby")
            .with_policy(TranscriptPolicy::None)
            .with_params(vec![("mark-factor".into(), "0.5".into())]);
        let flags = key.replay_flags(5, 2);
        assert_eq!(
            flags,
            "--master-seed 5 --generators path --algorithms mis/luby --sizes 8 --seed 3 \
             --policy none --threads 2 --param mis/luby:mark-factor=0.5"
        );
    }
}
