//! Experiment runner, sweep driver, and registry-driven algorithm driver.
//!
//! ```text
//! cargo run --release -p localavg-bench --bin exp              # all experiments, full scale
//! cargo run --release -p localavg-bench --bin exp -- quick     # smoke scale
//! cargo run --release -p localavg-bench --bin exp -- e9        # one experiment
//! cargo run --release -p localavg-bench --bin exp -- --list    # list registered algorithms
//! cargo run --release -p localavg-bench --bin exp -- --list --problem mis
//! cargo run --release -p localavg-bench --bin exp -- --algo mis/luby --n 512 --d 8 --seed 3
//! cargo run --release -p localavg-bench --bin exp -- --algo mis/luby --param mis/luby:mark-factor=0.25
//! cargo run --release -p localavg-bench --bin exp -- sweep --scale quick --threads 8 --out out.json
//! cargo run --release -p localavg-bench --bin exp -- sweep --problem coloring --param coloring/trial:extra-colors=4
//! cargo run --release -p localavg-bench --bin exp -- gen --generator powerlaw/2.1 --n 1e7 --seed 0 --out big.csr
//! cargo run --release -p localavg-bench --bin exp -- import --in edges.txt --out imported.csr
//! cargo run --release -p localavg-bench --bin exp -- sweep --graph-file big.csr --algorithms mis/luby
//! cargo run --release -p localavg-bench --bin exp -- bench-engine --out BENCH.json
//! cargo run --release -p localavg-bench --bin exp -- bench-engine --graph-file big.csr
//! cargo run --release -p localavg-bench --bin exp -- bench-engine --policy none --reuse-workspace
//! cargo run --release -p localavg-bench --bin exp -- fuzz --cases 500 --master-seed 5
//! cargo run --release -p localavg-bench --bin exp -- fuzz --generators lb/lift/1,tree/spider
//! cargo run --release -p localavg-bench --bin exp -- serve --port 0 --port-file port.txt
//! cargo run --release -p localavg-bench --bin exp -- submit --addr 127.0.0.1:7411 --scale quick
//! cargo run --release -p localavg-bench --bin exp -- submit --addr $(cat port.txt) --stats --shutdown
//! ```
//!
//! `--algo` runs a single algorithm (looked up in the string registry) on
//! a random d-regular graph and prints its verified complexity report;
//! unknown names fail with a closest-match suggestion. `--problem`
//! filters `--list` and selects whole families in `sweep` (unknown
//! problem names also fail with a suggestion), and `--param
//! family/name:key=value` overrides string-keyed algorithm parameters
//! (repeatable; validated per algorithm).
//!
//! `sweep` runs the sharded parallel sweep engine (DESIGN.md §6) over a
//! grid of registry algorithms × named graph families × sizes × seeds and
//! emits machine-readable JSON or CSV; output bytes are independent of
//! `--threads` (`0` = all available cores, like `SimConfig::threads`).
//!
//! `gen` builds one named instance with the sweep's content-addressed
//! seed and persists it as a `localavg-csr/v1` file (DESIGN.md §10);
//! `--graph-file FILE` on `sweep`/`bench-engine` loads such a file as a
//! `file/<content-hash>` pseudo-family, so 1e7-node instances are built
//! once and measured many times. Sizes everywhere accept `4096`,
//! `10_000_000`, and `1e7` forms.
//!
//! `bench-engine` times the round engine itself (sequential + parallel
//! executors) and emits `localavg-bench/v1` JSON; `--baseline FILE`
//! embeds a previous run and computes per-cell speedups; `--policy
//! full|completions|none` and `--reuse-workspace` drive the
//! `TranscriptPolicy`/`Workspace` fast path.
//!
//! `fuzz` runs the seeded differential harness (DESIGN.md §8): sampled
//! (family × size × algorithm × params × policy × executor) cells are
//! cross-checked against the independent `localavg_core::check` oracle,
//! and any disagreement is shrunk to a minimal failing tuple.
//!
//! `serve` runs the long-lived result daemon (DESIGN.md §9): a TCP
//! JSON-lines service that answers submitted cell tuples from a
//! content-addressed cache, executing each distinct tuple at most once
//! per daemon lifetime. `submit` is its batch client: cells come from
//! `--scale quick|full` (the default sweep grids), `--file batch.jsonl`,
//! or stdin, and results stream to stdout in the `localavg-sweep/v1`
//! cell schema — byte-identical to what `exp sweep` would emit for the
//! same tuples under the daemon's `--master-seed`.

use localavg_bench::cell::CellKey;
use localavg_bench::cli::{flag_list, flag_value, flag_values};
use localavg_bench::experiments::{self, Scale};
use localavg_bench::serve;
use localavg_bench::serve::protocol::{parse_cell, Json};
use localavg_bench::sweep::ParamOverride;
use localavg_bench::{bench_engine, cli, emit, fuzz, generators, sweep, Table};
use localavg_core::algo::{registry, Exec, Problem, RunSpec};
use localavg_graph::suggest::closest_match;
use localavg_graph::{gen, rng::Rng};
use std::io::Read as _;
use std::net::SocketAddr;
use std::time::Instant;

/// Parses `--problem NAME`, exiting with a suggestion on unknown names.
fn parse_problem(args: &[String]) -> Option<Problem> {
    let name = flag_value(args, "--problem")?;
    match Problem::parse(&name) {
        Some(p) => Some(p),
        None => {
            eprint!("error: unknown problem `{name}`");
            match Problem::suggest(&name) {
                Some(close) => eprintln!(" — did you mean `{close}`?"),
                None => eprintln!(),
            }
            let keys: Vec<&str> = Problem::ALL.iter().map(|p| p.key()).collect();
            eprintln!("known problems: {}", keys.join(", "));
            std::process::exit(2);
        }
    }
}

/// Parses every repeatable `--param family/name:key=value` occurrence.
fn parse_params(args: &[String]) -> Vec<ParamOverride> {
    flag_values(args, "--param")
        .iter()
        .map(|s| {
            ParamOverride::parse(s).unwrap_or_else(|e| {
                eprintln!("error: --param {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn print_algo_list(problem: Option<Problem>) {
    let mut t = Table::new(
        "Registered algorithms (`--algo <name>` runs one)",
        &["name", "problem", "deterministic", "domain", "params"],
    );
    // Grouped by problem (not raw registration order) so late additions
    // like the `*/tree-rc` family sit under their problem headings.
    for p in Problem::ALL {
        if problem.is_some_and(|want| p != want) {
            continue;
        }
        for a in registry().by_problem(p) {
            let domain = if a.requires_tree() {
                "trees only".to_string()
            } else {
                match a.problem().min_degree() {
                    0 => "any graph".to_string(),
                    d => format!("min degree ≥ {d}"),
                }
            };
            let params = a
                .param_specs()
                .iter()
                .map(|s| format!("{}={}", s.key, s.default))
                .collect::<Vec<_>>()
                .join(" ");
            t.row(vec![
                a.name().to_string(),
                a.problem().label().to_string(),
                a.deterministic().to_string(),
                domain,
                if params.is_empty() {
                    "—".to_string()
                } else {
                    params
                },
            ]);
        }
    }
    println!("{t}");
}

/// [`cli::parse_usize`] with the binary's exit-on-error behaviour.
fn parse_usize(args: &[String], flag: &str, default: usize) -> usize {
    cli::parse_usize(args, flag, default).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// [`cli::parse_size_list`] for `--sizes` (accepting `4096`,
/// `10_000_000`, and `1e7` forms) with the binary's exit-on-error
/// behaviour.
fn parse_sizes(args: &[String]) -> Option<Vec<usize>> {
    cli::parse_size_list(args, "--sizes").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Loads the `--graph-file` instance, if the flag is present.
fn parse_graph_file(args: &[String]) -> Option<sweep::FileGraph> {
    flag_value(args, "--graph-file").map(|path| {
        sweep::FileGraph::load(&path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    })
}

/// Splices a loaded `--graph-file` pseudo-family into a grid: it joins
/// an explicit `--generators` list (or replaces the default one), and
/// with no explicit `--sizes` the size axis collapses to the instance's
/// realized node count.
fn splice_graph_file(
    args: &[String],
    file: &sweep::FileGraph,
    generators: &mut Vec<String>,
    sizes: &mut Vec<usize>,
) {
    if flag_value(args, "--generators").is_some() {
        generators.push(file.family.to_string());
    } else {
        *generators = vec![file.family.to_string()];
    }
    if flag_value(args, "--sizes").is_none() {
        *sizes = vec![file.graph.n()];
    }
}

fn run_single_algo(args: &[String], name: &str) {
    let Some(algo) = registry().get(name) else {
        eprint!("error: unknown algorithm `{name}`");
        match registry().suggest(name) {
            Some(close) => eprintln!(" — did you mean `{close}`?"),
            None => eprintln!(),
        }
        eprintln!("hint: `--list` prints every registered algorithm");
        std::process::exit(2);
    };
    let overrides = parse_params(args);
    if let Some(other) = overrides.iter().find(|p| p.algorithm != name) {
        eprintln!(
            "error: --param {}:{}={} does not apply to `{name}`",
            other.algorithm, other.key, other.value
        );
        std::process::exit(2);
    }
    let kvs: Vec<(&str, &str)> = overrides
        .iter()
        .map(|p| (p.key.as_str(), p.value.as_str()))
        .collect();
    let algo = algo.with_params(&kvs).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let n = parse_usize(args, "--n", 256);
    let d = parse_usize(args, "--d", 4);
    let seed = parse_usize(args, "--seed", 1) as u64;
    if algo.problem().min_degree() > d {
        eprintln!(
            "error: {} requires min degree {} (got --d {d})",
            algo.name(),
            algo.problem().min_degree()
        );
        std::process::exit(2);
    }
    let mut rng = Rng::seed_from(seed ^ 0xD15EA5E);
    let g = if algo.requires_tree() {
        // `*/tree-rc` only runs on forests: a regular graph would be
        // rejected with a typed NotATree, so drive it on a random tree
        // (--d is meaningless there and ignored).
        let g = gen::random_tree(n, &mut rng);
        println!(
            "{} ({}) on a random tree, n={n}, seed={seed} (tree-only domain; --d ignored)",
            algo.name(),
            algo.problem()
        );
        g
    } else {
        let g = gen::random_regular(n, d, &mut rng).unwrap_or_else(|e| {
            eprintln!("error: cannot build a {d}-regular graph on {n} nodes: {e:?}");
            std::process::exit(2);
        });
        println!(
            "{} ({}) on a random {d}-regular graph, n={n}, seed={seed}",
            algo.name(),
            algo.problem()
        );
        g
    };
    let run = algo.execute(&g, &RunSpec::new(seed));
    match run.verify(&g) {
        Ok(()) => println!("output verified: valid {}", algo.problem()),
        Err(e) => {
            eprintln!("OUTPUT INVALID: {e}");
            std::process::exit(1);
        }
    }
    let rep = run.report(&g);
    println!(
        "node-averaged (AVG_V)            : {:.2}",
        rep.node_averaged
    );
    println!(
        "edge-averaged (AVG_E)            : {:.2}",
        rep.edge_averaged
    );
    println!(
        "edge-averaged (one endpoint, fn.2): {:.2}",
        rep.edge_averaged_one_endpoint
    );
    println!("worst node completion            : {}", rep.node_worst);
    println!("total rounds (worst case)        : {}", rep.rounds);
    println!(
        "termination-time node average    : {:.2}",
        rep.node_averaged_termination
    );
    match run.transcript.peak_message_bits() {
        Some(bits) => println!("CONGEST audit: peak message size = {bits} bits"),
        None => println!("CONGEST audit: skipped (transcript policy)"),
    }
}

fn parse_scale(args: &[String]) -> Scale {
    match flag_value(args, "--scale").as_deref() {
        None | Some("quick") => Scale::Quick,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("error: --scale expects `quick` or `full`, got `{other}`");
            std::process::exit(2);
        }
    }
}

/// Rejects unknown or value-less `exp sweep` options up front (see
/// `cli::validate_flags` for why).
fn validate_sweep_args(args: &[String]) {
    const VALUED: [&str; 12] = [
        "--scale",
        "--threads",
        "--out",
        "--format",
        "--algorithms",
        "--generators",
        "--sizes",
        "--seeds",
        "--master-seed",
        "--problem",
        "--param",
        "--graph-file",
    ];
    if let Err(e) = cli::validate_flags(args, &VALUED, &["--list-generators"]) {
        eprintln!("error: {e}");
        eprintln!(
            "known options: --scale quick|full, --threads N, --out FILE, --format json|csv, \
             --algorithms a,b, --generators g,h, --sizes n,m, --seeds K, --master-seed S, \
             --problem P, --param algo:key=value, --graph-file FILE, --list-generators"
        );
        std::process::exit(2);
    }
}

/// The `exp sweep` subcommand: grid → sharded run → JSON/CSV.
fn run_sweep(args: &[String]) {
    validate_sweep_args(args);
    if args.iter().any(|a| a == "--list-generators") {
        let mut t = Table::new(
            "Registered graph families (`--generators a,b` selects a subset)",
            &["name", "description"],
        );
        for g in generators::registry().iter() {
            t.row(vec![g.name().to_string(), g.description().to_string()]);
        }
        println!("{t}");
        return;
    }

    let mut spec = sweep::SweepSpec::for_scale(parse_scale(args));
    let problem = parse_problem(args);
    if let Some(p) = problem {
        if flag_value(args, "--algorithms").is_some() {
            eprintln!("error: --problem and --algorithms are mutually exclusive");
            std::process::exit(2);
        }
        spec.algorithms = registry()
            .by_problem(p)
            .map(|a| a.name().to_string())
            .collect();
    }
    if let Some(algos) = flag_list(args, "--algorithms") {
        spec.algorithms = algos;
    }
    spec.params = parse_params(args);
    if let Some(gens) = flag_list(args, "--generators") {
        spec.generators = gens;
    }
    if let Some(sizes) = parse_sizes(args) {
        spec.sizes = sizes;
    }
    let graph_file = parse_graph_file(args);
    if let Some(f) = &graph_file {
        splice_graph_file(args, f, &mut spec.generators, &mut spec.sizes);
    }
    spec.seeds = parse_usize(args, "--seeds", spec.seeds as usize) as u64;
    spec.master_seed = parse_usize(args, "--master-seed", spec.master_seed as usize) as u64;
    // `--threads 0` (and the flag's absence) mean "all available cores",
    // mirroring `SimConfig::threads`.
    let threads = cli::parse_threads(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let format = flag_value(args, "--format").unwrap_or_else(|| "json".to_string());
    if format != "json" && format != "csv" {
        eprintln!("error: --format expects `json` or `csv`, got `{format}`");
        std::process::exit(2);
    }

    let report = sweep::run_with_file(&spec, threads, graph_file.as_ref()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("hint: `exp sweep --list-generators` and `exp --list` print the registries");
        std::process::exit(2);
    });

    match flag_value(args, "--out") {
        None => {
            // No --out: machine output goes to stdout, pipeable.
            if format == "json" {
                print!("{}", emit::to_json(&report));
            } else {
                print!("{}", emit::cells_csv(&report));
            }
        }
        Some(out) => {
            let write = |path: &str, data: &str| {
                std::fs::write(path, data).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                });
                println!("wrote {path}");
            };
            if format == "json" {
                write(&out, &emit::to_json(&report));
            } else {
                write(&out, &emit::cells_csv(&report));
                let groups_path = match out.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}-groups.{ext}"),
                    None => format!("{out}-groups"),
                };
                write(&groups_path, &emit::groups_csv(&report));
            }
            println!(
                "{} cells, {} groups, {threads} thread(s)\n",
                report.cells.len(),
                report.groups.len()
            );
            println!("{}", emit::groups_table(&report));
        }
    }
}

/// Peak resident set size of this process in bytes, from Linux's
/// `/proc/self/status` `VmHWM` line; `None` where that proc file does
/// not exist. Used by `exp gen` to report the streaming build's actual
/// memory high-water mark next to the on-disk size.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Rejects unknown or value-less `exp gen` options up front.
fn validate_gen_args(args: &[String]) {
    const VALUED: [&str; 4] = ["--generator", "--n", "--seed", "--out"];
    if let Err(e) = cli::validate_flags(args, &VALUED, &[]) {
        eprintln!("error: {e}");
        eprintln!(
            "known options: --generator F, --n N (accepts 1e7/10_000_000 forms), \
             --seed S (master seed, default 0), --out FILE"
        );
        std::process::exit(2);
    }
}

/// The `exp gen` subcommand: build one named instance with the sweep's
/// content-addressed seed and persist it as a `localavg-csr/v1` file.
/// `--seed` is the *master* seed: `gen --generator F --n N --seed S`
/// writes exactly the instance `exp sweep --generators F --sizes N
/// --master-seed S` would build in memory, so file-backed and in-memory
/// measurements of the same cell agree.
fn run_gen(args: &[String]) {
    validate_gen_args(args);
    let Some(gname) = flag_value(args, "--generator") else {
        eprintln!("error: --generator F is required (see `exp sweep --list-generators`)");
        std::process::exit(2);
    };
    let Some(n_text) = flag_value(args, "--n") else {
        eprintln!("error: --n N is required");
        std::process::exit(2);
    };
    let n = cli::parse_size(&n_text).unwrap_or_else(|e| {
        eprintln!("error: --n: {e}");
        std::process::exit(2);
    });
    let master_seed = parse_usize(args, "--seed", 0) as u64;
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("error: --out FILE is required");
        std::process::exit(2);
    };
    let Some(family) = generators::registry().get(&gname) else {
        eprint!("error: unknown generator `{gname}`");
        match generators::registry().suggest(&gname) {
            Some(close) => eprintln!(" — did you mean `{close}`?"),
            None => eprintln!(),
        }
        std::process::exit(2);
    };
    let build_start = Instant::now();
    let g = family
        .build(n, localavg_bench::cell::graph_seed(master_seed, &gname, n))
        .unwrap_or_else(|e| {
            eprintln!("error: generator `{gname}` failed at n={n}: {e:?}");
            std::process::exit(1);
        });
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let write_start = Instant::now();
    let written = localavg_graph::io::write_graph_to_path(&out, &g).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    let write_ms = write_start.elapsed().as_secs_f64() * 1e3;
    let hash = localavg_graph::io::content_hash(&g);
    println!("gen: {gname} n={n} master-seed={master_seed} -> {out}");
    println!(
        "  instance   nodes {} edges {} min_degree {} max_degree {}",
        g.n(),
        g.m(),
        g.min_degree(),
        g.degrees().max().unwrap_or(0)
    );
    println!(
        "  cost       build {build_ms:.1} ms, write {write_ms:.1} ms, \
         {written} bytes on disk, {} bytes in memory",
        g.memory_bytes()
    );
    println!(
        "  family     {}   (use: exp sweep --graph-file {out})",
        localavg_bench::cell::file_family(hash)
    );
    if let Some(rss) = peak_rss_bytes() {
        println!(
            "  peak RSS   {rss} bytes ({:.2}x of on-disk size)",
            rss as f64 / written as f64
        );
    }
}

/// Rejects unknown or value-less `exp bench-engine` options up front.
fn validate_bench_args(args: &[String]) {
    const VALUED: [&str; 12] = [
        "--algorithms",
        "--generators",
        "--sizes",
        "--reps",
        "--threads",
        "--label",
        "--baseline",
        "--out",
        "--policy",
        "--param",
        "--tripwire",
        "--graph-file",
    ];
    if let Err(e) = cli::validate_flags(args, &VALUED, &["--reuse-workspace"]) {
        eprintln!("error: {e}");
        eprintln!(
            "known options: --algorithms a,b, --generators g,h, --sizes n,m, --reps R, \
             --threads N, --label S, --baseline FILE, --out FILE, \
             --policy full|completions|none, --reuse-workspace, --param algo:key=value, \
             --tripwire PCT, --graph-file FILE"
        );
        std::process::exit(2);
    }
}

/// The `exp bench-engine` subcommand: timed engine runs → JSON.
fn run_bench_engine(args: &[String]) {
    validate_bench_args(args);
    let mut spec = bench_engine::BenchSpec::default();
    if let Some(algos) = flag_list(args, "--algorithms") {
        spec.algorithms = algos;
    }
    spec.policy = cli::parse_policy(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    spec.reuse_workspace = args.iter().any(|a| a == "--reuse-workspace");
    spec.params = parse_params(args);
    if let Some(gens) = flag_list(args, "--generators") {
        spec.generators = gens;
    }
    if let Some(sizes) = parse_sizes(args) {
        spec.sizes = sizes;
    }
    let graph_file = parse_graph_file(args);
    if let Some(f) = &graph_file {
        splice_graph_file(args, f, &mut spec.generators, &mut spec.sizes);
    }
    spec.reps = parse_usize(args, "--reps", spec.reps);
    // `--threads` sets the parallel executor's worker count (0 = auto).
    // Unlike `sweep`, the *default* is the 2 threads of
    // `BenchSpec::default()`, not auto: the thread count is part of the
    // cell key, so committed artifacts must compare across machines.
    let threads = cli::resolve_threads(parse_usize(args, "--threads", 2));
    spec.executors = vec![Exec::Sequential, Exec::Parallel { threads }];
    if let Some(label) = flag_value(args, "--label") {
        spec.label = label;
    }
    let baseline = flag_value(args, "--baseline").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        bench_engine::parse_report(&text).unwrap_or_else(|| {
            eprintln!("error: {path} is not a localavg-bench/v1 document");
            std::process::exit(2);
        })
    });

    let report = bench_engine::run_with_file(&spec, graph_file.as_ref()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if let Some(base) = &baseline {
        let gap = bench_engine::baseline_coverage_gap(&report, base);
        if gap > 0 {
            eprintln!(
                "note: {gap} cell(s) have no matching baseline cell (different grid \
                 or --threads?) and are omitted from the \"speedups\" section"
            );
        }
        // The mirror image: baseline rows this run never re-measured.
        // Dropping them silently would let a shrunk grid pass for a
        // clean comparison, so each one is named and the count lands in
        // the JSON as "unmatched_cells".
        for b in bench_engine::unmatched_baseline_cells(&report, base) {
            eprintln!(
                "warning: unmatched baseline cell: {} on {} n={} ({}) — \
                 not re-measured by this run",
                b.algorithm, b.generator, b.n, b.executor
            );
        }
    }
    let json = bench_engine::to_json(&report, baseline.as_ref());
    match flag_value(args, "--out") {
        None => print!("{json}"),
        Some(out) => {
            std::fs::write(&out, &json).unwrap_or_else(|e| {
                eprintln!("error: cannot write {out}: {e}");
                std::process::exit(1);
            });
            println!("wrote {out}");
            for c in &report.cells {
                println!(
                    "{:>14} {:>10} n={:<7} {:>12}  best {:>9.3} ms  mean {:>9.3} ms  ({} rounds)",
                    c.algorithm, c.generator, c.n, c.executor, c.best_ms, c.mean_ms, c.rounds
                );
            }
        }
    }
    // Perf-regression tripwire (CI): the parallel executor may lose at
    // most PCT percent to sequential on any cell timed on both. Runs
    // after the report is written so a trip still leaves the evidence.
    if let Some(pct) = flag_value(args, "--tripwire") {
        let pct: f64 = pct.parse().unwrap_or_else(|_| {
            eprintln!("error: --tripwire expects a percentage, got `{pct}`");
            std::process::exit(2);
        });
        match bench_engine::tripwire(&report, pct) {
            Ok(lines) => {
                for line in lines {
                    eprintln!("{line}");
                }
            }
            Err(message) => {
                eprintln!("PERF REGRESSION: {message}");
                std::process::exit(1);
            }
        }
    }
}

/// Rejects unknown or value-less `exp fuzz` options up front.
fn validate_fuzz_args(args: &[String]) {
    const VALUED: [&str; 9] = [
        "--cases",
        "--master-seed",
        "--algorithms",
        "--generators",
        "--sizes",
        "--seed",
        "--policy",
        "--threads",
        "--param",
    ];
    if let Err(e) = cli::validate_flags(args, &VALUED, &["--exact"]) {
        eprintln!("error: {e}");
        eprintln!(
            "known options: --cases N, --master-seed S, --algorithms a,b, \
             --generators g,h, --sizes n,m, --exact (with --seed X, \
             --policy full|completions|none, --threads T, --param algo:key=value)"
        );
        std::process::exit(2);
    }
}

/// The `exp fuzz` subcommand: seeded differential verification of the
/// fast engine against the `localavg_core::check` oracle (DESIGN.md §8).
fn run_fuzz(args: &[String]) {
    validate_fuzz_args(args);
    let mut spec = fuzz::FuzzSpec::default();
    spec.cases = parse_usize(args, "--cases", spec.cases);
    spec.master_seed = parse_usize(args, "--master-seed", spec.master_seed as usize) as u64;
    if let Some(algos) = flag_list(args, "--algorithms") {
        spec.algorithms = algos;
    }
    if let Some(gens) = flag_list(args, "--generators") {
        spec.generators = gens;
    }
    if let Some(sizes) = parse_sizes(args) {
        spec.sizes = sizes;
    }
    // The pinned-cell flags only make sense under --exact: a sampled run
    // silently ignoring them would report cells the user did not ask for.
    let exact = args.iter().any(|a| a == "--exact");
    if !exact {
        for flag in ["--seed", "--policy", "--threads", "--param"] {
            if args.iter().any(|a| a == flag) {
                eprintln!("error: {flag} requires --exact (it pins one replay cell)");
                std::process::exit(2);
            }
        }
    } else {
        let overrides = parse_params(args);
        if let Some(other) = overrides
            .iter()
            .find(|p| !spec.algorithms.contains(&p.algorithm))
        {
            eprintln!(
                "error: --param {}:{}={} names an algorithm outside --algorithms",
                other.algorithm, other.key, other.value
            );
            std::process::exit(2);
        }
        spec.exact = Some(fuzz::ExactCell {
            seed: parse_usize(args, "--seed", 0) as u64,
            policy: cli::parse_policy(args).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            }),
            threads: parse_usize(args, "--threads", 0),
            params: overrides.into_iter().map(|p| (p.key, p.value)).collect(),
        });
    }
    let report = fuzz::run(&spec).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("hint: `exp sweep --list-generators` and `exp --list` print the registries");
        std::process::exit(2);
    });
    println!(
        "fuzz: {} cells across {} algorithms × {} families (master seed {})",
        report.cases,
        report.per_algorithm.len(),
        report.per_generator.len(),
        spec.master_seed
    );
    println!(
        "      {} brute-force-checked, {} mutation-checked",
        report.brute_checked, report.mutations_checked
    );
    match report.failure {
        None => println!("all differential checks passed"),
        Some(f) => {
            eprintln!("FAILURE: {}", f.message);
            eprintln!("  sampled at {}", f.original);
            eprintln!("  shrunk to  {}", f.shrunk);
            // --exact pins every axis, so this command replays the
            // shrunk cell verbatim (the master seed still selects the
            // graph instance). The flag string is rendered from the
            // cell's canonical key — the same code path the serve
            // cache addresses results by.
            eprintln!(
                "  replay: exp fuzz --exact {}",
                f.shrunk
                    .key()
                    .replay_flags(spec.master_seed, f.shrunk.threads)
            );
            std::process::exit(1);
        }
    }
}

/// Rejects unknown or value-less `exp serve` options up front.
fn validate_serve_args(args: &[String]) {
    const VALUED: [&str; 7] = [
        "--host",
        "--port",
        "--threads",
        "--cache-capacity",
        "--queue-capacity",
        "--master-seed",
        "--port-file",
    ];
    if let Err(e) = cli::validate_flags(args, &VALUED, &[]) {
        eprintln!("error: {e}");
        eprintln!(
            "known options: --host H, --port P (0 = ephemeral), --threads N (0 = auto), \
             --cache-capacity C, --queue-capacity Q, --master-seed S, --port-file FILE"
        );
        std::process::exit(2);
    }
}

/// The `exp serve` subcommand: run the result daemon until a client
/// sends `{"op": "shutdown"}` (DESIGN.md §9).
fn run_serve(args: &[String]) {
    validate_serve_args(args);
    let mut cfg = serve::ServeConfig::default();
    if let Some(host) = flag_value(args, "--host") {
        cfg.host = host;
    }
    let port = parse_usize(args, "--port", 0);
    cfg.port = u16::try_from(port).unwrap_or_else(|_| {
        eprintln!("error: --port expects 0..=65535, got {port}");
        std::process::exit(2);
    });
    // `--threads 0` (and the flag's absence) mean "all available
    // cores", mirroring `exp sweep`.
    cfg.threads = cli::resolve_threads(parse_usize(args, "--threads", 0));
    cfg.cache_capacity = parse_usize(args, "--cache-capacity", cfg.cache_capacity);
    cfg.queue_capacity = parse_usize(args, "--queue-capacity", cfg.queue_capacity);
    cfg.master_seed = parse_usize(args, "--master-seed", 0) as u64;
    let port_file = flag_value(args, "--port-file");
    let threads = cfg.threads;
    let master_seed = cfg.master_seed;
    let outcome = serve::run(&cfg, |addr| {
        eprintln!(
            "exp serve: listening on {addr} ({threads} worker(s), master seed {master_seed})"
        );
        if let Some(path) = &port_file {
            // CI and scripts read the bound (possibly ephemeral)
            // address from here instead of parsing stderr.
            std::fs::write(path, format!("{addr}\n")).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            });
        }
    });
    if let Err(e) = outcome {
        eprintln!("error: cannot serve on {}:{}: {e}", cfg.host, cfg.port);
        std::process::exit(1);
    }
    eprintln!("exp serve: shut down cleanly");
}

/// Rejects unknown or value-less `exp submit` options up front.
fn validate_submit_args(args: &[String]) {
    const VALUED: [&str; 4] = ["--addr", "--file", "--scale", "--out"];
    if let Err(e) = cli::validate_flags(args, &VALUED, &["--stats", "--shutdown"]) {
        eprintln!("error: {e}");
        eprintln!(
            "known options: --addr HOST:PORT, --scale quick|full, --file BATCH.jsonl \
             (default: stdin), --out FILE, --stats, --shutdown"
        );
        std::process::exit(2);
    }
}

/// Parses a batch of cell objects, one JSON object per line.
fn parse_batch(source: &str, text: &str) -> Vec<CellKey> {
    let mut cells = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = Json::parse(line)
            .map_err(|e| e.to_string())
            .and_then(|v| parse_cell(&v));
        match parsed {
            Ok(key) => cells.push(key),
            Err(e) => {
                eprintln!("error: {source}:{}: {e}", lineno + 1);
                std::process::exit(2);
            }
        }
    }
    cells
}

/// The `exp submit` subcommand: stream a batch of cells through a
/// running `exp serve` daemon.
fn run_submit(args: &[String]) {
    validate_submit_args(args);
    let Some(addr_text) = flag_value(args, "--addr") else {
        eprintln!("error: --addr HOST:PORT is required (e.g. --addr $(cat port.txt))");
        std::process::exit(2);
    };
    let addr: SocketAddr = addr_text.trim().parse().unwrap_or_else(|e| {
        eprintln!("error: --addr `{addr_text}`: {e}");
        std::process::exit(2);
    });
    let want_stats = args.iter().any(|a| a == "--stats");
    let want_shutdown = args.iter().any(|a| a == "--shutdown");

    // Assemble the batch: --scale expands the default sweep grid,
    // --file reads cell objects line by line, bare `submit` reads the
    // same format from stdin (unless only --stats/--shutdown is asked).
    let cells: Vec<CellKey> = if flag_value(args, "--scale").is_some() {
        if flag_value(args, "--file").is_some() {
            eprintln!("error: --scale and --file are mutually exclusive");
            std::process::exit(2);
        }
        let spec = sweep::SweepSpec::for_scale(parse_scale(args));
        let expanded = spec.cells().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        expanded.iter().map(|c| c.key()).collect()
    } else if let Some(path) = flag_value(args, "--file") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_batch(&path, &text)
    } else if want_stats || want_shutdown {
        Vec::new()
    } else {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot read stdin: {e}");
                std::process::exit(2);
            });
        parse_batch("<stdin>", &text)
    };

    let mut client = serve::Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let mut batch_errors = 0usize;
    if !cells.is_empty() {
        let start = Instant::now();
        let outcome = client.submit(&cells).unwrap_or_else(|e| {
            eprintln!("error: submit failed: {e}");
            std::process::exit(1);
        });
        let elapsed = start.elapsed();
        batch_errors = outcome.errors;
        let body = outcome.lines.join("\n") + "\n";
        match flag_value(args, "--out") {
            None => print!("{body}"),
            Some(out) => {
                std::fs::write(&out, &body).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {out}: {e}");
                    std::process::exit(1);
                });
                eprintln!("wrote {out}");
            }
        }
        eprintln!(
            "submit: {} cells in {:.1} ms ({} error(s))",
            outcome.cells,
            elapsed.as_secs_f64() * 1e3,
            outcome.errors
        );
    }
    if want_stats {
        let stats = client.stats().unwrap_or_else(|e| {
            eprintln!("error: stats failed: {e}");
            std::process::exit(1);
        });
        println!("{}", serve::protocol::stats_line(&stats));
    }
    if want_shutdown {
        client.shutdown().unwrap_or_else(|e| {
            eprintln!("error: shutdown failed: {e}");
            std::process::exit(1);
        });
        eprintln!("submit: server acknowledged shutdown");
    }
    if batch_errors > 0 {
        std::process::exit(1);
    }
}

/// Rejects an unrecognized leading word with a closest-match suggestion
/// (`exp serv` → "did you mean `serve`?") instead of silently falling
/// through to the run-every-experiment default.
fn validate_import_args(args: &[String]) {
    const VALUED: [&str; 2] = ["--in", "--out"];
    if let Err(e) = cli::validate_flags(args, &VALUED, &[]) {
        eprintln!("error: {e}");
        eprintln!("known options: --in EDGELIST.txt, --out FILE.csr");
        std::process::exit(2);
    }
}

/// The `exp import` subcommand: read a SNAP-style whitespace edge-list
/// text file, normalize it (dense sorted-id remap, self-loops dropped,
/// duplicate orientations collapsed), and persist the result as a
/// `localavg-csr/v1` file ready for `--graph-file`.
fn run_import(args: &[String]) {
    validate_import_args(args);
    let Some(input) = flag_value(args, "--in") else {
        eprintln!("error: --in EDGELIST.txt is required");
        std::process::exit(2);
    };
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("error: --out FILE is required");
        std::process::exit(2);
    };
    let parse_start = Instant::now();
    let imported = localavg_graph::io::import_edge_list_from_path(&input).unwrap_or_else(|e| {
        eprintln!("error: cannot import {input}: {e}");
        std::process::exit(1);
    });
    let parse_ms = parse_start.elapsed().as_secs_f64() * 1e3;
    let g = &imported.graph;
    let write_start = Instant::now();
    let written = localavg_graph::io::write_graph_to_path(&out, g).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    let write_ms = write_start.elapsed().as_secs_f64() * 1e3;
    let hash = localavg_graph::io::content_hash(g);
    println!("import: {input} -> {out}");
    println!(
        "  instance   nodes {} edges {} min_degree {} max_degree {}{}",
        g.n(),
        g.m(),
        g.min_degree(),
        g.degrees().max().unwrap_or(0),
        if localavg_graph::analysis::is_forest(g) {
            "   (forest: `*/tree-rc` in domain)"
        } else {
            ""
        }
    );
    println!(
        "  dropped    {} self-loop(s), {} duplicate edge line(s), {} comment/blank line(s)",
        imported.self_loops, imported.duplicates, imported.comments
    );
    println!(
        "  cost       parse {parse_ms:.1} ms, write {write_ms:.1} ms, {written} bytes on disk"
    );
    println!(
        "  family     {}   (use: exp sweep --graph-file {out})",
        localavg_bench::cell::file_family(hash)
    );
}

fn reject_unknown_subcommand(args: &[String]) {
    const SUBCOMMANDS: [&str; 7] = [
        "sweep",
        "gen",
        "import",
        "bench-engine",
        "fuzz",
        "serve",
        "submit",
    ];
    let Some(first) = args.first() else { return };
    // Flags, the `quick` scale word, and experiment ids (`e1`..`e17`,
    // matched loosely as e-words, validated later) keep the historical
    // fall-through behaviour.
    if first.starts_with('-') || first == "quick" || first.starts_with('e') {
        return;
    }
    eprint!("error: unknown subcommand `{first}`");
    match closest_match(SUBCOMMANDS.iter().copied(), first) {
        Some(close) => eprintln!(" — did you mean `{close}`?"),
        None => eprintln!(),
    }
    eprintln!(
        "known subcommands: {} (or an experiment id e1..e17, `quick`, `--list`, `--algo`)",
        SUBCOMMANDS.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("sweep") {
        run_sweep(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("gen") {
        run_gen(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("import") {
        run_import(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench-engine") {
        run_bench_engine(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        run_fuzz(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        run_serve(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("submit") {
        run_submit(&args[1..]);
        return;
    }
    reject_unknown_subcommand(&args);
    if args.iter().any(|a| a == "--list") {
        print_algo_list(parse_problem(&args));
        return;
    }
    if let Some(name) = flag_value(&args, "--algo") {
        run_single_algo(&args, &name);
        return;
    }

    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let pick: Option<&str> = args.iter().find(|a| a.starts_with('e')).map(|s| s.as_str());

    let tables: Vec<Table> = match pick {
        Some(id) => match experiments::by_id(id, scale) {
            Some(t) => vec![t],
            None => {
                eprintln!("unknown experiment id: {id} (e1..e17)");
                std::process::exit(2);
            }
        },
        None => experiments::all(scale),
    };
    for table in tables {
        println!("{table}");
    }
}
