//! Experiment runner, sweep driver, and registry-driven algorithm driver.
//!
//! ```text
//! cargo run --release -p localavg-bench --bin exp              # all experiments, full scale
//! cargo run --release -p localavg-bench --bin exp -- quick     # smoke scale
//! cargo run --release -p localavg-bench --bin exp -- e9        # one experiment
//! cargo run --release -p localavg-bench --bin exp -- --list    # list registered algorithms
//! cargo run --release -p localavg-bench --bin exp -- --algo mis/luby --n 512 --d 8 --seed 3
//! cargo run --release -p localavg-bench --bin exp -- sweep --scale quick --threads 8 --out out.json
//! ```
//!
//! `--algo` runs a single algorithm (looked up in the string registry) on
//! a random d-regular graph and prints its verified complexity report;
//! unknown names fail with a closest-match suggestion.
//!
//! `sweep` runs the sharded parallel sweep engine (DESIGN.md §6) over a
//! grid of registry algorithms × named graph families × sizes × seeds and
//! emits machine-readable JSON or CSV; output bytes are independent of
//! `--threads`.

use localavg_bench::experiments::{self, Scale};
use localavg_bench::{emit, sweep, Table};
use localavg_core::algo::registry;
use localavg_graph::{gen, rng::Rng};

fn print_algo_list() {
    let mut t = Table::new(
        "Registered algorithms (`--algo <name>` runs one)",
        &["name", "problem", "deterministic", "domain"],
    );
    for a in registry().iter() {
        let domain = match a.problem().min_degree() {
            0 => "any graph".to_string(),
            d => format!("min degree ≥ {d}"),
        };
        t.row(vec![
            a.name().to_string(),
            a.problem().label().to_string(),
            a.deterministic().to_string(),
            domain,
        ]);
    }
    println!("{t}");
}

/// Parses `--flag value` style options; returns (value, consumed).
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> usize {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects an integer, got `{v}`");
            std::process::exit(2);
        }),
    }
}

fn run_single_algo(args: &[String], name: &str) {
    let Some(algo) = registry().get(name) else {
        eprint!("error: unknown algorithm `{name}`");
        match registry().suggest(name) {
            Some(close) => eprintln!(" — did you mean `{close}`?"),
            None => eprintln!(),
        }
        eprintln!("hint: `--list` prints every registered algorithm");
        std::process::exit(2);
    };
    let n = parse_usize(args, "--n", 256);
    let d = parse_usize(args, "--d", 4);
    let seed = parse_usize(args, "--seed", 1) as u64;
    if algo.problem().min_degree() > d {
        eprintln!(
            "error: {} requires min degree {} (got --d {d})",
            algo.name(),
            algo.problem().min_degree()
        );
        std::process::exit(2);
    }
    let mut rng = Rng::seed_from(seed ^ 0xD15EA5E);
    let g = gen::random_regular(n, d, &mut rng).unwrap_or_else(|e| {
        eprintln!("error: cannot build a {d}-regular graph on {n} nodes: {e:?}");
        std::process::exit(2);
    });
    println!(
        "{} ({}) on a random {d}-regular graph, n={n}, seed={seed}",
        algo.name(),
        algo.problem()
    );
    let run = algo.run(&g, seed);
    match run.verify(&g) {
        Ok(()) => println!("output verified: valid {}", algo.problem()),
        Err(e) => {
            eprintln!("OUTPUT INVALID: {e}");
            std::process::exit(1);
        }
    }
    let rep = run.report(&g);
    println!(
        "node-averaged (AVG_V)            : {:.2}",
        rep.node_averaged
    );
    println!(
        "edge-averaged (AVG_E)            : {:.2}",
        rep.edge_averaged
    );
    println!(
        "edge-averaged (one endpoint, fn.2): {:.2}",
        rep.edge_averaged_one_endpoint
    );
    println!("worst node completion            : {}", rep.node_worst);
    println!("total rounds (worst case)        : {}", rep.rounds);
    println!(
        "termination-time node average    : {:.2}",
        rep.node_averaged_termination
    );
    println!(
        "CONGEST audit: peak message size = {} bits",
        run.transcript.peak_message_bits()
    );
}

/// Parses a comma-separated `--flag a,b,c` list, if present.
fn flag_list(args: &[String], flag: &str) -> Option<Vec<String>> {
    flag_value(args, flag).map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
}

fn parse_scale(args: &[String]) -> Scale {
    match flag_value(args, "--scale").as_deref() {
        None | Some("quick") => Scale::Quick,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("error: --scale expects `quick` or `full`, got `{other}`");
            std::process::exit(2);
        }
    }
}

/// Rejects unknown or value-less `exp sweep` options up front: in a
/// measurement pipeline a silently-dropped typo (`--size` for `--sizes`)
/// would emit results for a different grid than the user asked for.
fn validate_sweep_args(args: &[String]) {
    const VALUED: [&str; 9] = [
        "--scale",
        "--threads",
        "--out",
        "--format",
        "--algorithms",
        "--generators",
        "--sizes",
        "--seeds",
        "--master-seed",
    ];
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--list-generators" {
            i += 1;
        } else if VALUED.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("error: {a} expects a value");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("error: unknown sweep option `{a}`");
            eprintln!(
                "known options: --scale quick|full, --threads N, --out FILE, --format json|csv, \
                 --algorithms a,b, --generators g,h, --sizes n,m, --seeds K, --master-seed S, \
                 --list-generators"
            );
            std::process::exit(2);
        }
    }
}

/// The `exp sweep` subcommand: grid → sharded run → JSON/CSV.
fn run_sweep(args: &[String]) {
    validate_sweep_args(args);
    if args.iter().any(|a| a == "--list-generators") {
        let mut t = Table::new(
            "Registered graph families (`--generators a,b` selects a subset)",
            &["name", "description"],
        );
        for g in gen::registry().iter() {
            t.row(vec![g.name().to_string(), g.description().to_string()]);
        }
        println!("{t}");
        return;
    }

    let mut spec = sweep::SweepSpec::for_scale(parse_scale(args));
    if let Some(algos) = flag_list(args, "--algorithms") {
        spec.algorithms = algos;
    }
    if let Some(gens) = flag_list(args, "--generators") {
        spec.generators = gens;
    }
    if let Some(sizes) = flag_list(args, "--sizes") {
        spec.sizes = sizes
            .iter()
            .map(|s| {
                s.parse().unwrap_or_else(|_| {
                    eprintln!("error: --sizes expects integers, got `{s}`");
                    std::process::exit(2);
                })
            })
            .collect();
    }
    spec.seeds = parse_usize(args, "--seeds", spec.seeds as usize) as u64;
    spec.master_seed = parse_usize(args, "--master-seed", spec.master_seed as usize) as u64;
    let threads = parse_usize(
        args,
        "--threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    let format = flag_value(args, "--format").unwrap_or_else(|| "json".to_string());
    if format != "json" && format != "csv" {
        eprintln!("error: --format expects `json` or `csv`, got `{format}`");
        std::process::exit(2);
    }

    let report = sweep::run(&spec, threads).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("hint: `exp sweep --list-generators` and `exp --list` print the registries");
        std::process::exit(2);
    });

    match flag_value(args, "--out") {
        None => {
            // No --out: machine output goes to stdout, pipeable.
            if format == "json" {
                print!("{}", emit::to_json(&report));
            } else {
                print!("{}", emit::cells_csv(&report));
            }
        }
        Some(out) => {
            let write = |path: &str, data: &str| {
                std::fs::write(path, data).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                });
                println!("wrote {path}");
            };
            if format == "json" {
                write(&out, &emit::to_json(&report));
            } else {
                write(&out, &emit::cells_csv(&report));
                let groups_path = match out.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}-groups.{ext}"),
                    None => format!("{out}-groups"),
                };
                write(&groups_path, &emit::groups_csv(&report));
            }
            println!(
                "{} cells, {} groups, {threads} thread(s)\n",
                report.cells.len(),
                report.groups.len()
            );
            println!("{}", emit::groups_table(&report));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("sweep") {
        run_sweep(&args[1..]);
        return;
    }
    if args.iter().any(|a| a == "--list") {
        print_algo_list();
        return;
    }
    if let Some(name) = flag_value(&args, "--algo") {
        run_single_algo(&args, &name);
        return;
    }

    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let pick: Option<&str> = args.iter().find(|a| a.starts_with('e')).map(|s| s.as_str());

    let tables: Vec<Table> = match pick {
        Some(id) => match experiments::by_id(id, scale) {
            Some(t) => vec![t],
            None => {
                eprintln!("unknown experiment id: {id} (e1..e17)");
                std::process::exit(2);
            }
        },
        None => experiments::all(scale),
    };
    for table in tables {
        println!("{table}");
    }
}
