//! Experiment runner: regenerates every table/figure-equivalent.
//!
//! ```text
//! cargo run --release -p localavg-bench --bin exp            # all, full scale
//! cargo run --release -p localavg-bench --bin exp -- quick   # smoke scale
//! cargo run --release -p localavg-bench --bin exp -- e9      # one experiment
//! ```

use localavg_bench::experiments::{self, Scale};
use localavg_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let pick: Option<&str> = args.iter().find(|a| a.starts_with('e')).map(|s| s.as_str());

    let tables: Vec<Table> = match pick {
        Some("e1") => vec![experiments::e1_figure1(scale)],
        Some("e2") => vec![experiments::e2_two_two_ruling(scale)],
        Some("e3") => vec![experiments::e3_det_ruling(scale)],
        Some("e4") => vec![experiments::e4_luby_matching(scale)],
        Some("e5") => vec![experiments::e5_det_matching(scale)],
        Some("e6") => vec![experiments::e6_mis_upper(scale)],
        Some("e7") => vec![experiments::e7_det_orientation(scale)],
        Some("e8") => vec![experiments::e8_rand_orientation(scale)],
        Some("e9") => vec![experiments::e9_mis_lower_bound(scale)],
        Some("e10") => vec![experiments::e10_tree_mis(scale)],
        Some("e11") => vec![experiments::e11_matching_lower_bound(scale)],
        Some("e12") => vec![experiments::e12_isomorphism(scale)],
        Some("e13") => vec![experiments::e13_lift_statistics(scale)],
        Some("e14") => vec![experiments::e14_appendix_a(scale)],
        Some("e15") => vec![experiments::e15_coloring(scale)],
        Some("e16") => vec![experiments::e16_footnote2(scale)],
        Some(other) => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
        None => experiments::all(scale),
    };
    for table in tables {
        println!("{table}");
    }
}
