//! Experiment runner and registry-driven algorithm driver.
//!
//! ```text
//! cargo run --release -p localavg-bench --bin exp              # all experiments, full scale
//! cargo run --release -p localavg-bench --bin exp -- quick     # smoke scale
//! cargo run --release -p localavg-bench --bin exp -- e9        # one experiment
//! cargo run --release -p localavg-bench --bin exp -- --list    # list registered algorithms
//! cargo run --release -p localavg-bench --bin exp -- --algo mis/luby --n 512 --d 8 --seed 3
//! ```
//!
//! `--algo` runs a single algorithm (looked up in the string registry) on
//! a random d-regular graph and prints its verified complexity report;
//! unknown names fail with a closest-match suggestion.

use localavg_bench::experiments::{self, Scale};
use localavg_bench::Table;
use localavg_core::algo::registry;
use localavg_graph::{gen, rng::Rng};

fn print_algo_list() {
    let mut t = Table::new(
        "Registered algorithms (`--algo <name>` runs one)",
        &["name", "problem", "deterministic", "domain"],
    );
    for a in registry().iter() {
        let domain = match a.problem().min_degree() {
            0 => "any graph".to_string(),
            d => format!("min degree ≥ {d}"),
        };
        t.row(vec![
            a.name().to_string(),
            a.problem().label().to_string(),
            a.deterministic().to_string(),
            domain,
        ]);
    }
    println!("{t}");
}

/// Parses `--flag value` style options; returns (value, consumed).
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> usize {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects an integer, got `{v}`");
            std::process::exit(2);
        }),
    }
}

fn run_single_algo(args: &[String], name: &str) {
    let Some(algo) = registry().get(name) else {
        eprint!("error: unknown algorithm `{name}`");
        match registry().suggest(name) {
            Some(close) => eprintln!(" — did you mean `{close}`?"),
            None => eprintln!(),
        }
        eprintln!("hint: `--list` prints every registered algorithm");
        std::process::exit(2);
    };
    let n = parse_usize(args, "--n", 256);
    let d = parse_usize(args, "--d", 4);
    let seed = parse_usize(args, "--seed", 1) as u64;
    if algo.problem().min_degree() > d {
        eprintln!(
            "error: {} requires min degree {} (got --d {d})",
            algo.name(),
            algo.problem().min_degree()
        );
        std::process::exit(2);
    }
    let mut rng = Rng::seed_from(seed ^ 0xD15EA5E);
    let g = gen::random_regular(n, d, &mut rng).unwrap_or_else(|e| {
        eprintln!("error: cannot build a {d}-regular graph on {n} nodes: {e:?}");
        std::process::exit(2);
    });
    println!(
        "{} ({}) on a random {d}-regular graph, n={n}, seed={seed}",
        algo.name(),
        algo.problem()
    );
    let run = algo.run(&g, seed);
    match run.verify(&g) {
        Ok(()) => println!("output verified: valid {}", algo.problem()),
        Err(e) => {
            eprintln!("OUTPUT INVALID: {e}");
            std::process::exit(1);
        }
    }
    let rep = run.report(&g);
    println!(
        "node-averaged (AVG_V)            : {:.2}",
        rep.node_averaged
    );
    println!(
        "edge-averaged (AVG_E)            : {:.2}",
        rep.edge_averaged
    );
    println!(
        "edge-averaged (one endpoint, fn.2): {:.2}",
        rep.edge_averaged_one_endpoint
    );
    println!("worst node completion            : {}", rep.node_worst);
    println!("total rounds (worst case)        : {}", rep.rounds);
    println!(
        "termination-time node average    : {:.2}",
        rep.node_averaged_termination
    );
    println!(
        "CONGEST audit: peak message size = {} bits",
        run.transcript.peak_message_bits()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        print_algo_list();
        return;
    }
    if let Some(name) = flag_value(&args, "--algo") {
        run_single_algo(&args, &name);
        return;
    }

    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let pick: Option<&str> = args.iter().find(|a| a.starts_with('e')).map(|s| s.as_str());

    let tables: Vec<Table> = match pick {
        Some(id) => match experiments::by_id(id, scale) {
            Some(t) => vec![t],
            None => {
                eprintln!("unknown experiment id: {id} (e1..e17)");
                std::process::exit(2);
            }
        },
        None => experiments::all(scale),
    };
    for table in tables {
        println!("{table}");
    }
}
