//! Criterion benches: one group per experiment (quick scale) plus engine
//! micro-benchmarks. `cargo bench --workspace` regenerates timing for every
//! table/figure-equivalent of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use localavg_bench::experiments::{self, Scale};
use localavg_core::{matching, mis, ruling};
use localavg_graph::{gen, rng::Rng};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    macro_rules! exp {
        ($name:literal, $f:path) => {
            group.bench_function($name, |b| {
                b.iter(|| std::hint::black_box($f(Scale::Quick)))
            });
        };
    }
    exp!("e1_figure1", experiments::e1_figure1);
    exp!("e2_two_two_ruling", experiments::e2_two_two_ruling);
    exp!("e3_det_ruling", experiments::e3_det_ruling);
    exp!("e4_luby_matching", experiments::e4_luby_matching);
    exp!("e5_det_matching", experiments::e5_det_matching);
    exp!("e6_mis_upper", experiments::e6_mis_upper);
    exp!("e7_det_orientation", experiments::e7_det_orientation);
    exp!("e8_rand_orientation", experiments::e8_rand_orientation);
    exp!("e9_mis_lower_bound", experiments::e9_mis_lower_bound);
    exp!("e10_tree_mis", experiments::e10_tree_mis);
    exp!("e11_matching_lower_bound", experiments::e11_matching_lower_bound);
    exp!("e12_isomorphism", experiments::e12_isomorphism);
    exp!("e13_lift_statistics", experiments::e13_lift_statistics);
    exp!("e14_appendix_a", experiments::e14_appendix_a);
    exp!("e15_coloring", experiments::e15_coloring);
    exp!("e16_footnote2", experiments::e16_footnote2);
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    let mut rng = Rng::seed_from(1);
    let g = gen::random_regular(2048, 8, &mut rng).expect("graph");
    group.bench_function("luby_mis_2048x8", |b| {
        b.iter(|| std::hint::black_box(mis::luby(&g, 7)))
    });
    group.bench_function("two_two_ruling_2048x8", |b| {
        b.iter(|| std::hint::black_box(ruling::two_two(&g, 7)))
    });
    group.bench_function("luby_matching_2048x8", |b| {
        b.iter(|| std::hint::black_box(matching::luby(&g, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments, bench_engine);
criterion_main!(benches);
