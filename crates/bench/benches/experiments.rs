//! Dependency-free bench harness (`harness = false`): times every
//! quick-scale experiment, registry-driven engine micro-benchmarks, and
//! the sweep engine at several thread counts with `std::time::Instant`.
//! The container has no Criterion, so this prints a simple min/mean
//! table instead.
//!
//! ```text
//! cargo bench -p localavg-bench
//! ```

use localavg_bench::experiments::{self, Scale};
use localavg_bench::sweep;
use localavg_core::algo::{registry, RunSpec};
use localavg_graph::{gen, rng::Rng};
use std::time::Instant;

/// Times `f` over `iters` iterations; returns (min, mean) in seconds.
fn time_it<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        let dt = start.elapsed().as_secs_f64();
        min = min.min(dt);
        total += dt;
    }
    (min, total / iters as f64)
}

fn report(name: &str, iters: usize, f: impl FnMut() -> localavg_bench::Table) {
    let (min, mean) = time_it(iters, f);
    println!(
        "{name:<28} min {:>9.3} ms   mean {:>9.3} ms",
        min * 1e3,
        mean * 1e3
    );
}

fn main() {
    println!("== experiments (quick scale, 3 iterations each) ==");
    let ids: Vec<String> = (1..=17).map(|i| format!("e{i}")).collect();
    for id in &ids {
        report(id, 3, || {
            experiments::by_id(id, Scale::Quick).expect("known experiment id")
        });
    }

    println!("\n== engine micro-benchmarks (registry-driven, 2048x8) ==");
    let mut rng = Rng::seed_from(1);
    let g = gen::random_regular(2048, 8, &mut rng).expect("graph");
    for name in ["mis/luby", "ruling/two-two", "matching/luby"] {
        let algo = registry().get(name).expect("registered");
        let (min, mean) = time_it(5, || algo.execute(&g, &RunSpec::new(7)));
        println!(
            "{name:<28} min {:>9.3} ms   mean {:>9.3} ms",
            min * 1e3,
            mean * 1e3
        );
    }

    println!("\n== sweep engine (quick grid, by thread count) ==");
    let spec = sweep::SweepSpec::for_scale(Scale::Quick);
    for threads in [1usize, 2, 4, 8] {
        let (min, mean) = time_it(3, || sweep::run(&spec, threads).expect("sweep runs"));
        println!(
            "sweep --threads {threads:<12} min {:>9.3} ms   mean {:>9.3} ms",
            min * 1e3,
            mean * 1e3
        );
    }
}
