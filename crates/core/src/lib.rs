//! # localavg-core — the paper's algorithms and complexity measures
//!
//! Reference implementations of every algorithm in Balliu, Ghaffari, Kuhn,
//! Olivetti, *Node and Edge Averaged Complexities of Local Graph Problems*
//! (PODC 2022), together with the averaged complexity measures of its
//! Definition 1 and Appendix A.
//!
//! | Module | Paper result |
//! |---|---|
//! | [`algo`] | Unified [`algo::Algorithm`] trait, [`algo::AlgoRun`] result type, and the string-keyed [`algo::registry`] over every implementation |
//! | [`metrics`] | Definition 1 (`AVG_V`, `AVG_E`, footnote-2 convention), Appendix A (weighted, expected, worst case) |
//! | [`check`] | Independent oracle: naive reference validators, brute-force optima for tiny instances, and a second Definition 1 accounting (what `exp fuzz` cross-checks against) |
//! | [`mis`] | §3.1: Luby's MIS, degree-guided MIS, deterministic greedy |
//! | [`ruling`] | Theorem 2 ((2,2)-ruling set, node-avg O(1)) and Theorem 3 (deterministic (2,β)-ruling sets, node-avg O(log\* n)) |
//! | [`matching`] | Theorem 4 (randomized maximal matching, edge-avg O(1)) and Theorem 5 (deterministic maximal matching) |
//! | [`orientation`] | Theorem 6 (deterministic sinkless orientation, node-avg O(log\* n)) and the randomized \[GS17a\]-style algorithm |
//! | [`coloring`] | §1.2: (Δ+1)-coloring with node-avg O(1); Linial's O(log\* n) coloring |
//! | [`subroutines`] | Cole–Vishkin reduction, Linial color-step fields, log\* helpers |
//!
//! Every algorithm runs on the [`localavg_sim`] engine and returns a
//! transcript whose per-node/per-edge commit rounds feed the metrics.
//!
//! # Example: Theorem 2's separation from MIS, via the unified API
//!
//! ```
//! use localavg_graph::{gen, rng::Rng};
//! use localavg_core::algo::registry;
//!
//! let mut rng = Rng::seed_from(1);
//! let g = gen::random_regular(128, 8, &mut rng).expect("graph");
//!
//! let mis_avg = registry().get("mis/luby").expect("registered")
//!     .run(&g, 7).report(&g).node_averaged;
//! let rs_avg = registry().get("ruling/two-two").expect("registered")
//!     .run(&g, 7).report(&g).node_averaged;
//! // Both are small here; the separation appears on the lower-bound
//! // graphs (see the localavg-lowerbound crate).
//! assert!(mis_avg < 32.0 && rs_avg < 32.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod check;
pub mod coloring;
pub mod matching;
pub mod metrics;
pub mod mis;
pub mod orientation;
pub mod ruling;
pub mod subroutines;
pub mod treerc;

/// Re-exported validators (they live with the graph substrate).
pub mod verify {
    pub use localavg_graph::analysis::{
        is_independent_set, is_matching, is_maximal_independent_set, is_maximal_matching,
        is_proper_coloring, is_ruling_set, is_sinkless_orientation, Orientation,
    };
}
