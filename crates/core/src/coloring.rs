//! Distributed coloring (paper §1.2 context + deterministic subroutines).
//!
//! * [`random_trial`] — the classic (Δ+1)-coloring by random color trials
//!   \[Lub93, Joh99\]: every uncolored node proposes a uniform color from
//!   its remaining palette and keeps it if no neighbor proposed the same.
//!   Every node succeeds with constant probability per attempt, so the
//!   node-averaged complexity is O(1) (§1.2) while the worst case is
//!   Θ(log n) whp — experiment E15 measures the separation.
//! * [`linial`] — Linial's O(log* n)-round coloring with O(Δ² log² Δ)
//!   colors, used as the deterministic symmetry-breaking workhorse by the
//!   ruling-set finisher and available standalone here.

use crate::subroutines::{linial_schedule, LinialStep};
use localavg_graph::{analysis, Graph};
use localavg_sim::prelude::*;

/// Result of a coloring run.
#[derive(Debug, Clone)]
pub struct ColoringRun {
    /// Full execution transcript.
    pub transcript: Transcript<u64, ()>,
    /// The proper coloring produced.
    pub colors: Vec<usize>,
}

impl ColoringRun {
    /// Number of distinct colors used.
    pub fn palette_size(&self) -> usize {
        self.colors
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Total rounds of the run.
    pub fn worst_case(&self) -> Round {
        self.transcript.rounds
    }
}

/// Messages of the random-trial process.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialMsg {
    /// Proposed color this attempt.
    Try(u64),
    /// Sender fixed this color permanently.
    Fixed(u64),
}

impl MessageSize for TrialMsg {
    fn size_bits(&self) -> usize {
        1 + 64
    }
}

/// Tuning parameters of the random-trial coloring (`"coloring/trial"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrialColoringParams {
    /// Extra palette slots beyond the guaranteed Δ+1: a larger palette
    /// lowers the per-attempt conflict probability at the cost of more
    /// colors. The paper's §1.2 algorithm uses 0.
    pub extra_colors: usize,
}

struct RandomTrial {
    forbidden: Vec<bool>,
    proposal: u64,
}

impl RandomTrial {
    fn propose(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<TrialMsg>]) {
        for env in inbox {
            if let TrialMsg::Fixed(c) = env.msg {
                self.forbidden[c as usize] = true;
            }
        }
        let palette: Vec<u64> = (0..self.forbidden.len() as u64)
            .filter(|&c| !self.forbidden[c as usize])
            .collect();
        debug_assert!(!palette.is_empty(), "palette Δ+1 never exhausts");
        self.proposal = *ctx.rng().choose(&palette);
        ctx.broadcast(TrialMsg::Try(self.proposal));
    }

    fn resolve(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<TrialMsg>]) {
        let conflict = inbox.iter().any(|env| match env.msg {
            TrialMsg::Try(c) => c == self.proposal && env.src > ctx.id(),
            TrialMsg::Fixed(c) => c == self.proposal,
        });
        // Also learn colors fixed by neighbors in this window.
        for env in inbox {
            if let TrialMsg::Fixed(c) = env.msg {
                self.forbidden[c as usize] = true;
            }
        }
        if !conflict && !self.forbidden[self.proposal as usize] {
            ctx.commit_node(self.proposal);
            ctx.broadcast(TrialMsg::Fixed(self.proposal));
            ctx.halt();
        }
    }
}

impl Process for RandomTrial {
    type Message = TrialMsg;
    type NodeOutput = u64;
    type EdgeOutput = ();
    type Params = TrialColoringParams;

    const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

    fn init(params: &TrialColoringParams, ctx: &mut Ctx<'_, Self>) -> Self {
        let mut state = RandomTrial {
            forbidden: vec![false; ctx.max_degree() + 1 + params.extra_colors],
            proposal: 0,
        };
        state.propose(ctx, &[]);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<TrialMsg>]) {
        if ctx.round() % 2 == 0 {
            self.propose(ctx, inbox);
        } else {
            self.resolve(ctx, inbox);
        }
    }
}

/// Runs the randomized (Δ+1)-coloring by color trials.
///
/// # Example
///
/// ```
/// use localavg_graph::{analysis, gen};
/// use localavg_core::coloring;
///
/// let g = gen::grid(6, 6);
/// let run = coloring::random_trial(&g, 4);
/// assert!(analysis::is_proper_coloring(&g, &run.colors));
/// assert!(run.colors.iter().all(|&c| c <= g.max_degree()));
/// ```
pub fn random_trial(g: &Graph, seed: u64) -> ColoringRun {
    random_trial_spec(
        g,
        &RunSpec::new(seed),
        &TrialColoringParams::default(),
        &mut Workspace::new(),
    )
}

/// [`random_trial`] under an explicit [`RunSpec`], with tunable
/// parameters and reusable [`Workspace`] arenas.
pub fn random_trial_spec(
    g: &Graph,
    spec: &RunSpec,
    params: &TrialColoringParams,
    ws: &mut Workspace,
) -> ColoringRun {
    let t = spec.run_in::<RandomTrial>(g, params, ws);
    let colors: Vec<usize> = t.node_labels().iter().map(|&c| c as usize).collect();
    debug_assert!(analysis::is_proper_coloring(g, &colors));
    ColoringRun {
        transcript: t,
        colors,
    }
}

/// [`random_trial`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `random_trial_spec(g, &RunSpec::new(seed).with_exec(exec), ..)`")]
pub fn random_trial_exec(g: &Graph, seed: u64, exec: Exec) -> ColoringRun {
    random_trial_spec(
        g,
        &RunSpec::new(seed).with_exec(exec),
        &TrialColoringParams::default(),
        &mut Workspace::new(),
    )
}

/// Messages of the Linial process: bare colors.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorMsg(pub u64);

impl MessageSize for ColorMsg {
    fn size_bits(&self) -> usize {
        64
    }
}

struct LinialColoring {
    color: u64,
    schedule: Vec<LinialStep>,
    idx: usize,
}

impl Process for LinialColoring {
    type Message = ColorMsg;
    type NodeOutput = u64;
    type EdgeOutput = ();
    type Params = ();

    const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

    fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
        let schedule = linial_schedule(ctx.n().max(2) as u64, ctx.max_degree().max(1) as u64);
        let color = ctx.id() as u64;
        if schedule.is_empty() {
            ctx.commit_node(color);
            ctx.halt();
        } else {
            ctx.broadcast(ColorMsg(color));
        }
        LinialColoring {
            color,
            schedule,
            idx: 0,
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<ColorMsg>]) {
        let step = self.schedule[self.idx];
        let nbr: Vec<u64> = inbox.iter().map(|env| env.msg.0).collect();
        self.color = step.reduce(self.color, &nbr);
        self.idx += 1;
        if self.idx == self.schedule.len() {
            ctx.commit_node(self.color);
            ctx.halt();
        } else {
            ctx.broadcast(ColorMsg(self.color));
        }
    }
}

/// Runs Linial's deterministic O(log* n)-round coloring.
///
/// The palette size is O(Δ² log² Δ); the round count equals the length of
/// [`linial_schedule`] — a log*-type schedule all nodes derive from
/// `(n, Δ)`.
pub fn linial(g: &Graph) -> ColoringRun {
    linial_spec(g, &RunSpec::new(0), &mut Workspace::new())
}

/// [`linial`] under an explicit [`RunSpec`] with reusable [`Workspace`]
/// arenas (the seed is ignored — deterministic).
pub fn linial_spec(g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> ColoringRun {
    let t = spec.run_in::<LinialColoring>(g, &(), ws);
    let colors: Vec<usize> = t.node_labels().iter().map(|&c| c as usize).collect();
    debug_assert!(analysis::is_proper_coloring(g, &colors));
    ColoringRun {
        transcript: t,
        colors,
    }
}

/// [`linial`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `linial_spec(g, &RunSpec::new(0).with_exec(exec), ..)`")]
pub fn linial_exec(g: &Graph, exec: Exec) -> ColoringRun {
    linial_spec(g, &RunSpec::new(0).with_exec(exec), &mut Workspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ComplexityReport;
    use localavg_graph::gen;

    #[test]
    fn random_trial_on_standard_graphs() {
        for g in [
            gen::path(30),
            gen::cycle(25),
            gen::complete(9),
            gen::star(13),
            gen::grid(5, 5),
            gen::petersen(),
        ] {
            let delta = g.max_degree();
            let run = random_trial(&g, 6);
            assert!(analysis::is_proper_coloring(&g, &run.colors));
            assert!(run.colors.iter().all(|&c| c <= delta));
        }
    }

    #[test]
    fn random_trial_node_averaged_constant() {
        let mut rng = Rng::seed_from(3);
        let g = gen::random_regular(400, 8, &mut rng).unwrap();
        let run = random_trial(&g, 10);
        let r = ComplexityReport::from_run(&g, &run.transcript);
        assert!(r.node_averaged < 12.0, "node avg {}", r.node_averaged);
    }

    #[test]
    fn linial_on_standard_graphs() {
        for g in [gen::cycle(64), gen::grid(8, 8), gen::petersen()] {
            let run = linial(&g);
            assert!(analysis::is_proper_coloring(&g, &run.colors));
        }
    }

    #[test]
    fn linial_palette_much_smaller_than_n() {
        let mut rng = Rng::seed_from(5);
        let g = gen::random_regular(600, 4, &mut rng).unwrap();
        let run = linial(&g);
        assert!(analysis::is_proper_coloring(&g, &run.colors));
        let max_color = *run.colors.iter().max().unwrap();
        assert!(
            max_color < 600,
            "Linial should beat the trivial id coloring: {max_color}"
        );
        // Round count is a log*-type schedule: tiny.
        assert!(run.worst_case() <= 8);
    }

    #[test]
    fn linial_deterministic() {
        let g = gen::grid(6, 7);
        assert_eq!(linial(&g).colors, linial(&g).colors);
    }

    #[test]
    fn random_trial_extra_colors_widen_the_palette() {
        let mut rng = Rng::seed_from(9);
        let g = gen::random_regular(120, 4, &mut rng).unwrap();
        let run = random_trial_spec(
            &g,
            &RunSpec::new(2),
            &TrialColoringParams { extra_colors: 8 },
            &mut Workspace::new(),
        );
        assert!(analysis::is_proper_coloring(&g, &run.colors));
        // Colors stay within the widened palette Δ+1+extra.
        assert!(run.colors.iter().all(|&c| c <= g.max_degree() + 8));
        // The widened palette changes the run (different proposals).
        let default = random_trial(&g, 2);
        assert_ne!(run.colors, default.colors);
    }

    #[test]
    fn random_trial_empty_graph() {
        let g = Graph::empty(3);
        let run = random_trial(&g, 1);
        assert_eq!(run.colors.len(), 3);
        assert!(run.transcript.node_commit_round.iter().all(|&r| r <= 1));
    }
}
