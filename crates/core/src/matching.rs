//! Maximal matching algorithms (paper §3.2, Theorems 4 and 5).
//!
//! * [`luby`] — **Theorem 4**: mark each edge `{u,v}` with probability
//!   `1/(4(d_u + d_v))`; a marked edge with no other marked incident edge
//!   joins the matching; matched nodes leave; repeat. The paper shows a
//!   constant fraction of the *edges* is removed per iteration, so the
//!   edge-averaged complexity is O(1) while the worst case is O(log n) whp.
//! * [`deterministic`] — **Theorem 5**: per iteration, build the fractional
//!   matching `f_e = 1/(d_u + d_v)`, deterministically round it to an
//!   integral matching carrying a constant fraction of `|E|`, add it, drop
//!   matched nodes, and repeat. Rounding follows the Fischer/AKO technique:
//!   values are powers of two; same-value edges are paired at their
//!   endpoints into paths/cycles, 6-colored by Cole–Vishkin in O(log* n)
//!   rounds, and an independent set of path positions doubles while its
//!   partners zero — preserving node constraints exactly. A local-max-id
//!   fallback guarantees progress even when rounding stalls. (See DESIGN.md
//!   for the substitution notes; the measured per-iteration edge-kill ratio
//!   is reported by experiment E5.)
//! * [`greedy`] — deterministic local-max-edge-id proposal matching
//!   (baseline).
//!
//! Matching is an *edge-labelling* problem: edges commit `true`/`false`,
//! nodes commit nothing, and Definition 1 gives `T_v = max` over incident
//! edge commit times — exactly the accounting the paper's Theorem 4/5
//! statements average.

use crate::subroutines::{ceil_log2, cv_rounds, cv_step, cv_step_root};
use localavg_graph::{analysis, EdgeId, Graph};
use localavg_sim::prelude::*;

/// Result of a matching run.
#[derive(Debug, Clone)]
pub struct MatchingRun {
    /// Full execution transcript (per-edge commit rounds).
    pub transcript: Transcript<(), bool>,
    /// Indicator per edge id: in the matching or not.
    pub in_matching: Vec<bool>,
}

impl MatchingRun {
    /// Total rounds (worst-case complexity of the run).
    pub fn worst_case(&self) -> Round {
        self.transcript.rounds
    }

    /// Number of matched edges.
    pub fn size(&self) -> usize {
        self.in_matching.iter().filter(|&&b| b).count()
    }

    fn from_transcript(g: &Graph, transcript: Transcript<(), bool>) -> Self {
        let in_matching = transcript.edge_labels();
        debug_assert!(
            analysis::is_maximal_matching(g, &in_matching),
            "matching algorithm produced an invalid output"
        );
        MatchingRun {
            transcript,
            in_matching,
        }
    }
}

// ---------------------------------------------------------------------------
// Theorem 4: Luby-style randomized maximal matching
// ---------------------------------------------------------------------------

/// Messages of the randomized matching process.
#[derive(Debug, Clone, PartialEq)]
pub enum LubyMatchMsg {
    /// Residual degree announcement (phase 0).
    Degree(u64),
    /// Mark of the shared edge, drawn by the lower-id endpoint (phase 1).
    Mark(bool),
    /// Number of marked incident edges at the sender (phase 2).
    Count(u64),
    /// The sender got matched and leaves (phase 3).
    Matched,
}

impl MessageSize for LubyMatchMsg {
    fn size_bits(&self) -> usize {
        match self {
            LubyMatchMsg::Degree(_) | LubyMatchMsg::Count(_) => 2 + 64,
            LubyMatchMsg::Mark(_) => 3,
            LubyMatchMsg::Matched => 2,
        }
    }
}

/// Tuning parameters of Theorem 4's matching (`"matching/luby"`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LubyMatchParams {
    /// Per-iteration edge-mark probability numerator: edge `{u,v}` is
    /// marked with probability `mark_factor / (d_u + d_v)`. Theorem 4's
    /// choice `1/(4(d_u + d_v))` is `0.25`; must lie in `(0, 1]`.
    pub mark_factor: f64,
}

impl Default for LubyMatchParams {
    fn default() -> Self {
        LubyMatchParams { mark_factor: 0.25 }
    }
}

/// Theorem 4 process; iteration = 4 rounds
/// (degree, mark, count, decide).
struct LubyMatching {
    nbr_active: Vec<bool>,
    nbr_degree: Vec<u64>,
    edge_marked: Vec<bool>,
    my_marked_count: u64,
    nbr_count: Vec<u64>,
    mark_factor: f64,
}

impl LubyMatching {
    fn active_degree(&self) -> u64 {
        self.nbr_active.iter().filter(|&&a| a).count() as u64
    }

    fn degree_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<LubyMatchMsg>]) {
        for env in inbox {
            if matches!(env.msg, LubyMatchMsg::Matched) {
                self.nbr_active[env.port] = false;
            }
        }
        if self.active_degree() == 0 {
            ctx.halt(); // all incident edges already committed by neighbors
            return;
        }
        ctx.broadcast(LubyMatchMsg::Degree(self.active_degree()));
    }

    fn mark_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<LubyMatchMsg>]) {
        for env in inbox {
            if let LubyMatchMsg::Degree(d) = env.msg {
                self.nbr_degree[env.port] = d;
            }
        }
        self.edge_marked.iter_mut().for_each(|m| *m = false);
        self.my_marked_count = 0;
        let my_degree = self.active_degree();
        for port in ctx.ports() {
            if !self.nbr_active[port] || ctx.neighbor_id(port) < ctx.id() {
                continue; // the lower-id endpoint draws the mark
            }
            let p = self.mark_factor / (my_degree + self.nbr_degree[port]) as f64;
            let marked = ctx.rng().chance(p);
            self.edge_marked[port] = marked;
            if marked {
                self.my_marked_count += 1;
            }
            ctx.send(port, LubyMatchMsg::Mark(marked));
        }
    }

    fn count_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<LubyMatchMsg>]) {
        for env in inbox {
            if let LubyMatchMsg::Mark(m) = env.msg {
                self.edge_marked[env.port] = m;
                if m {
                    self.my_marked_count += 1;
                }
            }
        }
        ctx.broadcast(LubyMatchMsg::Count(self.my_marked_count));
    }

    fn decide_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<LubyMatchMsg>]) {
        for env in inbox {
            if let LubyMatchMsg::Count(c) = env.msg {
                self.nbr_count[env.port] = c;
            }
        }
        if self.my_marked_count != 1 {
            return;
        }
        let port = (0..self.edge_marked.len())
            .find(|&p| self.edge_marked[p])
            .expect("exactly one marked edge");
        if self.nbr_count[port] == 1 {
            // Edge isolated among marked edges on both sides: matched.
            for p in ctx.ports() {
                if self.nbr_active[p] {
                    ctx.commit_edge(p, p == port);
                }
            }
            ctx.broadcast(LubyMatchMsg::Matched);
            ctx.halt();
        }
    }
}

impl Process for LubyMatching {
    type Message = LubyMatchMsg;
    type NodeOutput = ();
    type EdgeOutput = bool;
    type Params = LubyMatchParams;

    const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

    fn init(params: &LubyMatchParams, ctx: &mut Ctx<'_, Self>) -> Self {
        let degree = ctx.degree();
        let mut state = LubyMatching {
            nbr_active: vec![true; degree],
            nbr_degree: vec![0; degree],
            edge_marked: vec![false; degree],
            my_marked_count: 0,
            nbr_count: vec![0; degree],
            mark_factor: params.mark_factor,
        };
        state.degree_phase(ctx, &[]);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<LubyMatchMsg>]) {
        match ctx.round() % 4 {
            0 => self.degree_phase(ctx, inbox),
            1 => self.mark_phase(ctx, inbox),
            2 => self.count_phase(ctx, inbox),
            _ => self.decide_phase(ctx, inbox),
        }
    }
}

/// Runs Theorem 4's randomized maximal matching (CONGEST).
///
/// # Example
///
/// ```
/// use localavg_graph::{analysis, gen, rng::Rng};
/// use localavg_core::matching;
///
/// let mut rng = Rng::seed_from(8);
/// let g = gen::random_regular(60, 4, &mut rng).expect("graph");
/// let run = matching::luby(&g, 21);
/// assert!(analysis::is_maximal_matching(&g, &run.in_matching));
/// ```
pub fn luby(g: &Graph, seed: u64) -> MatchingRun {
    luby_spec(
        g,
        &RunSpec::new(seed),
        &LubyMatchParams::default(),
        &mut Workspace::new(),
    )
}

/// [`luby`] under an explicit [`RunSpec`], with tunable parameters and
/// reusable [`Workspace`] arenas.
pub fn luby_spec(
    g: &Graph,
    spec: &RunSpec,
    params: &LubyMatchParams,
    ws: &mut Workspace,
) -> MatchingRun {
    let t = spec.run_in::<LubyMatching>(g, params, ws);
    MatchingRun::from_transcript(g, t)
}

/// [`luby`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `luby_spec(g, &RunSpec::new(seed).with_exec(exec), ..)`")]
pub fn luby_exec(g: &Graph, seed: u64, exec: Exec) -> MatchingRun {
    luby_spec(
        g,
        &RunSpec::new(seed).with_exec(exec),
        &LubyMatchParams::default(),
        &mut Workspace::new(),
    )
}

// ---------------------------------------------------------------------------
// Greedy baseline: local-max-edge-id proposals
// ---------------------------------------------------------------------------

/// Messages of the greedy matching process.
#[derive(Debug, Clone, PartialEq)]
pub enum GreedyMatchMsg {
    /// Proposal over the sender's local-max active edge.
    Propose,
    /// The sender got matched and leaves.
    Matched,
}

impl MessageSize for GreedyMatchMsg {
    fn size_bits(&self) -> usize {
        1
    }
}

struct GreedyMatching {
    nbr_active: Vec<bool>,
    proposal: Option<usize>,
}

impl GreedyMatching {
    fn propose_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<GreedyMatchMsg>]) {
        for env in inbox {
            if matches!(env.msg, GreedyMatchMsg::Matched) {
                self.nbr_active[env.port] = false;
            }
        }
        self.proposal = ctx
            .ports()
            .filter(|&p| self.nbr_active[p])
            .max_by_key(|&p| ctx.edge_id(p));
        match self.proposal {
            None => ctx.halt(),
            Some(p) => ctx.send(p, GreedyMatchMsg::Propose),
        }
    }

    fn resolve_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<GreedyMatchMsg>]) {
        let my = self.proposal.expect("active node proposed");
        let mutual = inbox
            .iter()
            .any(|env| env.port == my && matches!(env.msg, GreedyMatchMsg::Propose));
        if mutual {
            for p in ctx.ports() {
                if self.nbr_active[p] {
                    ctx.commit_edge(p, p == my);
                }
            }
            ctx.broadcast(GreedyMatchMsg::Matched);
            ctx.halt();
        }
    }
}

impl Process for GreedyMatching {
    type Message = GreedyMatchMsg;
    type NodeOutput = ();
    type EdgeOutput = bool;
    type Params = ();

    const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

    fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
        let mut state = GreedyMatching {
            nbr_active: vec![true; ctx.degree()],
            proposal: None,
        };
        state.propose_phase(ctx, &[]);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<GreedyMatchMsg>]) {
        if ctx.round() % 2 == 0 {
            self.propose_phase(ctx, inbox);
        } else {
            self.resolve_phase(ctx, inbox);
        }
    }
}

/// Runs the deterministic greedy proposal matching (baseline).
pub fn greedy(g: &Graph) -> MatchingRun {
    greedy_spec(g, &RunSpec::new(0), &mut Workspace::new())
}

/// [`greedy`] under an explicit [`RunSpec`] with reusable [`Workspace`]
/// arenas (the seed is ignored — deterministic).
pub fn greedy_spec(g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> MatchingRun {
    let t = spec.run_in::<GreedyMatching>(g, &(), ws);
    MatchingRun::from_transcript(g, t)
}

/// [`greedy`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `greedy_spec(g, &RunSpec::new(0).with_exec(exec), ..)`")]
pub fn greedy_exec(g: &Graph, exec: Exec) -> MatchingRun {
    greedy_spec(g, &RunSpec::new(0).with_exec(exec), &mut Workspace::new())
}

// ---------------------------------------------------------------------------
// Theorem 5: deterministic matching via fractional rounding
// ---------------------------------------------------------------------------

/// Messages of the deterministic matching process.
#[derive(Debug, Clone, PartialEq)]
pub enum DetMatchMsg {
    /// Residual degree announcement at iteration start.
    Degree(u64),
    /// Cole–Vishkin color of the shared edge (sent by the edge's owner).
    CvColor(u64),
    /// Relay by a link node: the final color and edge id of the path
    /// partner that the shared edge is paired with at the sender's side.
    PartnerColor(u64, u64),
    /// The shared edge joined this class's path-independent set.
    MisJoin,
    /// A path-partner of the shared edge (paired at the sender) joined.
    PartnerJoined,
    /// Owner requests doubling of the shared edge.
    WantDouble,
    /// Non-owner grants the doubling.
    Grant,
    /// The shared edge doubled its value.
    Doubled,
    /// The shared edge's value dropped to zero.
    Zeroed,
    /// Fallback proposal over the sender's local-max active edge.
    Propose,
    /// Commit handshake: the sender intends to match the shared edge.
    MatchIntent,
    /// The sender got matched and leaves.
    Matched,
}

impl MessageSize for DetMatchMsg {
    fn size_bits(&self) -> usize {
        match self {
            DetMatchMsg::Degree(_) | DetMatchMsg::CvColor(_) => 4 + 64,
            DetMatchMsg::PartnerColor(..) => 4 + 128,
            _ => 4,
        }
    }
}

/// Fixed schedule of one outer iteration, identical at every node.
#[derive(Debug, Clone, Copy)]
struct DetMatchSchedule {
    /// CV rounds needed to 6-color path structures whose ids are edge ids.
    cv: usize,
    /// Highest value class: values are `2^-k`, k in `1..=k_max`.
    k_max: usize,
    /// Rounds of one class phase.
    class_len: usize,
    /// Rounds of one outer iteration.
    iter_len: usize,
}

impl DetMatchSchedule {
    fn new(n: usize, m: usize, max_degree: usize) -> Self {
        let cv = cv_rounds(m.max(2) as u64);
        let k_max = ceil_log2(2 * max_degree.max(1) as u64) as usize + 1;
        // Class offsets: 0 pair, 1..cv CV message rounds (first CV step is
        // computed locally from edge ids), 1 partner-color relay round,
        // then 12 sweep rounds (6 colors x (join + relay)), then
        // want/grant/double/zero (4 rounds).
        let class_len = 1 + cv.saturating_sub(1) + 1 + 12 + 4;
        // Iteration: 1 degree round + classes + fallback propose/resolve +
        // match-intent handshake + commit + prune rounds.
        let iter_len = 1 + k_max * class_len + 5;
        let _ = n;
        DetMatchSchedule {
            cv,
            k_max,
            class_len,
            iter_len,
        }
    }
}

/// Per-port (edge) state within one outer iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeValue {
    /// Committed (matched earlier or dropped); no longer active.
    Inactive,
    /// Active with value `2^-k`.
    Exp(usize),
    /// Active with value zero this iteration (still an edge of the graph).
    Zero,
    /// Active with value one: selected into this iteration's matching.
    One,
}

struct DetMatching {
    sched: DetMatchSchedule,
    nbr_active: Vec<bool>,
    nbr_degree: Vec<u64>,
    value: Vec<EdgeValue>,
    /// partner\[p\] = the port paired with `p` at this node (same class).
    partner: Vec<Option<usize>>,
    /// For ports whose edge this node owns: CV color of the edge.
    cv_color: Vec<u64>,
    /// Latest CV color received over each port (the far owner's view).
    nbr_cv_color: Vec<u64>,
    /// Far-side path partner (color, edge id) per owned port, relayed by
    /// the far endpoint.
    far_partner: Vec<Option<(u64, u64)>>,
    /// Whether the edge behind port p joined the class independent set.
    mis: Vec<bool>,
    /// Whether a path-partner of the edge behind port p joined.
    partner_joined: Vec<bool>,
    /// Owner-side root flag for the CV pointer structure.
    is_root: Vec<bool>,
    /// Grant received for the edge behind port p.
    granted: Vec<bool>,
    /// Port matched during this iteration's fallback, if any.
    fallback_port: Option<usize>,
    matched: bool,
}

impl DetMatching {
    fn active_degree(&self) -> u64 {
        self.nbr_active.iter().filter(|&&a| a).count() as u64
    }

    fn owner(&self, ctx: &Ctx<'_, Self>, port: usize) -> bool {
        ctx.id() < ctx.neighbor_id(port)
    }

    /// Current value of the edge behind `port` as a fraction of 1.
    fn value_f(&self, port: usize) -> f64 {
        match self.value[port] {
            EdgeValue::Exp(k) => 0.5f64.powi(k as i32),
            EdgeValue::One => 1.0,
            _ => 0.0,
        }
    }

    fn slack(&self, ctx: &Ctx<'_, Self>) -> f64 {
        let sum: f64 = ctx.ports().map(|p| self.value_f(p)).sum();
        1.0 - sum
    }

    fn prune(&mut self, inbox: &[Envelope<DetMatchMsg>]) {
        for env in inbox {
            match env.msg {
                DetMatchMsg::Matched => {
                    self.nbr_active[env.port] = false;
                    self.value[env.port] = EdgeValue::Inactive;
                }
                // Zero notifications can cross a phase boundary (they are
                // sent in the last round of a class phase); honor them
                // whenever they arrive.
                DetMatchMsg::Zeroed => {
                    if matches!(self.value[env.port], EdgeValue::Exp(_)) {
                        self.value[env.port] = EdgeValue::Zero;
                    }
                }
                _ => {}
            }
        }
    }

    /// Iteration offset 0: exchange residual degrees.
    fn degree_round(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.matched = false;
        self.fallback_port = None;
        if self.active_degree() == 0 {
            ctx.halt();
            return;
        }
        ctx.broadcast(DetMatchMsg::Degree(self.active_degree()));
    }

    /// First round of a class phase: set initial values (class `k_max`
    /// phase only), pair same-class edges in port order.
    fn pair_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>], k: usize) {
        if k == self.sched.k_max {
            // First class phase of the iteration: initialize values from
            // the degrees received in the degree round.
            for env in inbox {
                if let DetMatchMsg::Degree(d) = env.msg {
                    self.nbr_degree[env.port] = d;
                }
            }
            let my = self.active_degree();
            for p in ctx.ports() {
                if self.nbr_active[p] {
                    let ke = ceil_log2(my + self.nbr_degree[p]) as usize;
                    self.value[p] = EdgeValue::Exp(ke.clamp(1, self.sched.k_max));
                } else {
                    self.value[p] = EdgeValue::Inactive;
                }
            }
        }
        // Pair class-k edges in port order.
        self.partner.iter_mut().for_each(|q| *q = None);
        let class_ports: Vec<usize> = ctx
            .ports()
            .filter(|&p| self.value[p] == EdgeValue::Exp(k))
            .collect();
        for pair in class_ports.chunks_exact(2) {
            self.partner[pair[0]] = Some(pair[1]);
            self.partner[pair[1]] = Some(pair[0]);
        }
        // Reset per-class CV / sweep state for owned class edges.
        for &p in &class_ports {
            self.mis[p] = false;
            self.partner_joined[p] = false;
            self.granted[p] = false;
            self.far_partner[p] = None;
            if self.owner(ctx, p) {
                // Pointer parent of edge e = partner at the owner's side.
                let my_edge = ctx.edge_id(p) as u64;
                match self.partner[p] {
                    Some(q) => {
                        let parent_edge = ctx.edge_id(q) as u64;
                        // Mutual pair (both point at each other through this
                        // node) — the smaller edge id acts as root.
                        let mutual = self.partner[q] == Some(p);
                        if mutual && my_edge < parent_edge {
                            self.is_root[p] = true;
                            self.cv_color[p] = cv_step_root(my_edge);
                        } else {
                            self.is_root[p] = false;
                            self.cv_color[p] = cv_step(my_edge, parent_edge);
                        }
                    }
                    None => {
                        self.is_root[p] = true;
                        self.cv_color[p] = cv_step_root(my_edge);
                    }
                }
                ctx.send(p, DetMatchMsg::CvColor(self.cv_color[p]));
            }
        }
    }

    fn note_cv_colors(&mut self, inbox: &[Envelope<DetMatchMsg>]) {
        for env in inbox {
            if let DetMatchMsg::CvColor(c) = env.msg {
                self.nbr_cv_color[env.port] = c;
            }
        }
    }

    /// The final color of the edge behind `port` in this class: our own
    /// view if we own it, the owner's last broadcast otherwise.
    fn color_of(&self, ctx: &Ctx<'_, Self>, port: usize) -> u64 {
        if self.owner(ctx, port) {
            self.cv_color[port]
        } else {
            self.nbr_cv_color[port]
        }
    }

    /// Relay round after CV: each link node tells every paired edge the
    /// final color and id of its partner on this side.
    fn relay_color_round(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        inbox: &[Envelope<DetMatchMsg>],
        k: usize,
    ) {
        self.note_cv_colors(inbox);
        for p in ctx.ports() {
            if self.value[p] != EdgeValue::Exp(k) {
                continue;
            }
            if let Some(q) = self.partner[p] {
                let color = self.color_of(ctx, q);
                ctx.send(p, DetMatchMsg::PartnerColor(color, ctx.edge_id(q) as u64));
            }
        }
    }

    /// CV message rounds: the owner updates against the parent edge's color.
    fn cv_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>], k: usize) {
        self.note_cv_colors(inbox);
        // Record colors arriving from owners of edges we don't own.
        let mut incoming = vec![None; self.cv_color.len()];
        for env in inbox {
            if let DetMatchMsg::CvColor(c) = env.msg {
                incoming[env.port] = Some(c);
            }
        }
        // Snapshot: every update must read the *previous* round's colors,
        // including for parent edges we own ourselves.
        let snapshot = self.cv_color.clone();
        for p in ctx.ports() {
            if self.value[p] != EdgeValue::Exp(k) || !self.owner(ctx, p) {
                continue;
            }
            if self.is_root[p] {
                self.cv_color[p] = cv_step_root(snapshot[p]);
            } else {
                let q = self.partner[p].expect("non-root has a parent");
                // Parent edge color: if we own it, local; else it arrived.
                let parent_color = if self.owner(ctx, q) {
                    snapshot[q]
                } else {
                    incoming[q].expect("parent edge owner broadcasts CV color")
                };
                self.cv_color[p] = cv_step(snapshot[p], parent_color);
            }
            ctx.send(p, DetMatchMsg::CvColor(self.cv_color[p]));
        }
    }

    /// Sweep join round for color `c` (first round of the 2-round phase).
    ///
    /// The CV coloring is proper along owner-side pair links; pair links at
    /// non-owner endpoints may join two same-colored path-adjacent edges,
    /// so equal-color adjacencies are additionally broken by edge id.
    fn sweep_join_round(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        inbox: &[Envelope<DetMatchMsg>],
        k: usize,
        c: u64,
    ) {
        self.note_partner_joins(inbox);
        for p in ctx.ports() {
            if self.value[p] != EdgeValue::Exp(k)
                || !self.owner(ctx, p)
                || self.partner_joined[p]
                || self.cv_color[p] != c
            {
                continue;
            }
            debug_assert!(self.cv_color[p] < 6, "CV converged to < 6 colors");
            let my_id = ctx.edge_id(p) as u64;
            // Near partner (paired at this node).
            if let Some(q) = self.partner[p] {
                if self.color_of(ctx, q) == c && (ctx.edge_id(q) as u64) < my_id {
                    continue;
                }
            }
            // Far partner (paired at the other endpoint; relayed).
            if let Some((fc, fid)) = self.far_partner[p] {
                if fc == c && fid < my_id {
                    continue;
                }
            }
            self.mis[p] = true;
            ctx.send(p, DetMatchMsg::MisJoin);
        }
    }

    /// Sweep relay round: forward join news to path partners.
    fn sweep_relay_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>]) {
        for env in inbox {
            if matches!(env.msg, DetMatchMsg::MisJoin) {
                self.mis[env.port] = true;
                if let Some(q) = self.partner[env.port] {
                    ctx.send(q, DetMatchMsg::PartnerJoined);
                }
            }
        }
        // Local relays: a join we made ourselves also blocks our partners.
        for p in ctx.ports() {
            if self.mis[p] {
                if let Some(q) = self.partner[p] {
                    self.partner_joined[q] = true;
                }
            }
        }
    }

    fn note_partner_joins(&mut self, inbox: &[Envelope<DetMatchMsg>]) {
        for env in inbox {
            match env.msg {
                DetMatchMsg::PartnerJoined => self.partner_joined[env.port] = true,
                DetMatchMsg::MisJoin => self.mis[env.port] = true,
                DetMatchMsg::PartnerColor(c, id) => self.far_partner[env.port] = Some((c, id)),
                _ => {}
            }
        }
    }

    /// Doubling handshake (4 rounds): want, grant, double, zero.
    fn want_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>], k: usize) {
        self.note_partner_joins(inbox);
        for p in ctx.ports() {
            if self.value[p] == EdgeValue::Exp(k) && self.owner(ctx, p) && self.mis[p] {
                // Owner-side feasibility: paired here, or enough slack.
                let ok = self.partner[p].is_some() || self.slack(ctx) >= self.value_f(p) - 1e-12;
                if ok {
                    ctx.send(p, DetMatchMsg::WantDouble);
                }
            }
        }
    }

    fn grant_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>], k: usize) {
        for env in inbox {
            if matches!(env.msg, DetMatchMsg::WantDouble) {
                let p = env.port;
                // Deny if our view of the edge is stale (e.g. a zero crossed
                // a phase boundary); the owner simply keeps the old value.
                if self.value[p] != EdgeValue::Exp(k) {
                    continue;
                }
                let ok = self.partner[p].is_some() || self.slack(ctx) >= self.value_f(p) - 1e-12;
                if ok {
                    ctx.send(p, DetMatchMsg::Grant);
                }
            }
        }
    }

    fn double_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>], k: usize) {
        for env in inbox {
            if matches!(env.msg, DetMatchMsg::Grant) {
                self.granted[env.port] = true;
            }
        }
        for p in ctx.ports() {
            if self.value[p] == EdgeValue::Exp(k)
                && self.owner(ctx, p)
                && self.mis[p]
                && self.granted[p]
            {
                self.apply_double(p, k);
                ctx.send(p, DetMatchMsg::Doubled);
                // Our own partner (if any) zeroes; tell its other endpoint.
                if let Some(q) = self.partner[p] {
                    if self.value[q] == EdgeValue::Exp(k) {
                        self.value[q] = EdgeValue::Zero;
                        ctx.send(q, DetMatchMsg::Zeroed);
                    }
                }
            }
        }
    }

    fn zero_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>], k: usize) {
        for env in inbox {
            match env.msg {
                DetMatchMsg::Doubled => {
                    // The other endpoint doubled the shared edge.
                    if self.value[env.port] == EdgeValue::Exp(k) {
                        self.apply_double(env.port, k);
                    }
                    // Its zeroed partner at our side.
                    if let Some(q) = self.partner[env.port] {
                        if self.value[q] == EdgeValue::Exp(k) {
                            self.value[q] = EdgeValue::Zero;
                            ctx.send(q, DetMatchMsg::Zeroed);
                        }
                    }
                }
                DetMatchMsg::Zeroed => {
                    if matches!(self.value[env.port], EdgeValue::Exp(_)) {
                        self.value[env.port] = EdgeValue::Zero;
                    }
                }
                _ => {}
            }
        }
    }

    fn apply_double(&mut self, port: usize, k: usize) {
        self.value[port] = if k == 1 {
            EdgeValue::One
        } else {
            EdgeValue::Exp(k - 1)
        };
    }

    /// Fallback proposal round: nodes with no value-1 edge propose over
    /// their local-max-id active edge; mutual proposals match. Guarantees
    /// progress even when the rounding stalls.
    fn fallback_propose(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>]) {
        // Clean up any Zeroed stragglers.
        for env in inbox {
            if matches!(env.msg, DetMatchMsg::Zeroed)
                && matches!(self.value[env.port], EdgeValue::Exp(_))
            {
                self.value[env.port] = EdgeValue::Zero;
            }
        }
        if ctx.ports().any(|p| self.value[p] == EdgeValue::One) {
            return; // already matched by the rounding
        }
        let candidate = ctx
            .ports()
            .filter(|&p| self.nbr_active[p])
            .max_by_key(|&p| ctx.edge_id(p));
        if let Some(p) = candidate {
            ctx.send(p, DetMatchMsg::Propose);
        }
    }

    fn fallback_resolve(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>]) {
        let candidate = ctx
            .ports()
            .filter(|&p| self.nbr_active[p])
            .max_by_key(|&p| ctx.edge_id(p));
        if ctx.ports().any(|p| self.value[p] == EdgeValue::One) {
            return;
        }
        if let Some(p) = candidate {
            let mutual = inbox
                .iter()
                .any(|env| env.port == p && matches!(env.msg, DetMatchMsg::Propose));
            if mutual {
                self.fallback_port = Some(p);
            }
        }
    }

    /// This node's match candidate for this iteration, if any.
    fn match_candidate(&self, ctx: &Ctx<'_, Self>) -> Option<usize> {
        ctx.ports()
            .find(|&p| self.value[p] == EdgeValue::One)
            .or(self.fallback_port)
    }

    /// Intent round: announce the candidate over the shared edge. Commits
    /// are final in the model, so an edge only enters the matching when
    /// *both* endpoints announce it — this makes the commit immune to any
    /// residual value disagreement between the endpoints.
    fn intent_round(&mut self, ctx: &mut Ctx<'_, Self>, _inbox: &[Envelope<DetMatchMsg>]) {
        if let Some(p) = self.match_candidate(ctx) {
            ctx.send(p, DetMatchMsg::MatchIntent);
        }
    }

    /// Commit round: a mutually-intended candidate commits; an
    /// unreciprocated candidate is dropped (the node stays active and the
    /// fallback of the next iteration guarantees progress).
    fn commit_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>]) {
        let Some(mp) = self.match_candidate(ctx) else {
            return;
        };
        let mutual = inbox
            .iter()
            .any(|env| env.port == mp && matches!(env.msg, DetMatchMsg::MatchIntent));
        if !mutual {
            // The far endpoint disagrees: drop our claim on this edge.
            if self.value[mp] == EdgeValue::One {
                self.value[mp] = EdgeValue::Zero;
            }
            self.fallback_port = None;
            return;
        }
        for p in ctx.ports() {
            if self.nbr_active[p] {
                ctx.commit_edge(p, p == mp);
            }
        }
        self.matched = true;
        ctx.broadcast(DetMatchMsg::Matched);
        ctx.halt();
    }
}

impl Process for DetMatching {
    type Message = DetMatchMsg;
    type NodeOutput = ();
    type EdgeOutput = bool;
    type Params = ();

    const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

    fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
        let degree = ctx.degree();
        let sched =
            DetMatchSchedule::new(ctx.n(), ctx.n() * ctx.max_degree().max(1), ctx.max_degree());
        let mut state = DetMatching {
            sched,
            nbr_active: vec![true; degree],
            nbr_degree: vec![0; degree],
            value: vec![EdgeValue::Inactive; degree],
            partner: vec![None; degree],
            cv_color: vec![0; degree],
            nbr_cv_color: vec![u64::MAX; degree],
            far_partner: vec![None; degree],
            mis: vec![false; degree],
            partner_joined: vec![false; degree],
            is_root: vec![false; degree],
            granted: vec![false; degree],
            fallback_port: None,
            matched: false,
        };
        state.degree_round(ctx);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMatchMsg>]) {
        self.prune(inbox);
        let off = ctx.round() % self.sched.iter_len;
        let s = self.sched;
        if off == 0 {
            self.degree_round(ctx);
            return;
        }
        let class_region = 1 + s.k_max * s.class_len;
        if off < class_region {
            let class_idx = (off - 1) / s.class_len;
            let k = s.k_max - class_idx; // classes processed high -> low
            let coff = (off - 1) % s.class_len;
            let cv_msg_rounds = s.cv.saturating_sub(1);
            if coff == 0 {
                self.pair_round(ctx, inbox, k);
            } else if coff < 1 + cv_msg_rounds {
                self.cv_round(ctx, inbox, k);
            } else if coff == 1 + cv_msg_rounds {
                self.relay_color_round(ctx, inbox, k);
            } else if coff < 2 + cv_msg_rounds + 12 {
                let sweep = coff - 2 - cv_msg_rounds;
                if sweep.is_multiple_of(2) {
                    self.sweep_join_round(ctx, inbox, k, (sweep / 2) as u64);
                } else {
                    self.sweep_relay_round(ctx, inbox);
                }
            } else {
                match coff - (2 + cv_msg_rounds + 12) {
                    0 => self.want_round(ctx, inbox, k),
                    1 => self.grant_round(ctx, inbox, k),
                    2 => self.double_round(ctx, inbox, k),
                    _ => self.zero_round(ctx, inbox, k),
                }
            }
            return;
        }
        match off - class_region {
            0 => self.fallback_propose(ctx, inbox),
            1 => self.fallback_resolve(ctx, inbox),
            2 => self.intent_round(ctx, inbox),
            3 => self.commit_round(ctx, inbox),
            _ => {} // prune-only round; Matched messages handled by prune()
        }
    }
}

/// Runs Theorem 5's deterministic maximal matching.
///
/// # Example
///
/// ```
/// use localavg_graph::{analysis, gen};
/// use localavg_core::matching;
///
/// let g = gen::grid(5, 5);
/// let run = matching::deterministic(&g);
/// assert!(analysis::is_maximal_matching(&g, &run.in_matching));
/// ```
pub fn deterministic(g: &Graph) -> MatchingRun {
    deterministic_spec(g, &RunSpec::new(0), &mut Workspace::new())
}

/// [`deterministic`] under an explicit [`RunSpec`] with reusable
/// [`Workspace`] arenas (the seed is ignored — deterministic).
pub fn deterministic_spec(g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> MatchingRun {
    let t = spec.run_in::<DetMatching>(g, &(), ws);
    MatchingRun::from_transcript(g, t)
}

/// [`deterministic`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `deterministic_spec(g, &RunSpec::new(0).with_exec(exec), ..)`")]
pub fn deterministic_exec(g: &Graph, exec: Exec) -> MatchingRun {
    deterministic_spec(g, &RunSpec::new(0).with_exec(exec), &mut Workspace::new())
}

/// The fractional matching of Theorem 5's analysis: `f_e = 1/(d_u + d_v)`
/// on the *current* graph. Exposed for tests and the E5 experiment (the
/// rounding quality is measured against `Σ f_e · w_e = |E|`).
pub fn fractional_matching(g: &Graph) -> Vec<f64> {
    g.edges()
        .map(|(_, u, v)| 1.0 / (g.degree(u) + g.degree(v)) as f64)
        .collect()
}

/// Validates the fractional matching node constraints (`Σ_{e ∋ v} f_e <= 1`).
pub fn fractional_is_valid(g: &Graph, f: &[f64]) -> bool {
    let mut load = vec![0.0f64; g.n()];
    for (e, u, v) in g.edges() {
        load[u] += f[e];
        load[v] += f[e];
    }
    load.iter().all(|&l| l <= 1.0 + 1e-9)
}

/// Edge weight `w_e = d_u + d_v` used by Theorem 5's kill-count argument.
pub fn edge_weight(g: &Graph, e: EdgeId) -> usize {
    let (u, v) = g.endpoints(e);
    g.degree(u) + g.degree(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ComplexityReport;
    use localavg_graph::gen;

    fn check(g: &Graph, run: &MatchingRun) {
        assert!(
            analysis::is_maximal_matching(g, &run.in_matching),
            "invalid maximal matching"
        );
        assert!(run.transcript.all_edges_committed());
    }

    #[test]
    fn luby_on_standard_graphs() {
        for g in [
            gen::path(30),
            gen::cycle(29),
            gen::complete(11),
            gen::star(14),
            gen::grid(5, 7),
            gen::petersen(),
        ] {
            let run = luby(&g, 3);
            check(&g, &run);
        }
    }

    #[test]
    fn luby_on_random_graphs() {
        for seed in 0..4 {
            let mut rng = Rng::seed_from(seed);
            let g = gen::gnp(100, 0.06, &mut rng);
            let run = luby(&g, seed + 50);
            check(&g, &run);
        }
    }

    #[test]
    fn luby_edge_averaged_is_constant_ish() {
        // Theorem 4: edge-averaged complexity O(1) (this is the Def. 1 edge
        // average — matching labels live on edges).
        let mut rng = Rng::seed_from(7);
        let g = gen::random_regular(400, 8, &mut rng).unwrap();
        let run = luby(&g, 5);
        check(&g, &run);
        let r = ComplexityReport::from_run(&g, &run.transcript);
        assert!(
            r.edge_averaged < 30.0,
            "edge averaged = {}",
            r.edge_averaged
        );
        assert!(r.rounds > 0);
    }

    #[test]
    fn luby_is_congest() {
        let mut rng = Rng::seed_from(9);
        let g = gen::gnp(80, 0.1, &mut rng);
        let run = luby(&g, 2);
        assert!(
            run.transcript
                .peak_message_bits()
                .expect("full-policy run is audited")
                <= 128
        );
    }

    #[test]
    fn greedy_on_standard_graphs() {
        for g in [
            gen::path(21),
            gen::cycle(16),
            gen::complete(9),
            gen::star(11),
            gen::grid(4, 6),
        ] {
            let run = greedy(&g);
            check(&g, &run);
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let mut rng = Rng::seed_from(11);
        let g = gen::gnp(70, 0.08, &mut rng);
        let a = greedy(&g);
        let b = greedy(&g);
        assert_eq!(a.in_matching, b.in_matching);
    }

    #[test]
    fn deterministic_on_standard_graphs() {
        for g in [
            gen::path(18),
            gen::cycle(15),
            gen::complete(8),
            gen::star(9),
            gen::grid(4, 5),
            gen::petersen(),
        ] {
            let run = deterministic(&g);
            check(&g, &run);
        }
    }

    #[test]
    fn deterministic_on_random_graphs() {
        for seed in 0..3 {
            let mut rng = Rng::seed_from(seed + 30);
            let g = gen::gnp(60, 0.08, &mut rng);
            let run = deterministic(&g);
            check(&g, &run);
        }
    }

    #[test]
    fn deterministic_on_regular_graphs() {
        for d in [3usize, 6] {
            let mut rng = Rng::seed_from(d as u64);
            let g = gen::random_regular(64, d, &mut rng).unwrap();
            let run = deterministic(&g);
            check(&g, &run);
        }
    }

    #[test]
    fn deterministic_single_edge() {
        let g = gen::path(2);
        let run = deterministic(&g);
        assert_eq!(run.in_matching, vec![true]);
    }

    #[test]
    fn fractional_matching_valid_and_full_weight() {
        let mut rng = Rng::seed_from(44);
        let g = gen::gnp(50, 0.15, &mut rng);
        let f = fractional_matching(&g);
        assert!(fractional_is_valid(&g, &f));
        // Σ f_e * w_e = |E| identically (Theorem 5's starting point).
        let total: f64 = g
            .edges()
            .map(|(e, _, _)| f[e] * edge_weight(&g, e) as f64)
            .collect::<Vec<_>>()
            .iter()
            .sum();
        assert!((total - g.m() as f64).abs() < 1e-6);
    }

    #[test]
    fn matching_sizes_comparable() {
        // All three algorithms produce maximal matchings, which are 2-
        // approximations of each other.
        let mut rng = Rng::seed_from(4);
        let g = gen::random_regular(100, 4, &mut rng).unwrap();
        let a = luby(&g, 1).size();
        let b = greedy(&g).size();
        let c = deterministic(&g).size();
        for (x, y) in [(a, b), (a, c), (b, c)] {
            assert!(x <= 2 * y && y <= 2 * x, "sizes {x} vs {y}");
        }
    }
}
