//! `localavg_check` — the independent correctness oracle.
//!
//! After four engine rewrites (CSR core, flat arenas, transcript
//! policies, workspace reuse) the repo's correctness story rested on two
//! legs: the `localavg_graph::analysis` validators and golden bytes —
//! both of which move *with* the code they are supposed to check. This
//! module is the third, independent leg: every check here is written
//! against the paper's definitions directly, deliberately **not** sharing
//! code paths with `analysis.rs` or `metrics.rs`, so a bug introduced in
//! one side is caught by disagreement with the other. The `exp fuzz`
//! differential harness (`localavg_bench::fuzz`) drives these checks over
//! sampled (family × size × algorithm × params × policy × executor)
//! cells.
//!
//! Three layers:
//!
//! 1. [`verify_solution`] — naive O(n·Δ)-per-check reference validators
//!    for all five problems, node-centric where `analysis.rs` is
//!    edge-centric.
//! 2. Brute force for tiny instances ([`max_independent_set_size`],
//!    [`maximum_matching_size`], [`chromatic_number`],
//!    [`sinkless_orientation_exists`]) and the derived optimality bounds
//!    of [`check_brute_bounds`] (e.g. any maximal independent set `S`
//!    satisfies `n/(Δ+1) ≤ |S| ≤ α(G)`).
//! 3. [`completion_times`] / [`check_metrics`] — an independent
//!    recomputation of Definition 1's per-element completion times from
//!    the raw transcript ledger (via the `Option` accessors
//!    `Transcript::node_commit`/`edge_commit`), compared elementwise
//!    against `metrics.rs`, plus the per-run half of Appendix A's
//!    inequality chain.

use crate::algo::{AlgoRun, Solution};
use crate::metrics::Distribution;
use localavg_graph::analysis::Orientation;
use localavg_graph::{Graph, NodeId};
use localavg_sim::transcript::{OutputKind, Round, Transcript};
use std::collections::HashMap;

/// Largest instance the exponential set/matching brute forcers accept.
pub const BRUTE_MAX_NODES: usize = 20;

/// Largest instance [`chromatic_number`] accepts (its search space is the
/// harshest of the four brute forcers).
pub const CHROMATIC_MAX_NODES: usize = 12;

// ---------------------------------------------------------------------------
// Layer 1: naive reference validators.
// ---------------------------------------------------------------------------

/// Validates a [`Solution`] against `g` with the naive node-centric
/// reference validators.
///
/// # Errors
///
/// Returns a human-readable description of the first violation found
/// (sized for fuzz-failure reports, not for matching on).
pub fn verify_solution(g: &Graph, sol: &Solution) -> Result<(), String> {
    match sol {
        Solution::Mis { in_set } => mis_ok(g, in_set),
        Solution::RulingSet { in_set, beta } => ruling_ok(g, in_set, *beta),
        Solution::Matching { in_matching } => matching_ok(g, in_matching),
        Solution::Orientation { orientation } => orientation_ok(g, orientation),
        Solution::Coloring { colors } => coloring_ok(g, colors),
    }
}

fn expect_len(what: &str, expected: usize, got: usize) -> Result<(), String> {
    if expected == got {
        Ok(())
    } else {
        Err(format!("{what}: expected {expected} entries, got {got}"))
    }
}

fn mis_ok(g: &Graph, in_set: &[bool]) -> Result<(), String> {
    expect_len("MIS indicator", g.n(), in_set.len())?;
    for v in g.nodes() {
        let member_neighbors = g.neighbor_ids(v).filter(|&u| in_set[u]).count();
        if in_set[v] && member_neighbors > 0 {
            return Err(format!("node {v} is in the set next to another member"));
        }
        if !in_set[v] && member_neighbors == 0 {
            return Err(format!("node {v} is undominated (set not maximal)"));
        }
    }
    Ok(())
}

/// Distance to the nearest set member by fixpoint relaxation (the
/// textbook Bellman–Ford shape — deliberately not the BFS `analysis.rs`
/// uses).
fn dist_to_set(g: &Graph, in_set: &[bool]) -> Vec<Option<usize>> {
    let mut dist: Vec<Option<usize>> = in_set.iter().map(|&b| b.then_some(0)).collect();
    loop {
        let mut changed = false;
        for v in g.nodes() {
            let via_neighbor = g
                .neighbor_ids(v)
                .filter_map(|u| dist[u])
                .min()
                .map(|d| d + 1);
            if let Some(cand) = via_neighbor {
                if dist[v].is_none_or(|d| cand < d) {
                    dist[v] = Some(cand);
                    changed = true;
                }
            }
        }
        if !changed {
            return dist;
        }
    }
}

fn ruling_ok(g: &Graph, in_set: &[bool], beta: usize) -> Result<(), String> {
    expect_len("ruling-set indicator", g.n(), in_set.len())?;
    // α = 2: members are pairwise non-adjacent.
    for v in g.nodes().filter(|&v| in_set[v]) {
        if let Some(u) = g.neighbor_ids(v).find(|&u| in_set[u]) {
            return Err(format!("members {v} and {u} are adjacent (α = 2 violated)"));
        }
    }
    let dist = dist_to_set(g, in_set);
    for v in g.nodes() {
        match dist[v] {
            Some(d) if d <= beta => {}
            Some(d) => {
                return Err(format!(
                    "node {v} at distance {d} > β = {beta} from the set"
                ))
            }
            None => return Err(format!("node {v} unreachable from the set")),
        }
    }
    Ok(())
}

fn matching_ok(g: &Graph, in_matching: &[bool]) -> Result<(), String> {
    expect_len("matching indicator", g.m(), in_matching.len())?;
    let mut matched = vec![false; g.n()];
    for v in g.nodes() {
        let mine = g
            .neighbors(v)
            .iter()
            .filter(|&&(_, e)| in_matching[e])
            .count();
        if mine > 1 {
            return Err(format!("node {v} has {mine} matched incident edges"));
        }
        matched[v] = mine == 1;
    }
    for v in g.nodes().filter(|&v| !matched[v]) {
        if let Some(u) = g.neighbor_ids(v).find(|&u| !matched[u]) {
            return Err(format!(
                "edge {{{v}, {u}}} joins two unmatched nodes (matching not maximal)"
            ));
        }
    }
    Ok(())
}

fn orientation_ok(g: &Graph, orientation: &[Orientation]) -> Result<(), String> {
    expect_len("orientation labels", g.m(), orientation.len())?;
    for v in g.nodes() {
        if g.degree(v) == 0 {
            continue; // vacuously fine (paper §3.3)
        }
        let out = g
            .neighbors(v)
            .iter()
            .filter(|&&(_, e)| orientation[e].tail(g, e) == v)
            .count();
        if out == 0 {
            return Err(format!("node {v} is a sink"));
        }
    }
    Ok(())
}

fn coloring_ok(g: &Graph, colors: &[usize]) -> Result<(), String> {
    expect_len("coloring", g.n(), colors.len())?;
    for v in g.nodes() {
        if let Some(u) = g.neighbor_ids(v).find(|&u| colors[u] == colors[v]) {
            return Err(format!(
                "nodes {v} and {u} share color {} across an edge",
                colors[v]
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Layer 2: brute force for tiny instances.
// ---------------------------------------------------------------------------

fn adjacency_masks(g: &Graph) -> Vec<u32> {
    let mut adj = vec![0u32; g.n()];
    for (_, u, v) in g.edges() {
        adj[u] |= 1 << v;
        adj[v] |= 1 << u;
    }
    adj
}

/// Exact independence number α(G) by branching on the lowest-index alive
/// node (include it, dropping its closed neighborhood, or exclude it).
///
/// # Panics
///
/// Panics if `g.n() > BRUTE_MAX_NODES`.
pub fn max_independent_set_size(g: &Graph) -> usize {
    assert!(
        g.n() <= BRUTE_MAX_NODES,
        "brute force capped at {BRUTE_MAX_NODES} nodes, got {}",
        g.n()
    );
    fn go(alive: u32, adj: &[u32]) -> usize {
        if alive == 0 {
            return 0;
        }
        let v = alive.trailing_zeros() as usize;
        let rest = alive & !(1u32 << v);
        let with = 1 + go(rest & !adj[v], adj);
        let without = go(rest, adj);
        with.max(without)
    }
    let alive = if g.n() == 32 {
        u32::MAX
    } else {
        (1u32 << g.n()) - 1
    };
    go(alive, &adjacency_masks(g))
}

/// Exact maximum matching size ν(G) by branching on the lowest-index
/// alive node with an alive neighbor, memoized on the alive mask.
///
/// # Panics
///
/// Panics if `g.n() > BRUTE_MAX_NODES`.
pub fn maximum_matching_size(g: &Graph) -> usize {
    assert!(
        g.n() <= BRUTE_MAX_NODES,
        "brute force capped at {BRUTE_MAX_NODES} nodes, got {}",
        g.n()
    );
    fn go(alive: u32, adj: &[u32], memo: &mut HashMap<u32, usize>) -> usize {
        // Skip alive nodes with no alive neighbor: they can never match.
        let mut rest = alive;
        let v = loop {
            if rest == 0 {
                return 0;
            }
            let v = rest.trailing_zeros() as usize;
            if adj[v] & alive != 0 {
                break v;
            }
            rest &= !(1u32 << v);
        };
        if let Some(&cached) = memo.get(&rest) {
            return cached;
        }
        let dropped = rest & !(1u32 << v);
        // v stays unmatched forever…
        let mut best = go(dropped, adj, memo);
        // …or matches one of its alive neighbors.
        let mut nbrs = adj[v] & rest;
        while nbrs != 0 {
            let u = nbrs.trailing_zeros() as usize;
            nbrs &= !(1u32 << u);
            best = best.max(1 + go(dropped & !(1u32 << u), adj, memo));
        }
        memo.insert(rest, best);
        best
    }
    go(
        if g.n() == 32 {
            u32::MAX
        } else {
            (1u32 << g.n()) - 1
        },
        &adjacency_masks(g),
        &mut HashMap::new(),
    )
}

/// Exact chromatic number χ(G) by iterative deepening over the palette
/// size with first-fit symmetry breaking.
///
/// # Panics
///
/// Panics if `g.n() > CHROMATIC_MAX_NODES`.
pub fn chromatic_number(g: &Graph) -> usize {
    assert!(
        g.n() <= CHROMATIC_MAX_NODES,
        "chromatic brute force capped at {CHROMATIC_MAX_NODES} nodes, got {}",
        g.n()
    );
    if g.n() == 0 {
        return 0;
    }
    if g.m() == 0 {
        return 1;
    }
    fn colorable(g: &Graph, k: usize, assigned: &mut Vec<usize>, v: NodeId) -> bool {
        if v == g.n() {
            return true;
        }
        // Symmetry breaking: node v may only open palette slot
        // max(assigned so far) + 1.
        let frontier = assigned[..v].iter().copied().max().map_or(0, |c| c + 1);
        for c in 0..k.min(frontier + 1) {
            if g.neighbor_ids(v).all(|u| u >= v || assigned[u] != c) {
                assigned[v] = c;
                if colorable(g, k, assigned, v + 1) {
                    return true;
                }
            }
        }
        false
    }
    for k in 2..=g.n() {
        if colorable(g, k, &mut vec![0; g.n()], 0) {
            return k;
        }
    }
    g.n()
}

/// Whether any sinkless orientation of `g` exists: true iff every
/// connected component that contains an edge has at least as many edges
/// as nodes (a tree component must produce a sink, a component with a
/// cycle never has to). Components come from union–find, not the BFS of
/// `analysis::components`.
pub fn sinkless_orientation_exists(g: &Graph) -> bool {
    let mut parent: Vec<usize> = (0..g.n()).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for (_, u, v) in g.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru] = rv;
        }
    }
    let mut nodes = vec![0usize; g.n()];
    let mut edges = vec![0usize; g.n()];
    for v in g.nodes() {
        nodes[find(&mut parent, v)] += 1;
    }
    for (_, u, _) in g.edges() {
        edges[find(&mut parent, u)] += 1;
    }
    g.nodes()
        .all(|r| edges[r] == 0 || nodes[r] == 0 || edges[r] >= nodes[r])
}

/// Checks a solution against the brute-force optimality bounds — the
/// "did the algorithm find something an exhaustive search agrees is
/// legal *and plausible*" layer:
///
/// * any maximal independent set `S` has `n ≤ |S|·(Δ+1)` and `|S| ≤ α`;
/// * a (2, β)-ruling set is independent, so `|S| ≤ α`;
/// * any maximal matching `M` has `ν ≤ 2|M|` and `|M| ≤ ν`;
/// * a sinkless orientation may only exist where brute force says one
///   does;
/// * a proper coloring uses at least χ colors (χ only for
///   `n ≤ CHROMATIC_MAX_NODES`).
///
/// Call only after [`verify_solution`] and only for
/// `g.n() <= BRUTE_MAX_NODES`.
///
/// # Errors
///
/// Returns a description of the violated bound.
///
/// # Panics
///
/// Panics if `g.n() > BRUTE_MAX_NODES`.
pub fn check_brute_bounds(g: &Graph, sol: &Solution) -> Result<(), String> {
    match sol {
        Solution::Mis { in_set } => {
            let size = in_set.iter().filter(|&&b| b).count();
            let alpha = max_independent_set_size(g);
            if size > alpha {
                return Err(format!("MIS of size {size} exceeds α = {alpha}"));
            }
            if size * (g.max_degree() + 1) < g.n() {
                return Err(format!(
                    "MIS of size {size} below the n/(Δ+1) floor (n={}, Δ={})",
                    g.n(),
                    g.max_degree()
                ));
            }
            Ok(())
        }
        Solution::RulingSet { in_set, .. } => {
            let size = in_set.iter().filter(|&&b| b).count();
            let alpha = max_independent_set_size(g);
            if size > alpha {
                return Err(format!("ruling set of size {size} exceeds α = {alpha}"));
            }
            Ok(())
        }
        Solution::Matching { in_matching } => {
            let size = in_matching.iter().filter(|&&b| b).count();
            let nu = maximum_matching_size(g);
            if size > nu {
                return Err(format!("matching of size {size} exceeds ν = {nu}"));
            }
            if 2 * size < nu {
                return Err(format!(
                    "maximal matching of size {size} below ν/2 = {nu}/2"
                ));
            }
            Ok(())
        }
        Solution::Orientation { .. } => {
            if sinkless_orientation_exists(g) {
                Ok(())
            } else {
                Err("a sinkless orientation was produced where none can exist".to_string())
            }
        }
        Solution::Coloring { colors } => {
            if g.n() > CHROMATIC_MAX_NODES {
                return Ok(());
            }
            let used = {
                let mut distinct: Vec<usize> = colors.clone();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len()
            };
            let chi = chromatic_number(g);
            if used < chi {
                return Err(format!("{used} colors on a graph with χ = {chi}"));
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 3: independent Definition 1 accounting.
// ---------------------------------------------------------------------------

/// Per-element completion times recomputed from the raw ledger — the
/// oracle twin of `metrics::CompletionTimes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleTimes {
    /// `T_v` per node.
    pub node: Vec<Round>,
    /// `T_e` per edge.
    pub edge: Vec<Round>,
    /// Footnote-2 relaxed edge completion.
    pub edge_one_endpoint: Vec<Round>,
}

impl OracleTimes {
    /// Exact mean via integer summation (no incremental float error).
    fn mean(xs: &[Round]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let total: u128 = xs.iter().map(|&x| x as u128).sum();
        total as f64 / xs.len() as f64
    }

    /// `AVG_V` of this run.
    pub fn node_averaged(&self) -> f64 {
        Self::mean(&self.node)
    }

    /// `AVG_E` of this run.
    pub fn edge_averaged(&self) -> f64 {
        Self::mean(&self.edge)
    }

    /// Footnote-2 `AVG_E`.
    pub fn edge_averaged_one_endpoint(&self) -> f64 {
        Self::mean(&self.edge_one_endpoint)
    }
}

/// Recomputes Definition 1's completion times from the raw transcript,
/// node-centric where `metrics.rs` is edge-centric: a node's time is the
/// max over its own commit and its incident edges' commits (read through
/// its CSR row), an edge's time the max over its own commit and its two
/// endpoints'.
///
/// # Errors
///
/// Returns an error naming the first element whose required output never
/// committed (instead of the `metrics.rs` panic).
pub fn completion_times(g: &Graph, t: &Transcript<(), ()>) -> Result<OracleTimes, String> {
    let needs_node = matches!(t.kind, OutputKind::NodeLabels | OutputKind::Both);
    let needs_edge = matches!(t.kind, OutputKind::EdgeLabels | OutputKind::Both);
    let node_own = |v: NodeId| -> Result<Round, String> {
        if needs_node {
            t.node_commit(v)
                .ok_or_else(|| format!("node {v} never committed"))
        } else {
            Ok(0)
        }
    };
    let edge_own = |e: usize| -> Result<Round, String> {
        if needs_edge {
            t.edge_commit(e)
                .ok_or_else(|| format!("edge {e} never committed"))
        } else {
            Ok(0)
        }
    };
    let mut node = Vec::with_capacity(g.n());
    for v in g.nodes() {
        let mut tv = node_own(v)?;
        for &(_, e) in g.neighbors(v) {
            tv = tv.max(edge_own(e)?);
        }
        node.push(tv);
    }
    let mut edge = Vec::with_capacity(g.m());
    let mut edge_one = Vec::with_capacity(g.m());
    for (e, u, v) in g.edges() {
        let (tu, tv) = (node_own(u)?, node_own(v)?);
        edge.push(edge_own(e)?.max(tu).max(tv));
        edge_one.push(if needs_node { tu.min(tv) } else { edge_own(e)? });
    }
    Ok(OracleTimes {
        node,
        edge,
        edge_one_endpoint: edge_one,
    })
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Nearest-rank percentile of a completion-time sample, recomputed by
/// counting sort — deliberately **not** the sort-then-index path
/// `metrics::Distribution` uses, so the two implementations check each
/// other. Returns 0 for an empty sample (the crate's empty-set
/// convention). The counting array is sized by the sample's max, which
/// for completion times is bounded by the run's round count.
pub fn percentile_by_counting(xs: &[Round], q_num: usize, q_den: usize) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let max = xs.iter().copied().max().expect("nonempty");
    let mut counts = vec![0usize; max + 1];
    for &x in xs {
        counts[x] += 1;
    }
    let rank = (q_num * xs.len()).div_ceil(q_den).clamp(1, xs.len());
    let mut seen = 0usize;
    for (value, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return value as u64;
        }
    }
    max as u64
}

/// Cross-checks one [`Distribution`] summary against an independent
/// counting-sort recomputation from the raw sample it claims to
/// summarize.
///
/// # Errors
///
/// Returns a description of the first disagreement (percentile, max,
/// mean, count, histogram mass, or a violated ordering invariant).
pub fn check_distribution(label: &str, d: &Distribution, xs: &[Round]) -> Result<(), String> {
    if d.count != xs.len() {
        return Err(format!(
            "{label}: distribution count {} != sample size {}",
            d.count,
            xs.len()
        ));
    }
    if !d.is_well_ordered() {
        return Err(format!(
            "{label}: ordering invariant violated (p50 {} p90 {} p99 {} max {} mean {})",
            d.p50, d.p90, d.p99, d.max, d.mean
        ));
    }
    for (q, got) in [(50, d.p50), (90, d.p90), (99, d.p99)] {
        let want = percentile_by_counting(xs, q, 100);
        if got != want {
            return Err(format!(
                "{label}: p{q} diverges: summary {got}, oracle {want}"
            ));
        }
    }
    let max = xs.iter().copied().max().unwrap_or(0) as u64;
    if d.max != max {
        return Err(format!(
            "{label}: max diverges: summary {}, oracle {max}",
            d.max
        ));
    }
    if !close(d.mean, OracleTimes::mean(xs)) {
        return Err(format!(
            "{label}: mean diverges: summary {}, oracle {}",
            d.mean,
            OracleTimes::mean(xs)
        ));
    }
    Ok(())
}

/// Cross-checks a run's metrics against the oracle recomputation and the
/// per-run half of Appendix A's inequality chain:
///
/// * oracle completion times equal `metrics.rs` elementwise;
/// * the `ComplexityReport` scalars match the oracle means;
/// * every commit is within `rounds`; `AVG_V ≤ max T_v ≤ rounds`;
///   the footnote-2 time never exceeds the Definition 1 time.
///
/// # Errors
///
/// Returns a description of the first disagreement.
pub fn check_metrics(g: &Graph, run: &AlgoRun) -> Result<(), String> {
    let oracle = completion_times(g, &run.transcript)?;
    let fast = run.completion_times(g);
    if oracle.node != fast.node {
        let v = oracle
            .node
            .iter()
            .zip(&fast.node)
            .position(|(a, b)| a != b)
            .expect("some node differs");
        return Err(format!(
            "node completion times diverge at node {v}: oracle {}, metrics {}",
            oracle.node[v], fast.node[v]
        ));
    }
    if oracle.edge != fast.edge {
        return Err("edge completion times diverge".to_string());
    }
    if oracle.edge_one_endpoint != fast.edge_one_endpoint {
        return Err("footnote-2 edge completion times diverge".to_string());
    }
    let rep = run.report(g);
    if !close(rep.node_averaged, oracle.node_averaged()) {
        return Err(format!(
            "AVG_V diverges: report {}, oracle {}",
            rep.node_averaged,
            oracle.node_averaged()
        ));
    }
    if !close(rep.edge_averaged, oracle.edge_averaged()) {
        return Err(format!(
            "AVG_E diverges: report {}, oracle {}",
            rep.edge_averaged,
            oracle.edge_averaged()
        ));
    }
    if !close(
        rep.edge_averaged_one_endpoint,
        oracle.edge_averaged_one_endpoint(),
    ) {
        return Err("footnote-2 AVG_E diverges".to_string());
    }
    // Per-run Appendix A chain.
    let rounds = run.worst_case();
    let node_worst = oracle.node.iter().copied().max().unwrap_or(0);
    if rep.node_worst != node_worst {
        return Err(format!(
            "node worst diverges: report {}, oracle {node_worst}",
            rep.node_worst
        ));
    }
    if node_worst > rounds {
        return Err(format!(
            "node completion {node_worst} exceeds total rounds {rounds}"
        ));
    }
    if rep.node_averaged > node_worst as f64 + 1e-9 {
        return Err("AVG_V exceeds the worst node completion".to_string());
    }
    for (e, (&one, &full)) in oracle
        .edge_one_endpoint
        .iter()
        .zip(&oracle.edge)
        .enumerate()
    {
        if one > full {
            return Err(format!(
                "edge {e}: footnote-2 time {one} exceeds Definition 1 time {full}"
            ));
        }
        if full > rounds {
            return Err(format!(
                "edge {e} completion {full} exceeds total rounds {rounds}"
            ));
        }
    }
    // Distributional summaries (p50/p90/p99/max/mean) of the fast path
    // must agree with the counting-sort oracle over the *oracle's* raw
    // completion times — two independent percentile computations over two
    // independently-derived samples.
    check_distribution(
        "node times",
        &Distribution::from_rounds(&fast.node),
        &oracle.node,
    )?;
    check_distribution(
        "edge times",
        &Distribution::from_rounds(&fast.edge),
        &oracle.edge,
    )?;
    Ok(())
}

/// The full oracle verdict on one run: solution validity plus metrics
/// agreement (brute-force bounds are separate — they need a size gate).
///
/// # Errors
///
/// Returns the first failing layer's description.
pub fn verify_run(g: &Graph, run: &AlgoRun) -> Result<(), String> {
    verify_solution(g, &run.solution)?;
    check_metrics(g, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{registry, RunSpec};
    use localavg_graph::rng::Rng;
    use localavg_graph::{analysis, gen};
    use localavg_sim::transcript::OutputKind;

    #[test]
    fn percentiles_match_oracle_on_registry_algorithms() {
        // Every registry algorithm × a tree and a heavy-tailed family:
        // the sort-based Distribution summary must agree with the
        // counting-sort oracle on the raw ledger's completion times.
        let mut rng = Rng::seed_from(42);
        let instances = [
            ("tree", gen::random_tree(64, &mut rng)),
            ("powerlaw", gen::powerlaw(64, 2.1, 6.0, &mut rng)),
        ];
        for (family, g) in &instances {
            for algo in registry().iter() {
                if algo.problem().min_degree() > g.min_degree()
                    || (algo.requires_tree() && !analysis::is_forest(g))
                {
                    continue;
                }
                let run = algo.execute(g, &RunSpec::new(8));
                check_metrics(g, &run)
                    .unwrap_or_else(|e| panic!("{} on {family}: {e}", algo.name()));
            }
        }
    }

    #[test]
    fn counting_percentile_agrees_with_sorting_on_awkward_samples() {
        for xs in [
            vec![],
            vec![0],
            vec![5; 9],
            vec![0, 0, 0, 1],
            (0..100).collect::<Vec<_>>(),
            vec![1, 1000],
            vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5],
        ] {
            let d = Distribution::from_rounds(&xs);
            check_distribution("sample", &d, &xs).unwrap();
            for (q, got) in [(50, d.p50), (90, d.p90), (99, d.p99)] {
                assert_eq!(got, percentile_by_counting(&xs, q, 100), "p{q} of {xs:?}");
            }
        }
    }

    #[test]
    fn check_distribution_rejects_corrupted_summaries() {
        let xs = vec![1, 2, 3, 4, 5];
        let good = Distribution::from_rounds(&xs);
        check_distribution("xs", &good, &xs).unwrap();
        let mut wrong_p90 = good.clone();
        wrong_p90.p90 = 2; // breaks p50 <= p90 ordering too? p50=3 > 2 -> ordering
        assert!(check_distribution("xs", &wrong_p90, &xs).is_err());
        let mut wrong_max = good.clone();
        wrong_max.max = 9;
        assert!(check_distribution("xs", &wrong_max, &xs).is_err());
        let mut wrong_count = good.clone();
        wrong_count.count = 4;
        assert!(check_distribution("xs", &wrong_count, &xs).is_err());
        let mut wrong_mean = good;
        wrong_mean.mean = 2.0;
        assert!(check_distribution("xs", &wrong_mean, &xs).is_err());
    }

    #[test]
    fn oracle_and_analysis_validators_agree_on_valid_runs() {
        let mut rng = Rng::seed_from(31);
        let g = gen::random_regular(32, 4, &mut rng).unwrap();
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree() || algo.requires_tree() {
                continue;
            }
            let run = algo.execute(&g, &RunSpec::new(6));
            assert_eq!(run.verify(&g), Ok(()), "{}", algo.name());
            verify_solution(&g, &run.solution)
                .unwrap_or_else(|e| panic!("oracle rejects {}: {e}", algo.name()));
            verify_run(&g, &run).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        }
    }

    #[test]
    fn oracle_rejects_what_analysis_rejects() {
        let g = gen::path(5);
        // Not maximal: empty set.
        let empty = Solution::Mis {
            in_set: vec![false; 5],
        };
        assert!(verify_solution(&g, &empty).is_err());
        // Not independent: adjacent members.
        let adjacent = Solution::Mis {
            in_set: vec![true, true, false, true, false],
        };
        assert!(verify_solution(&g, &adjacent).is_err());
        // Valid MIS passes.
        let ok = Solution::Mis {
            in_set: vec![true, false, true, false, true],
        };
        assert_eq!(verify_solution(&g, &ok), Ok(()));
        // Size mismatch.
        let short = Solution::Mis {
            in_set: vec![true; 4],
        };
        assert!(verify_solution(&g, &short).is_err());
    }

    #[test]
    fn ruling_oracle_checks_beta_exactly() {
        let g = gen::path(7);
        let endpoints: Vec<bool> = (0..7).map(|v| v == 0 || v == 6).collect();
        assert_eq!(
            verify_solution(
                &g,
                &Solution::RulingSet {
                    in_set: endpoints.clone(),
                    beta: 3
                }
            ),
            Ok(())
        );
        assert!(verify_solution(
            &g,
            &Solution::RulingSet {
                in_set: endpoints,
                beta: 2
            }
        )
        .is_err());
    }

    #[test]
    fn matching_and_orientation_and_coloring_oracles() {
        let g = gen::path(4); // edges {0,1} {1,2} {2,3}
        assert_eq!(
            verify_solution(
                &g,
                &Solution::Matching {
                    in_matching: vec![true, false, true]
                }
            ),
            Ok(())
        );
        assert!(verify_solution(
            &g,
            &Solution::Matching {
                in_matching: vec![false, true, true] // node 2 doubly matched
            }
        )
        .is_err());
        assert!(verify_solution(
            &g,
            &Solution::Matching {
                in_matching: vec![false, true, false] // {0,1}? 0 and... wait
            }
        )
        .is_ok());
        let c = gen::cycle(4);
        let around: Vec<Orientation> = c
            .edges()
            .map(|(e, _, _)| {
                if e == 3 {
                    Orientation::Backward
                } else {
                    Orientation::Forward
                }
            })
            .collect();
        assert_eq!(
            verify_solution(
                &c,
                &Solution::Orientation {
                    orientation: around
                }
            ),
            Ok(())
        );
        assert!(verify_solution(
            &c,
            &Solution::Orientation {
                orientation: vec![Orientation::Forward; 4]
            }
        )
        .is_err());
        assert_eq!(
            verify_solution(
                &c,
                &Solution::Coloring {
                    colors: vec![0, 1, 0, 1]
                }
            ),
            Ok(())
        );
        assert!(verify_solution(
            &c,
            &Solution::Coloring {
                colors: vec![0, 1, 1, 0]
            }
        )
        .is_err());
    }

    #[test]
    fn brute_force_known_values() {
        assert_eq!(max_independent_set_size(&gen::cycle(5)), 2);
        assert_eq!(max_independent_set_size(&gen::cycle(6)), 3);
        assert_eq!(max_independent_set_size(&gen::complete(5)), 1);
        assert_eq!(max_independent_set_size(&gen::petersen()), 4);
        assert_eq!(max_independent_set_size(&Graph::empty(7)), 7);
        assert_eq!(maximum_matching_size(&gen::path(4)), 2);
        assert_eq!(maximum_matching_size(&gen::cycle(5)), 2);
        assert_eq!(maximum_matching_size(&gen::complete(6)), 3);
        assert_eq!(maximum_matching_size(&gen::petersen()), 5);
        assert_eq!(maximum_matching_size(&gen::star(6)), 1);
        assert_eq!(chromatic_number(&gen::cycle(5)), 3);
        assert_eq!(chromatic_number(&gen::cycle(6)), 2);
        assert_eq!(chromatic_number(&gen::complete(5)), 5);
        assert_eq!(chromatic_number(&gen::petersen()), 3);
        assert_eq!(chromatic_number(&Graph::empty(3)), 1);
        assert!(sinkless_orientation_exists(&gen::cycle(4)));
        assert!(sinkless_orientation_exists(&gen::petersen()));
        assert!(!sinkless_orientation_exists(&gen::path(5)));
        assert!(!sinkless_orientation_exists(&gen::binary_tree(7)));
        assert!(sinkless_orientation_exists(&Graph::empty(3)));
    }

    use localavg_graph::Graph;

    #[test]
    fn brute_force_agrees_with_analysis_independence() {
        // Cross-check the two independent exponential searches on random
        // small graphs.
        let mut rng = Rng::seed_from(77);
        for _ in 0..20 {
            let n = 4 + rng.index(12);
            let g = gen::gnp(n, 0.3, &mut rng);
            assert_eq!(
                max_independent_set_size(&g),
                analysis::independence_number_exact(&g),
                "n={n}"
            );
        }
    }

    #[test]
    fn brute_bounds_accept_real_runs_and_reject_padding() {
        let g = gen::cycle(9);
        let run = registry()
            .get("mis/greedy")
            .unwrap()
            .execute(&g, &RunSpec::new(0));
        assert_eq!(check_brute_bounds(&g, &run.solution), Ok(()));
        // A "matching" bigger than ν is caught even if someone broke the
        // validator that should have rejected it first.
        let padded = Solution::Matching {
            in_matching: vec![true; 9],
        };
        assert!(check_brute_bounds(&g, &padded).is_err());
        // An undersized maximal matching claim is caught too.
        let starved = Solution::Matching {
            in_matching: vec![false; 9],
        };
        assert!(check_brute_bounds(&g, &starved).is_err());
    }

    #[test]
    fn metrics_oracle_matches_metrics_rs() {
        let mut rng = Rng::seed_from(5);
        let g = gen::random_regular(24, 4, &mut rng).unwrap();
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree() || algo.requires_tree() {
                continue;
            }
            let run = algo.execute(&g, &RunSpec::new(2));
            check_metrics(&g, &run).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        }
    }

    #[test]
    fn metrics_oracle_detects_a_tampered_ledger() {
        let g = gen::path(4);
        let mut run = registry()
            .get("mis/greedy")
            .unwrap()
            .execute(&g, &RunSpec::new(0));
        // Push one commit past the recorded round total: the chain check
        // must notice even though the fast path recomputes consistently.
        run.transcript.node_commit_round[2] = run.transcript.rounds + 5;
        assert!(check_metrics(&g, &run).is_err());
    }

    #[test]
    fn incomplete_transcript_is_an_error_not_a_panic() {
        let g = gen::path(3);
        let t: Transcript<(), ()> = Transcript::empty(OutputKind::NodeLabels, 3, 2);
        assert!(completion_times(&g, &t).is_err());
    }
}
