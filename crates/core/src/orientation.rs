//! Sinkless orientation (paper §3.3, Theorem 6, and the randomized
//! counterpart of §1.2/\[GS17a\]).
//!
//! A *sinkless orientation* directs every edge so that every node has
//! out-degree at least 1 (the problem is defined on graphs of minimum
//! degree 3). Deterministically the worst case is Θ(log n) even on
//! 3-regular graphs \[BFH+16\]; the paper's Theorem 6 shows the
//! node-averaged complexity is nevertheless only O(log* n).
//!
//! Two algorithms:
//!
//! * [`randomized`] — proposal contests in the spirit of \[GS17a\]: every
//!   unsatisfied node claims a random unoriented edge each iteration, with
//!   a *grant rule* that keeps every unsatisfied node at least two
//!   unoriented edges (so nobody can be starved into a sink). After O(1)
//!   iterations the unsatisfied residue is tiny; it is finished by the
//!   structural cycle-orientation rule below, whose cost is charged per
//!   node as the ball radius actually needed (the LOCAL-model equivalence
//!   of §2: a T-round algorithm ≡ a function of the radius-T view).
//! * [`deterministic`] — Theorem 6's algorithm with its contraction-level
//!   cost accounting implemented exactly as the paper's proof charges it:
//!   each node picks 3 edges (unreciprocated picks act as the paper's
//!   *self-loops* = free outs); short cycles (≤ 6r) take the *preferred
//!   orientation of their smallest-id containing cycle* (conflict-free by
//!   the paper's argument); the remaining high-girth 3-regular structure
//!   is clustered around a (2r+1)-independent set, cluster interiors
//!   orient toward the kept exit paths, and the cluster graph recurses as
//!   a virtual graph where one virtual round costs `4r+4` real rounds.
//!   The few final virtual nodes are finished by the ball-growing rule.
//!
//! See DESIGN.md ("Theorem 6 contraction levels") for the accounting and
//! substitution notes: the clustering MIS uses a measured greedy sweep
//! instead of Linial's constant-heavy O(log* n) procedure.

use localavg_graph::analysis::Orientation;
use localavg_graph::{analysis, EdgeId, Graph, NodeId};
use localavg_sim::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

/// Result of a sinkless orientation run.
#[derive(Debug, Clone)]
pub struct OrientationRun {
    /// Full transcript with per-edge commit clocks.
    pub transcript: Transcript<(), Orientation>,
    /// The orientation of every edge.
    pub orientation: Vec<Orientation>,
}

impl OrientationRun {
    /// Total rounds (worst-case complexity of the run).
    pub fn worst_case(&self) -> Round {
        self.transcript.rounds
    }
}

// ---------------------------------------------------------------------------
// Shared ledger for structurally-accounted phases
// ---------------------------------------------------------------------------

/// Collects orientations and commit clocks, then becomes a transcript.
struct Ledger {
    orient: Vec<Option<Orientation>>,
    clock: Vec<usize>,
    node_clock: Vec<usize>,
}

impl Ledger {
    fn new(g: &Graph) -> Self {
        Ledger {
            orient: vec![None; g.m()],
            clock: vec![0; g.m()],
            node_clock: vec![0; g.n()],
        }
    }

    fn set(&mut self, e: EdgeId, o: Orientation, clock: usize) {
        assert!(
            self.orient[e].is_none(),
            "edge {e} oriented twice — construction bug"
        );
        self.orient[e] = Some(o);
        self.clock[e] = clock;
    }

    fn is_set(&self, e: EdgeId) -> bool {
        self.orient[e].is_some()
    }

    fn decide_node(&mut self, v: NodeId, clock: usize) {
        if self.node_clock[v] == 0 {
            self.node_clock[v] = clock;
        }
    }

    fn into_transcript(self, g: &Graph, policy: TranscriptPolicy) -> Transcript<(), Orientation> {
        let mut t: Transcript<(), Orientation> =
            Transcript::empty(OutputKind::EdgeLabels, g.n(), g.m());
        let mut max_clock = 0usize;
        for e in 0..g.m() {
            let o = self.orient[e].unwrap_or_else(|| panic!("edge {e} never oriented"));
            t.edge_output[e] = Some(o);
            t.edge_commit_round[e] = self.clock[e];
            max_clock = max_clock.max(self.clock[e]);
        }
        // A node terminates when its last incident edge commits.
        for v in g.nodes() {
            let last = g
                .neighbors(v)
                .iter()
                .map(|&(_, e)| self.clock[e])
                .max()
                .unwrap_or(0);
            t.node_halt_round[v] = last;
        }
        t.rounds = max_clock;
        // Hand-built transcripts carry the same live-frontier ledger the
        // engine records — rebuilt from the halt rounds in O(n + rounds).
        t.rebuild_live_ledger();
        // The structural accounting proves the construction exchanges no
        // messages, so an audited run is *silently* audited: peak
        // `Some(0)` under Full, `None` (audit skipped) otherwise —
        // mirroring what the round engine records for each policy.
        if policy.records_audit() {
            t.record_silent_audit();
        }
        t
    }
}

// ---------------------------------------------------------------------------
// Randomized sinkless orientation
// ---------------------------------------------------------------------------

/// Messages of the randomized phase-1 process.
#[derive(Debug, Clone, PartialEq)]
pub enum SoMsg {
    /// Claim the shared edge outward (with a tie-break coin).
    Propose(u64),
    /// Grant the proposer's claim.
    Grant,
    /// The shared edge is now oriented away from the sender.
    Orient,
    /// The sender is satisfied (has an out-edge).
    Satisfied,
}

impl MessageSize for SoMsg {
    fn size_bits(&self) -> usize {
        match self {
            SoMsg::Propose(_) => 2 + 64,
            _ => 2,
        }
    }
}

/// Proposal-contest phase: runs a fixed number of 3-round iterations.
struct RandOrient {
    iterations: usize,
    satisfied: bool,
    oriented: Vec<bool>,
    nbr_satisfied: Vec<bool>,
    proposal: Option<usize>,
    coin: u64,
    proposers: Vec<Option<u64>>,
}

impl RandOrient {
    fn unoriented_count(&self) -> usize {
        self.oriented.iter().filter(|&&o| !o).count()
    }

    fn propose_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<SoMsg>]) {
        self.absorb_with_commit(ctx, inbox);
        self.proposers.iter_mut().for_each(|p| *p = None);
        self.proposal = None;
        if self.satisfied {
            return;
        }
        // Free grab: an unoriented edge toward a satisfied neighbor.
        let free = ctx
            .ports()
            .find(|&p| !self.oriented[p] && self.nbr_satisfied[p]);
        if let Some(p) = free {
            self.take_out_edge(ctx, p);
            return;
        }
        // Contest: claim a random unoriented edge.
        let candidates: Vec<usize> = ctx.ports().filter(|&p| !self.oriented[p]).collect();
        if candidates.is_empty() {
            return; // residue; resolved by the structural finisher
        }
        let p = *ctx.rng().choose(&candidates);
        self.coin = ctx.rng().next_u64();
        self.proposal = Some(p);
        ctx.send(p, SoMsg::Propose(self.coin));
    }

    fn grant_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<SoMsg>]) {
        for env in inbox {
            if let SoMsg::Propose(c) = env.msg {
                self.proposers[env.port] = Some(c);
            }
        }
        // An unsatisfied node must keep at least 2 unoriented edges even if
        // every grant succeeds, so its grant *budget* this round is
        // `unoriented - 2` (minus one more if it might win its own mutual
        // contest simultaneously).
        let mut budget = if self.satisfied {
            usize::MAX
        } else {
            self.unoriented_count()
                .saturating_sub(2)
                .saturating_sub(usize::from(self.proposal.is_some()))
        };
        for port in ctx.ports() {
            let Some(their_coin) = self.proposers[port] else {
                continue;
            };
            let mutual = self.proposal == Some(port);
            if mutual && (self.coin, ctx.id()) > (their_coin, ctx.neighbor_id(port)) {
                continue; // we win the mutual contest; no grant
            }
            if budget == 0 {
                continue;
            }
            budget = budget.saturating_sub(1);
            ctx.send(port, SoMsg::Grant);
        }
    }

    fn resolve_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<SoMsg>]) {
        let Some(p) = self.proposal else {
            return;
        };
        let granted = inbox
            .iter()
            .any(|env| env.port == p && matches!(env.msg, SoMsg::Grant));
        if granted && !self.oriented[p] {
            self.take_out_edge(ctx, p);
        }
    }

    /// Orients port `p` outward, commits, and announces.
    fn take_out_edge(&mut self, ctx: &mut Ctx<'_, Self>, p: usize) {
        self.oriented[p] = true;
        self.satisfied = true;
        let away = ctx.orientation_away_from_self(p);
        ctx.commit_edge(p, away);
        ctx.send(p, SoMsg::Orient);
        ctx.broadcast(SoMsg::Satisfied);
    }

    fn absorb_with_commit(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<SoMsg>]) {
        for env in inbox {
            match env.msg {
                SoMsg::Orient => {
                    if !self.oriented[env.port] {
                        self.oriented[env.port] = true;
                        let toward_me = ctx.orientation_toward_self(env.port);
                        ctx.commit_edge(env.port, toward_me);
                    }
                    self.nbr_satisfied[env.port] = true;
                }
                SoMsg::Satisfied => self.nbr_satisfied[env.port] = true,
                _ => {}
            }
        }
    }
}

/// Helper extension: compute [`Orientation`] labels relative to self.
trait OrientExt {
    fn orientation_away_from_self(&self, port: usize) -> Orientation;
    fn orientation_toward_self(&self, port: usize) -> Orientation;
}

impl OrientExt for Ctx<'_, RandOrient> {
    fn orientation_away_from_self(&self, port: usize) -> Orientation {
        let me = self.id();
        let other = self.neighbor_id(port);
        if me < other {
            Orientation::Forward
        } else {
            Orientation::Backward
        }
    }

    fn orientation_toward_self(&self, port: usize) -> Orientation {
        match self.orientation_away_from_self(port) {
            Orientation::Forward => Orientation::Backward,
            Orientation::Backward => Orientation::Forward,
        }
    }
}

impl Process for RandOrient {
    type Message = SoMsg;
    type NodeOutput = ();
    type EdgeOutput = Orientation;
    type Params = usize; // number of contest iterations

    const OUTPUT_KIND: OutputKind = OutputKind::EdgeLabels;

    fn init(iterations: &usize, ctx: &mut Ctx<'_, Self>) -> Self {
        let degree = ctx.degree();
        let mut state = RandOrient {
            iterations: *iterations,
            satisfied: false,
            oriented: vec![false; degree],
            nbr_satisfied: vec![false; degree],
            proposal: None,
            coin: 0,
            proposers: vec![None; degree],
        };
        state.propose_phase(ctx, &[]);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<SoMsg>]) {
        if ctx.round() >= 3 * self.iterations {
            // End of the message phase: absorb stragglers and stop.
            self.absorb_with_commit(ctx, inbox);
            ctx.halt();
            return;
        }
        match ctx.round() % 3 {
            0 => self.propose_phase(ctx, inbox),
            1 => self.grant_phase(ctx, inbox),
            _ => self.resolve_phase(ctx, inbox),
        }
    }
}

/// Runs the randomized sinkless orientation: contest phase plus the
/// structural ball-growing finisher (see module docs).
///
/// # Panics
///
/// Panics if the graph has minimum degree `< 3` (the problem's domain) or
/// the produced orientation fails validation.
///
/// # Example
///
/// ```
/// use localavg_graph::{analysis, gen, rng::Rng};
/// use localavg_core::orientation;
///
/// let mut rng = Rng::seed_from(5);
/// let g = gen::random_regular(64, 3, &mut rng).expect("graph");
/// let run = orientation::randomized(&g, 11);
/// assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
/// ```
pub fn randomized(g: &Graph, seed: u64) -> OrientationRun {
    randomized_spec(
        g,
        &RunSpec::new(seed),
        &RandOrientParams::default(),
        &mut Workspace::new(),
    )
}

/// Tuning parameters of the randomized orientation (`"orientation/rand"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandOrientParams {
    /// Proposal-contest iterations before the structural finisher takes
    /// over; more iterations shrink the residue the finisher pays for.
    /// Must be at least 1.
    pub contest_iterations: usize,
}

impl Default for RandOrientParams {
    fn default() -> Self {
        RandOrientParams {
            contest_iterations: 8,
        }
    }
}

/// [`randomized`] under an explicit [`RunSpec`], with tunable parameters
/// and reusable [`Workspace`] arenas (the workspace serves the contest
/// phase; the structural finisher allocates its own ledger).
pub fn randomized_spec(
    g: &Graph,
    spec: &RunSpec,
    params: &RandOrientParams,
    ws: &mut Workspace,
) -> OrientationRun {
    assert!(
        g.n() == 0 || g.min_degree() >= 3,
        "sinkless orientation requires minimum degree 3"
    );
    let t = spec.run_in::<RandOrient>(g, &params.contest_iterations, ws);

    // Transfer the phase-1 commits into the ledger, then finish structurally.
    let mut ledger = Ledger::new(g);
    for e in 0..g.m() {
        if let Some(o) = t.edge_output[e] {
            ledger.set(e, o, t.edge_commit_round[e]);
        }
    }
    let base = t.rounds;
    finish_structurally(g, &mut ledger, base);
    finalize(g, ledger, spec.transcript)
}

/// [`randomized`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `randomized_spec(g, &RunSpec::new(seed).with_exec(exec), ..)`")]
pub fn randomized_exec(g: &Graph, seed: u64, exec: Exec) -> OrientationRun {
    randomized_spec(
        g,
        &RunSpec::new(seed).with_exec(exec),
        &RandOrientParams::default(),
        &mut Workspace::new(),
    )
}

/// Completes any partial orientation: satisfied-neighbor waves, then the
/// cycle rule on the min-degree-2 unsatisfied residue.
fn finish_structurally(g: &Graph, ledger: &mut Ledger, base: usize) {
    let out_deg = |g: &Graph, ledger: &Ledger, v: NodeId| {
        g.neighbors(v)
            .iter()
            .filter(|&&(_, e)| ledger.orient[e].map(|o| o.tail(g, e) == v) == Some(true))
            .count()
    };
    let mut satisfied: Vec<bool> = g
        .nodes()
        .map(|v| g.degree(v) == 0 || out_deg(g, ledger, v) >= 1)
        .collect();
    for v in g.nodes() {
        if satisfied[v] && ledger.node_clock[v] == 0 {
            ledger.decide_node(v, base);
        }
    }

    // Wave phase: unoriented edges with a satisfied endpoint orient away
    // from the unsatisfied one (or by id when both are satisfied later).
    let mut clock = base;
    loop {
        clock += 1;
        let mut changed = false;
        for v in g.nodes() {
            if satisfied[v] {
                continue;
            }
            let free = g
                .neighbors(v)
                .iter()
                .find(|&&(u, e)| !ledger.is_set(e) && satisfied[u]);
            if let Some(&(_, e)) = free {
                ledger.set(e, Orientation::away_from(g, e, v), clock);
                satisfied[v] = true;
                ledger.decide_node(v, clock);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Residue: unsatisfied nodes whose unoriented edges all lead to
    // unsatisfied nodes. The residue has minimum degree >= 2, so every
    // component contains a cycle: orient trees toward a cycle and the
    // cycle around itself.
    let residue: Vec<NodeId> = g.nodes().filter(|&v| !satisfied[v]).collect();
    if !residue.is_empty() {
        let keep: Vec<bool> = g.nodes().map(|v| !satisfied[v]).collect();
        orient_toward_cycles(g, &keep, ledger, clock);
    }

    // Defaults: everything else orients higher id -> lower id once both
    // endpoints are decided.
    for (e, u, v) in g.edges() {
        if !ledger.is_set(e) {
            let c = ledger.node_clock[u].max(ledger.node_clock[v]).max(clock) + 1;
            ledger.set(e, Orientation::away_from(g, e, u.max(v)), c);
        }
    }
}

/// Orients the subgraph induced by `keep` (every kept node must have >= 2
/// kept unoriented neighbors) so that every kept node gets an out-edge:
/// per component, find a cycle via BFS, orient it consistently, and point
/// BFS trees toward it. Charges each node `dist + cycle length` clock
/// ticks — the radius a LOCAL algorithm would need (§2's equivalence).
fn orient_toward_cycles(g: &Graph, keep: &[bool], ledger: &mut Ledger, base: usize) {
    let mut visited = vec![false; g.n()];
    for start in g.nodes().filter(|&v| keep[v]) {
        if visited[start] {
            continue;
        }
        // Collect the component over kept nodes and unoriented edges.
        let mut comp = Vec::new();
        let mut queue = VecDeque::from([start]);
        visited[start] = true;
        while let Some(v) = queue.pop_front() {
            comp.push(v);
            for &(u, e) in g.neighbors(v) {
                if keep[u] && !ledger.is_set(e) && !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
        // BFS from the minimum-id node until a non-tree edge closes a cycle.
        let root = *comp.iter().min().expect("nonempty component");
        let mut parent: HashMap<NodeId, (NodeId, EdgeId)> = HashMap::new();
        let mut depth: HashMap<NodeId, usize> = HashMap::new();
        depth.insert(root, 0);
        let mut q = VecDeque::from([root]);
        let mut cycle_edge: Option<(NodeId, NodeId, EdgeId)> = None;
        'bfs: while let Some(v) = q.pop_front() {
            for &(u, e) in g.neighbors(v) {
                if !keep[u] || ledger.is_set(e) {
                    continue;
                }
                if let Some(&(_, pe)) = parent.get(&v) {
                    if pe == e {
                        continue;
                    }
                }
                if depth.contains_key(&u) {
                    cycle_edge = Some((v, u, e));
                    break 'bfs;
                }
                depth.insert(u, depth[&v] + 1);
                parent.insert(u, (v, e));
                q.push_back(u);
            }
        }
        let (x, y, closing) = cycle_edge.expect("min-degree-2 residue component has a cycle");
        // Reconstruct the cycle: paths from x and y to their meeting point.
        let path_to_root = |mut v: NodeId| {
            let mut path = vec![v];
            while let Some(&(p, _)) = parent.get(&v) {
                v = p;
                path.push(v);
            }
            path
        };
        let px = path_to_root(x);
        let py = path_to_root(y);
        let sx: HashSet<NodeId> = px.iter().copied().collect();
        let meet = *py.iter().find(|v| sx.contains(v)).expect("common ancestor");
        let mut cycle: Vec<NodeId> = px.iter().take_while(|&&v| v != meet).copied().collect();
        cycle.push(meet);
        let mut back: Vec<NodeId> = py.iter().take_while(|&&v| v != meet).copied().collect();
        back.reverse();
        cycle.extend(back);
        let clen = cycle.len();
        // Orient the cycle around: cycle[i] -> cycle[i+1], closing via `closing`.
        let cycle_clock = base + clen + 1;
        for i in 0..clen {
            let a = cycle[i];
            let b = cycle[(i + 1) % clen];
            let e = if i + 1 == clen {
                closing
            } else {
                // consecutive on tree paths: the parent edge between them
                parent
                    .get(&cycle[i])
                    .filter(|&&(p, _)| p == b)
                    .map(|&(_, e)| e)
                    .or_else(|| {
                        parent
                            .get(&cycle[(i + 1) % clen])
                            .filter(|&&(p, _)| p == a)
                            .map(|&(_, e)| e)
                    })
                    .unwrap_or_else(|| g.find_edge(a, b).expect("cycle edge exists"))
            };
            if !ledger.is_set(e) {
                ledger.set(e, Orientation::away_from(g, e, a), cycle_clock);
            }
            ledger.decide_node(a, cycle_clock);
        }
        // Multi-source BFS from the cycle; tree edges orient child -> parent.
        let mut dist: HashMap<NodeId, usize> = cycle.iter().map(|&v| (v, 0)).collect();
        let mut q2: VecDeque<NodeId> = cycle.iter().copied().collect();
        while let Some(v) = q2.pop_front() {
            for &(u, e) in g.neighbors(v) {
                if !keep[u] || ledger.is_set(e) || dist.contains_key(&u) {
                    continue;
                }
                dist.insert(u, dist[&v] + 1);
                let c = base + clen + 1 + dist[&u];
                ledger.set(e, Orientation::away_from(g, e, u), c);
                ledger.decide_node(u, c);
                q2.push_back(u);
            }
        }
    }
}

fn finalize(g: &Graph, ledger: Ledger, policy: TranscriptPolicy) -> OrientationRun {
    let t = ledger.into_transcript(g, policy);
    let orientation = t.edge_labels();
    assert!(
        analysis::is_sinkless_orientation(g, &orientation),
        "produced orientation has a sink"
    );
    OrientationRun {
        transcript: t,
        orientation,
    }
}

// ---------------------------------------------------------------------------
// Theorem 6: deterministic sinkless orientation with contraction levels
// ---------------------------------------------------------------------------

/// A virtual edge: a path of original edges between two virtual nodes.
#[derive(Debug, Clone)]
struct VEdge {
    a: usize,
    /// `None` = free port of `a` (the paper's "self-loop": orientable
    /// outward by `a` at any time).
    b: Option<usize>,
    /// Original edges along the path from the `a` side; `bool` = walk
    /// direction agrees with the stored endpoint order (`Forward`).
    path: Vec<(EdgeId, bool)>,
    /// Original nodes strictly inside the path.
    inner: Vec<NodeId>,
}

impl VEdge {
    /// Orients the whole path away from one side.
    fn orient(&self, ledger: &mut Ledger, from_a: bool, clock: usize) {
        let seq: Vec<(EdgeId, bool)> = if from_a {
            self.path.clone()
        } else {
            self.path.iter().rev().map(|&(e, s)| (e, !s)).collect()
        };
        for (e, sense) in seq {
            if !ledger.is_set(e) {
                let o = if sense {
                    Orientation::Forward
                } else {
                    Orientation::Backward
                };
                ledger.set(e, o, clock);
            }
        }
        for &v in &self.inner {
            ledger.decide_node(v, clock);
        }
    }
}

#[derive(Debug, Clone)]
struct VGraph {
    /// host original node per vnode.
    host: Vec<NodeId>,
    /// ports\[v\] = indices into `vedges` (1..=3 per vnode).
    ports: Vec<Vec<usize>>,
    vedges: Vec<VEdge>,
}

impl VGraph {
    fn other(&self, ve: usize, v: usize) -> Option<usize> {
        let edge = &self.vedges[ve];
        if edge.a == v {
            edge.b
        } else {
            Some(edge.a)
        }
    }
}

/// Outcome of a level solve for the caller: orientation (from-a?) and
/// clock per vedge, and decision clock per vnode.
struct LevelResult {
    vedge_dir: Vec<Option<(bool, usize)>>,
    vnode_clock: Vec<usize>,
}

/// Parameters of the deterministic algorithm.
#[derive(Debug, Clone, Copy)]
pub struct DetOrientParams {
    /// The paper's constant `r` (cycle threshold `6r`, cluster radius
    /// `2r+1`, stretch `4r+4`). The paper takes `r >= 15` for its constant
    /// bounds; `r = 2` keeps the measured constants small while preserving
    /// every structural property (the girth argument needs `r >= 2`).
    pub r: usize,
    /// Recursion cutoff: virtual graphs at most this large go straight to
    /// the ball-growing finisher.
    pub finish_threshold: usize,
    /// Hard cap on recursion depth.
    pub max_depth: usize,
}

impl Default for DetOrientParams {
    fn default() -> Self {
        DetOrientParams {
            r: 2,
            finish_threshold: 48,
            max_depth: 12,
        }
    }
}

/// Runs Theorem 6's deterministic sinkless orientation.
///
/// # Panics
///
/// Panics if the graph is nonempty with minimum degree `< 3`, or if the
/// produced orientation fails validation.
///
/// # Example
///
/// ```
/// use localavg_graph::{analysis, gen, rng::Rng};
/// use localavg_core::orientation::{deterministic, DetOrientParams};
///
/// let mut rng = Rng::seed_from(9);
/// let g = gen::random_regular(64, 3, &mut rng).expect("graph");
/// let run = deterministic(&g, DetOrientParams::default());
/// assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
/// ```
pub fn deterministic(g: &Graph, params: DetOrientParams) -> OrientationRun {
    deterministic_with(g, params, TranscriptPolicy::default())
}

/// [`deterministic`] under an explicit [`TranscriptPolicy`] — the only
/// part of a [`RunSpec`] that affects a structurally-assembled transcript
/// (there is no round engine to parallelize or seed). Under an audited
/// policy the transcript carries a silent audit (peak `Some(0)`);
/// otherwise the audit columns stay empty, like an engine run under the
/// same policy.
pub fn deterministic_with(
    g: &Graph,
    params: DetOrientParams,
    policy: TranscriptPolicy,
) -> OrientationRun {
    assert!(
        g.n() == 0 || g.min_degree() >= 3,
        "sinkless orientation requires minimum degree 3"
    );
    let mut ledger = Ledger::new(g);

    // Level 0: every node picks its 3 smallest incident edges (the paper's
    // degree-3 truncation). Mutual picks are links; one-sided picks act as
    // the paper's self-loops (free ports); unpicked edges default later.
    let mut picks: Vec<Vec<EdgeId>> = g
        .nodes()
        .map(|v| {
            let mut es: Vec<EdgeId> = g.neighbors(v).iter().map(|&(_, e)| e).collect();
            es.sort_unstable();
            es.truncate(3);
            es
        })
        .collect();
    let mut vedges = Vec::new();
    let mut ports: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
    let mut seen: HashMap<EdgeId, usize> = HashMap::new();
    for v in g.nodes() {
        let list = std::mem::take(&mut picks[v]);
        for e in list {
            let (x, y) = g.endpoints(e);
            let other = if x == v { y } else { x };
            let mutual_pick = {
                let mut os: Vec<EdgeId> = g.neighbors(other).iter().map(|&(_, ee)| ee).collect();
                os.sort_unstable();
                os.truncate(3);
                os.contains(&e)
            };
            if let Some(&idx) = seen.get(&e) {
                let _ = idx; // already created by the other endpoint
                if mutual_pick {
                    ports[v].push(idx_for(&seen, e));
                }
                continue;
            }
            let sense_from_v = x == v;
            let idx = vedges.len();
            vedges.push(VEdge {
                a: v,
                b: if mutual_pick { Some(other) } else { None },
                path: vec![(e, sense_from_v)],
                inner: Vec::new(),
            });
            seen.insert(e, idx);
            ports[v].push(idx);
        }
    }
    let vg = VGraph {
        host: g.nodes().collect(),
        ports,
        vedges,
    };

    let mut result = LevelResult {
        vedge_dir: vec![None; vg.vedges.len()],
        vnode_clock: vec![0; vg.host.len()],
    };
    solve_level(&vg, &params, 1, 0, 0, &mut ledger, &mut result);

    // Decide node clocks from vnode clocks.
    for (v, &c) in result.vnode_clock.iter().enumerate() {
        ledger.decide_node(vg.host[v], c);
    }
    // Default-orient the never-picked original edges.
    let final_clock = result.vnode_clock.iter().copied().max().unwrap_or(0);
    for (e, u, v) in g.edges() {
        if !ledger.is_set(e) {
            let c = ledger.node_clock[u].max(ledger.node_clock[v]).max(1) + 1;
            ledger.set(e, Orientation::away_from(g, e, u.max(v)), c);
        }
    }
    let _ = final_clock;
    finalize(g, ledger, policy)
}

fn idx_for(seen: &HashMap<EdgeId, usize>, e: EdgeId) -> usize {
    *seen.get(&e).expect("vedge exists")
}

/// One level of Theorem 6's recursion. Fills `result` with the direction
/// and clock of every vedge and the decision clock of every vnode.
#[allow(clippy::too_many_arguments)]
fn solve_level(
    vg: &VGraph,
    params: &DetOrientParams,
    stretch: usize,
    clock: usize,
    depth: usize,
    ledger: &mut Ledger,
    result: &mut LevelResult,
) {
    let n = vg.host.len();
    let r = params.r;
    let mut decided = vec![false; n];
    let mut clock_now = clock;

    // --- Free-port waves: free ports and links to decided vnodes are outs.
    loop {
        clock_now += stretch;
        let mut changed = false;
        for v in 0..n {
            if decided[v] {
                continue;
            }
            let out = vg.ports[v].iter().copied().find(|&ve| {
                result.vedge_dir[ve].is_none()
                    && match vg.other(ve, v) {
                        None => true,
                        Some(u) => decided[u],
                    }
            });
            if let Some(ve) = out {
                orient_vedge(vg, ve, v, clock_now, ledger, result);
                decided[v] = true;
                result.vnode_clock[v] = clock_now;
                changed = true;
            }
        }
        if !changed {
            clock_now -= stretch;
            break;
        }
    }

    // --- Short cycles (length <= 6r) among links of undecided vnodes.
    let cycle_clock = clock_now + 6 * r * stretch;
    let cycles = short_cycle_orientations(vg, &decided, result, 6 * r);
    if !cycles.is_empty() {
        for (ve, from_side) in cycles {
            if result.vedge_dir[ve].is_none() {
                orient_vedge(vg, ve, from_side, cycle_clock, ledger, result);
            }
        }
        for (v, d) in decided.iter_mut().enumerate() {
            if !*d && has_outward(vg, v, result) {
                *d = true;
                result.vnode_clock[v] = cycle_clock;
            }
        }
        clock_now = cycle_clock;
        // New decided vnodes unlock more waves.
        loop {
            clock_now += stretch;
            let mut changed = false;
            for v in 0..n {
                if decided[v] {
                    continue;
                }
                let out = vg.ports[v].iter().copied().find(|&ve| {
                    result.vedge_dir[ve].is_none()
                        && match vg.other(ve, v) {
                            None => true,
                            Some(u) => decided[u],
                        }
                });
                if let Some(ve) = out {
                    orient_vedge(vg, ve, v, clock_now, ledger, result);
                    decided[v] = true;
                    result.vnode_clock[v] = clock_now;
                    changed = true;
                }
            }
            if !changed {
                clock_now -= stretch;
                break;
            }
        }
    }

    let remaining: Vec<usize> = (0..n).filter(|&v| !decided[v]).collect();
    if remaining.is_empty() {
        default_orient_level(vg, clock_now + stretch, ledger, result);
        return;
    }

    // A vnode on the undecided residue has all 3 ports as links to other
    // undecided vnodes (anything else was a wave-out).
    if remaining.len() <= params.finish_threshold || depth >= params.max_depth {
        ball_finisher(vg, &decided, stretch, clock_now, ledger, result);
        default_orient_level(vg, result_max_clock(result) + stretch, ledger, result);
        return;
    }

    // --- Clustering: greedy (2r+1)-independent centers via measured sweeps.
    let radius = 2 * r + 1;
    let (centers, sweep_rounds) = greedy_power_mis(vg, &decided, radius);
    let mis_clock = clock_now + sweep_rounds * radius * stretch;

    // Assign every undecided vnode to its closest center (tie: smaller id).
    let assignment = assign_clusters(vg, &decided, &centers, radius);

    // Cluster adjacency via linking vedges (unique per pair: no short cycles).
    let mut cluster_links: HashMap<(usize, usize), usize> = HashMap::new();
    for (ve_idx, ve) in vg.vedges.iter().enumerate() {
        let (Some(b), a) = (ve.b, ve.a) else { continue };
        if decided[a] || decided[b] {
            continue;
        }
        let (ca, cb) = (assignment[&a], assignment[&b]);
        if ca != cb {
            let key = (ca.min(cb), ca.max(cb));
            cluster_links.entry(key).or_insert(ve_idx);
        }
    }
    let mut neighbors_of: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
    for (&(ca, cb), &ve) in &cluster_links {
        neighbors_of.entry(ca).or_default().push((cb, ve));
        neighbors_of.entry(cb).or_default().push((ca, ve));
    }
    // Every cluster needs 3 neighbors to keep the 3-regular recursion going.
    let all_have_three = centers
        .iter()
        .all(|c| neighbors_of.get(c).map_or(0, Vec::len) >= 3);
    if !all_have_three {
        ball_finisher(vg, &decided, stretch, mis_clock, ledger, result);
        default_orient_level(vg, result_max_clock(result) + stretch, ledger, result);
        return;
    }

    // Each cluster picks its 3 smallest neighbor clusters.
    let mut picked: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
    for &c in &centers {
        let mut nb = neighbors_of[&c].clone();
        nb.sort_unstable();
        nb.dedup();
        nb.truncate(3);
        picked.insert(c, nb);
    }

    // Build cluster interiors: BFS tree from the center over its members.
    let cluster_clock = mis_clock + radius * stretch;
    let interiors = build_interiors(vg, &decided, &assignment, &centers);

    // Kept trees: union of the BFS paths from each picked boundary vnode up
    // to the center. Everything else in the cluster orients toward its BFS
    // parent now.
    let mut kept: HashSet<usize> = HashSet::new();
    let mut exit_leaf: HashMap<(usize, usize), usize> = HashMap::new(); // (cluster, vedge) -> boundary vnode
    for &c in &centers {
        for &(_, link_ve) in &picked[&c] {
            let ve = &vg.vedges[link_ve];
            let b = ve.b.expect("link vedge");
            let boundary = if assignment[&ve.a] == c { ve.a } else { b };
            exit_leaf.insert((c, link_ve), boundary);
            // Walk boundary -> center via BFS parents, keeping nodes.
            let mut cur = boundary;
            kept.insert(cur);
            while cur != c {
                let (p, _) = interiors.parent[&cur];
                kept.insert(p);
                cur = p;
            }
        }
    }
    for v in &remaining {
        let v = *v;
        if kept.contains(&v) || centers.contains(&v) {
            continue;
        }
        // Orient the BFS-parent vedge away from v: decided now.
        let (_, pe) = interiors.parent[&v];
        if result.vedge_dir[pe].is_none() {
            orient_vedge(vg, pe, v, cluster_clock, ledger, result);
        }
        decided[v] = true;
        result.vnode_clock[v] = cluster_clock;
    }

    // Virtual graph of clusters. Ports: mutual picks are links, one-sided
    // picks are free (the far side's boundary is decided at this level).
    let center_index: HashMap<usize, usize> = centers.iter().copied().zip(0..).collect();
    let mut next_vedges: Vec<VEdge> = Vec::new();
    let mut next_ports: Vec<Vec<usize>> = vec![Vec::new(); centers.len()];
    let mut link_to_next: HashMap<usize, usize> = HashMap::new();
    for &c in &centers {
        for &(other_cluster, link_ve) in &picked[&c] {
            let mutual = picked[&other_cluster].iter().any(|&(cc, _)| cc == c);
            if let Some(&ni) = link_to_next.get(&link_ve) {
                next_ports[center_index[&c]].push(ni);
                continue;
            }
            let orig = &vg.vedges[link_ve];
            let ni = next_vedges.len();
            // The next-level vedge reuses the same original path; endpoints
            // become cluster indices. The `a` side stays the original `a`'s
            // cluster for sense consistency.
            let a_cluster = assignment[&orig.a];
            let b_cluster = assignment[&orig.b.expect("link")];
            let (na, nb) = (center_index[&a_cluster], center_index[&b_cluster]);
            next_vedges.push(VEdge {
                a: na,
                b: if mutual { Some(nb) } else { None },
                path: orig.path.clone(),
                inner: orig.inner.clone(),
            });
            // For a one-sided pick by `c`, the vedge's `a` side must be the
            // picking cluster so "orient from a" means outward.
            if !mutual {
                let pick_side = center_index[&c];
                if na != pick_side {
                    let last = next_vedges.last_mut().expect("just pushed");
                    last.a = pick_side;
                    last.b = None;
                    last.path = orig.path.iter().rev().map(|&(e, s)| (e, !s)).collect();
                }
            }
            link_to_next.insert(link_ve, ni);
            next_ports[center_index[&c]].push(ni);
        }
    }
    let next_vg = VGraph {
        host: centers.iter().map(|&c| vg.host[c]).collect(),
        ports: next_ports,
        vedges: next_vedges,
    };
    let mut next_result = LevelResult {
        vedge_dir: vec![None; next_vg.vedges.len()],
        vnode_clock: vec![0; next_vg.host.len()],
    };
    solve_level(
        &next_vg,
        params,
        stretch * (4 * r + 4),
        cluster_clock,
        depth + 1,
        ledger,
        &mut next_result,
    );

    // Unwind: each cluster's exit = a next-level port oriented away from it.
    for &c in &centers {
        let ci = center_index[&c];
        let exit = next_vg.ports[ci]
            .iter()
            .copied()
            .find(|&ni| {
                let (from_a, _) = next_result.vedge_dir[ni].expect("deeper level oriented all");

                if from_a {
                    next_vg.vedges[ni].a == ci
                } else {
                    next_vg.vedges[ni].b == Some(ci)
                }
            })
            .expect("virtual sinklessness: every cluster has an outward port");
        let (_, deep_clock) = next_result.vedge_dir[exit].expect("oriented");
        // Map the next-level vedge back to this level's link vedge.
        let link_ve = *link_to_next
            .iter()
            .find(|&(_, &ni)| ni == exit)
            .map(|(l, _)| l)
            .expect("exit maps to a link");
        let leaf = exit_leaf[&(c, link_ve)];
        // Orient the kept tree toward the exit leaf.
        let t_clock = deep_clock + stretch;
        orient_kept_tree(vg, &interiors, c, leaf, t_clock, ledger, result);
        for v in kept_nodes_of(&interiors, c, &kept) {
            if result.vnode_clock[v] == 0 {
                result.vnode_clock[v] = t_clock;
            }
            decided[v] = true;
        }
        result.vnode_clock[c] = t_clock;
        decided[c] = true;
    }

    // Port vedges of this level that the deeper level oriented: copy their
    // direction (the orientation itself already reached the ledger through
    // the shared path references).
    for (&link_ve, &ni) in &link_to_next {
        if result.vedge_dir[link_ve].is_none() {
            if let Some((from_a_next, cl)) = next_result.vedge_dir[ni] {
                // Translate: the next vedge's `a` side corresponds to this
                // vedge's `a` side iff the paths are stored in the same order.
                let same_order = next_vg.vedges[ni].path.first().map(|&(e, _)| e)
                    == vg.vedges[link_ve].path.first().map(|&(e, _)| e)
                    && next_vg.vedges[ni].path.first().map(|&(_, s)| s)
                        == vg.vedges[link_ve].path.first().map(|&(_, s)| s);
                let from_a = if same_order {
                    from_a_next
                } else {
                    !from_a_next
                };
                result.vedge_dir[link_ve] = Some((from_a, cl));
            }
        }
    }

    default_orient_level(vg, result_max_clock(result) + stretch, ledger, result);
}

fn result_max_clock(result: &LevelResult) -> usize {
    result
        .vnode_clock
        .iter()
        .copied()
        .chain(result.vedge_dir.iter().flatten().map(|&(_, c)| c))
        .max()
        .unwrap_or(0)
}

/// Orients vedge `ve` away from vnode `v`.
fn orient_vedge(
    vg: &VGraph,
    ve: usize,
    v: usize,
    clock: usize,
    ledger: &mut Ledger,
    result: &mut LevelResult,
) {
    let from_a = vg.vedges[ve].a == v;
    assert!(from_a || vg.vedges[ve].b == Some(v), "v not an endpoint");
    vg.vedges[ve].orient(ledger, from_a, clock);
    result.vedge_dir[ve] = Some((from_a, clock));
}

fn has_outward(vg: &VGraph, v: usize, result: &LevelResult) -> bool {
    vg.ports[v].iter().any(|&ve| match result.vedge_dir[ve] {
        Some((from_a, _)) => {
            if from_a {
                vg.vedges[ve].a == v
            } else {
                vg.vedges[ve].b == Some(v)
            }
        }
        None => false,
    })
}

/// Finds, per link vedge among undecided vnodes, the smallest containing
/// cycle of length `<= max_len`, and returns the orientation each such
/// vedge takes under the preferred orientation of its smallest cycle
/// (paper §B, proof of Theorem 6).
fn short_cycle_orientations(
    vg: &VGraph,
    decided: &[bool],
    result: &LevelResult,
    max_len: usize,
) -> Vec<(usize, usize)> {
    // Adjacency restricted to undecided link vedges.
    let usable = |ve: usize| {
        result.vedge_dir[ve].is_none()
            && vg.vedges[ve].b.is_some()
            && !decided[vg.vedges[ve].a]
            && !decided[vg.vedges[ve].b.expect("link")]
    };
    // Enumerate cycles by DFS from each vedge.
    // Cycle key: sorted vedge ids (the paper concatenates edge ids; any
    // injective canonical form works for consistent minimum selection).
    let mut best_cycle: HashMap<usize, Vec<usize>> = HashMap::new(); // vedge -> cycle key/seq? store vedge sequence
    let mut best_key: HashMap<usize, Vec<usize>> = HashMap::new();
    for start_ve in 0..vg.vedges.len() {
        if !usable(start_ve) {
            continue;
        }
        let a = vg.vedges[start_ve].a;
        let b = vg.vedges[start_ve].b.expect("link");
        // DFS from b back to a with <= max_len - 1 further vedges.
        let mut stack: Vec<(usize, Vec<usize>, Vec<usize>)> = vec![(b, vec![start_ve], vec![a, b])];
        while let Some((cur, ves, nodes)) = stack.pop() {
            if ves.len() > max_len {
                continue;
            }
            for &ve in &vg.ports[cur] {
                if !usable(ve) || ves.contains(&ve) {
                    continue;
                }
                let Some(nxt) = vg.other(ve, cur) else {
                    continue;
                };
                if nxt == a && ves.len() >= 2 {
                    // Found a cycle.
                    let mut cyc = ves.clone();
                    cyc.push(ve);
                    let mut key = cyc.clone();
                    key.sort_unstable();
                    for &cve in &cyc {
                        let better = match best_key.get(&cve) {
                            None => true,
                            Some(k) => key < *k,
                        };
                        if better {
                            best_key.insert(cve, key.clone());
                            best_cycle.insert(cve, cyc.clone());
                        }
                    }
                } else if !nodes.contains(&nxt) && ves.len() < max_len {
                    let mut nv = ves.clone();
                    nv.push(ve);
                    let mut nn = nodes.clone();
                    nn.push(nxt);
                    stack.push((nxt, nv, nn));
                }
            }
        }
    }
    // Preferred orientation per vedge from its own best cycle.
    let mut out = Vec::new();
    for (&ve, cyc) in &best_cycle {
        // The cycle is a vedge sequence starting and ending at the start
        // vedge's `a`; walk it to find the node sequence.
        let mut node_seq = Vec::with_capacity(cyc.len());
        let mut cur = vg.vedges[cyc[0]].a;
        node_seq.push(cur);
        for &cve in cyc {
            cur = vg.other(cve, cur).expect("cycle over links");
            node_seq.push(cur);
        }
        // Preferred orientation: the smallest vedge id in the cycle orients
        // from its smaller-host endpoint; the rest follow around.
        let min_ve = *cyc.iter().min().expect("nonempty cycle");
        let pos = cyc.iter().position(|&x| x == min_ve).expect("present");
        let (p, q) = (node_seq[pos], node_seq[pos + 1]);
        // Walk direction: node_seq order. Flip if the minimum vedge would
        // go from larger host to smaller.
        let forward = vg.host[p] < vg.host[q];
        let my_pos = cyc.iter().position(|&x| x == ve).expect("present");
        let (x, y) = (node_seq[my_pos], node_seq[my_pos + 1]);
        let from = if forward { x } else { y };
        out.push((ve, from));
    }
    out
}

/// Greedy maximal (radius)-independent set over the undecided link graph,
/// computed as a literal local-minimum sweep; returns the centers and the
/// number of sweep rounds the local algorithm needed.
fn greedy_power_mis(vg: &VGraph, decided: &[bool], radius: usize) -> (Vec<usize>, usize) {
    let n = vg.host.len();
    let ball = |v: usize| -> Vec<usize> {
        let mut dist = HashMap::new();
        dist.insert(v, 0usize);
        let mut q = VecDeque::from([v]);
        let mut out = vec![v];
        while let Some(x) = q.pop_front() {
            if dist[&x] == radius {
                continue;
            }
            for &ve in &vg.ports[x] {
                if vg.vedges[ve].b.is_none() {
                    continue;
                }
                let u = vg.other(ve, x).expect("link");
                if decided[u] || dist.contains_key(&u) {
                    continue;
                }
                dist.insert(u, dist[&x] + 1);
                out.push(u);
                q.push_back(u);
            }
        }
        out
    };
    #[derive(Clone, Copy, PartialEq)]
    enum S {
        Open,
        Member,
        Blocked,
    }
    let mut state = vec![S::Open; n];
    for v in 0..n {
        if decided[v] {
            state[v] = S::Blocked;
        }
    }
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut progress = false;
        let snapshot = state.clone();
        for v in 0..n {
            if snapshot[v] != S::Open || decided[v] {
                continue;
            }
            let b = ball(v);
            let am_min = b
                .iter()
                .all(|&u| u == v || snapshot[u] != S::Open || vg.host[u] > vg.host[v]);
            if am_min {
                let blocked = b.iter().any(|&u| u != v && snapshot[u] == S::Member);
                state[v] = if blocked { S::Blocked } else { S::Member };
                progress = true;
            }
        }
        if !progress {
            break;
        }
        if (0..n).all(|v| state[v] != S::Open) {
            break;
        }
        assert!(rounds < 4 * n + 16, "greedy sweep failed to converge");
    }
    let centers: Vec<usize> = (0..n).filter(|&v| state[v] == S::Member).collect();
    (centers, rounds)
}

/// Nearest-center assignment of every undecided vnode (ties: smaller
/// center id). Guaranteed within `radius` by maximality of the centers.
fn assign_clusters(
    vg: &VGraph,
    decided: &[bool],
    centers: &[usize],
    radius: usize,
) -> HashMap<usize, usize> {
    let mut assignment: HashMap<usize, usize> = HashMap::new();
    let mut dist: HashMap<usize, usize> = HashMap::new();
    let mut sorted_centers = centers.to_vec();
    sorted_centers.sort_unstable();
    let mut queue = VecDeque::new();
    for &c in &sorted_centers {
        assignment.insert(c, c);
        dist.insert(c, 0);
        queue.push_back(c);
    }
    while let Some(v) = queue.pop_front() {
        if dist[&v] == radius {
            continue;
        }
        for &ve in &vg.ports[v] {
            if vg.vedges[ve].b.is_none() {
                continue;
            }
            let u = vg.other(ve, v).expect("link");
            if decided[u] || dist.contains_key(&u) {
                continue;
            }
            dist.insert(u, dist[&v] + 1);
            assignment.insert(u, assignment[&v]);
            queue.push_back(u);
        }
    }
    assignment
}

/// Per-cluster BFS trees: parent pointers (vnode, vedge) toward the center.
struct Interiors {
    parent: HashMap<usize, (usize, usize)>,
}

fn build_interiors(
    vg: &VGraph,
    decided: &[bool],
    assignment: &HashMap<usize, usize>,
    centers: &[usize],
) -> Interiors {
    let mut parent = HashMap::new();
    for &c in centers {
        let mut q = VecDeque::from([c]);
        let mut seen: HashSet<usize> = HashSet::from([c]);
        while let Some(v) = q.pop_front() {
            for &ve in &vg.ports[v] {
                if vg.vedges[ve].b.is_none() {
                    continue;
                }
                let u = vg.other(ve, v).expect("link");
                if decided[u] || seen.contains(&u) || assignment.get(&u) != Some(&c) {
                    continue;
                }
                seen.insert(u);
                parent.insert(u, (v, ve));
                q.push_back(u);
            }
        }
    }
    Interiors { parent }
}

fn kept_nodes_of(interiors: &Interiors, center: usize, kept: &HashSet<usize>) -> Vec<usize> {
    // Kept nodes whose parent chain ends at `center`.
    kept.iter()
        .copied()
        .filter(|&v| {
            let mut cur = v;
            loop {
                match interiors.parent.get(&cur) {
                    None => return cur == center,
                    Some(&(p, _)) => cur = p,
                }
            }
        })
        .collect()
}

/// Orients the kept tree of `center` toward `leaf`: every tree vedge points
/// from the endpoint farther from `leaf` to the nearer one.
#[allow(clippy::too_many_arguments)]
fn orient_kept_tree(
    vg: &VGraph,
    interiors: &Interiors,
    center: usize,
    leaf: usize,
    clock: usize,
    ledger: &mut Ledger,
    result: &mut LevelResult,
) {
    // Path from leaf up to center: these vedges orient toward the leaf
    // (i.e., from the parent side toward the child side when walking down).
    let mut chain = Vec::new();
    let mut cur = leaf;
    while cur != center {
        let (p, ve) = interiors.parent[&cur];
        chain.push((p, cur, ve));
        cur = p;
    }
    // On the exit path, orient from parent toward child (toward the leaf).
    let mut on_exit_path: HashSet<usize> = HashSet::new();
    for &(p, child, ve) in &chain {
        on_exit_path.insert(p);
        on_exit_path.insert(child);
        if result.vedge_dir[ve].is_none() {
            orient_vedge(vg, ve, p, clock, ledger, result);
        }
    }
    // Every other kept vedge (branches of the kept tree off the exit path)
    // orients toward its parent (which leads to the exit path).
    // Walk all kept nodes: those whose parent vedge is unoriented orient
    // child -> parent.
    let kept_vedges: Vec<(usize, usize)> = interiors
        .parent
        .iter()
        .map(|(&child, &(_, ve))| (child, ve))
        .collect();
    for (child, ve) in kept_vedges {
        if result.vedge_dir[ve].is_none() && reaches(interiors, child, center) {
            orient_vedge(vg, ve, child, clock, ledger, result);
        }
    }
}

fn reaches(interiors: &Interiors, mut v: usize, center: usize) -> bool {
    loop {
        match interiors.parent.get(&v) {
            None => return v == center,
            Some(&(p, _)) => v = p,
        }
    }
}

/// Ball-growing finisher on the undecided link graph (3-regular, so every
/// component has a cycle): orient a cycle per component and BFS trees
/// toward it; charge `dist + cycle length` virtual rounds per vnode.
fn ball_finisher(
    vg: &VGraph,
    decided: &[bool],
    stretch: usize,
    clock: usize,
    ledger: &mut Ledger,
    result: &mut LevelResult,
) {
    let n = vg.host.len();
    let mut visited = vec![false; n];
    for s in 0..n {
        if decided[s] || visited[s] {
            continue;
        }
        // Component over undecided link vedges.
        let mut comp = Vec::new();
        let mut q = VecDeque::from([s]);
        visited[s] = true;
        while let Some(v) = q.pop_front() {
            comp.push(v);
            for &ve in &vg.ports[v] {
                if result.vedge_dir[ve].is_some() || vg.vedges[ve].b.is_none() {
                    continue;
                }
                let u = vg.other(ve, v).expect("link");
                if !decided[u] && !visited[u] {
                    visited[u] = true;
                    q.push_back(u);
                }
            }
        }
        // BFS for a cycle from the min-host vnode.
        let root = *comp
            .iter()
            .min_by_key(|&&v| vg.host[v])
            .expect("nonempty component");
        let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut depth: HashMap<usize, usize> = HashMap::new();
        depth.insert(root, 0);
        let mut bq = VecDeque::from([root]);
        let mut closing: Option<(usize, usize, usize)> = None;
        'bfs: while let Some(v) = bq.pop_front() {
            for &ve in &vg.ports[v] {
                if result.vedge_dir[ve].is_some() || vg.vedges[ve].b.is_none() {
                    continue;
                }
                let u = vg.other(ve, v).expect("link");
                if decided[u] {
                    continue;
                }
                if parent.get(&v).map(|&(_, pe)| pe) == Some(ve) {
                    continue;
                }
                if depth.contains_key(&u) {
                    closing = Some((v, u, ve));
                    break 'bfs;
                }
                depth.insert(u, depth[&v] + 1);
                parent.insert(u, (v, ve));
                bq.push_back(u);
            }
        }
        let Some((x, y, closing_ve)) = closing else {
            // Degenerate: tree component (possible only for tiny graphs fed
            // directly to the finisher). Orient toward the root; the root
            // must have some decided neighbor or free port handled earlier.
            for &v in &comp {
                if let Some(&(_, ve)) = parent.get(&v) {
                    if result.vedge_dir[ve].is_none() {
                        orient_vedge(vg, ve, v, clock + stretch, ledger, result);
                    }
                    result.vnode_clock[v] = clock + stretch;
                }
            }
            // Root: any unoriented port outward.
            let out = vg.ports[root]
                .iter()
                .copied()
                .find(|&ve| result.vedge_dir[ve].is_none());
            if let Some(ve) = out {
                orient_vedge(vg, ve, root, clock + stretch, ledger, result);
            }
            result.vnode_clock[root] = clock + stretch;
            continue;
        };
        // Reconstruct cycle node sequence.
        let path_up = |mut v: usize| {
            let mut p = vec![v];
            while let Some(&(pp, _)) = parent.get(&v) {
                v = pp;
                p.push(v);
            }
            p
        };
        let px = path_up(x);
        let py = path_up(y);
        let sx: HashSet<usize> = px.iter().copied().collect();
        let meet = *py.iter().find(|v| sx.contains(v)).expect("meet");
        let mut cycle: Vec<usize> = px.iter().take_while(|&&v| v != meet).copied().collect();
        cycle.push(meet);
        let mut tail: Vec<usize> = py.iter().take_while(|&&v| v != meet).copied().collect();
        tail.reverse();
        cycle.extend(tail);
        let clen = cycle.len();
        let cyc_clock = clock + (clen + 1) * stretch;
        for i in 0..clen {
            let a = cycle[i];
            let b = cycle[(i + 1) % clen];
            let ve = if i + 1 == clen {
                closing_ve
            } else {
                parent
                    .get(&a)
                    .filter(|&&(p, _)| p == b)
                    .map(|&(_, ve)| ve)
                    .or_else(|| parent.get(&b).filter(|&&(p, _)| p == a).map(|&(_, ve)| ve))
                    .expect("cycle vedge")
            };
            if result.vedge_dir[ve].is_none() {
                orient_vedge(vg, ve, a, cyc_clock, ledger, result);
            }
            if result.vnode_clock[a] == 0 {
                result.vnode_clock[a] = cyc_clock;
            }
        }
        // Trees toward the cycle.
        let mut dist: HashMap<usize, usize> = cycle.iter().map(|&v| (v, 0)).collect();
        let mut q2: VecDeque<usize> = cycle.iter().copied().collect();
        while let Some(v) = q2.pop_front() {
            for &ve in &vg.ports[v] {
                if result.vedge_dir[ve].is_some() || vg.vedges[ve].b.is_none() {
                    continue;
                }
                let u = vg.other(ve, v).expect("link");
                if decided[u] || dist.contains_key(&u) {
                    continue;
                }
                dist.insert(u, dist[&v] + 1);
                let c = cyc_clock + dist[&u] * stretch;
                orient_vedge(vg, ve, u, c, ledger, result);
                if result.vnode_clock[u] == 0 {
                    result.vnode_clock[u] = c;
                }
                q2.push_back(u);
            }
        }
    }
}

/// Default-orients every leftover vedge of the level (both endpoints are
/// decided by now): away from the larger host.
fn default_orient_level(vg: &VGraph, clock: usize, ledger: &mut Ledger, result: &mut LevelResult) {
    for ve in 0..vg.vedges.len() {
        if result.vedge_dir[ve].is_some() {
            continue;
        }
        let a = vg.vedges[ve].a;
        let from = match vg.vedges[ve].b {
            None => a,
            Some(b) => {
                if vg.host[a] > vg.host[b] {
                    a
                } else {
                    b
                }
            }
        };
        orient_vedge(vg, ve, from, clock, ledger, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ComplexityReport;
    use localavg_graph::gen;

    fn regular3(n: usize, seed: u64) -> Graph {
        let mut rng = Rng::seed_from(seed);
        gen::random_regular(n, 3, &mut rng).expect("3-regular graph")
    }

    #[test]
    fn randomized_on_petersen() {
        let run = randomized(&gen::petersen(), 3);
        assert!(analysis::is_sinkless_orientation(
            &gen::petersen(),
            &run.orientation
        ));
    }

    #[test]
    fn randomized_on_random_3regular() {
        for seed in 0..5 {
            let g = regular3(60, seed);
            let run = randomized(&g, seed * 7 + 1);
            assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
            assert!(run.transcript.all_edges_committed());
        }
    }

    #[test]
    fn randomized_on_higher_degree() {
        let mut rng = Rng::seed_from(5);
        let g = gen::random_regular(80, 6, &mut rng).unwrap();
        let run = randomized(&g, 9);
        assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
    }

    #[test]
    fn randomized_node_averaged_small() {
        let g = regular3(400, 11);
        let run = randomized(&g, 2);
        let r = ComplexityReport::from_run(&g, &run.transcript);
        assert!(r.node_averaged < 40.0, "node avg {}", r.node_averaged);
    }

    #[test]
    #[should_panic(expected = "minimum degree 3")]
    fn randomized_rejects_low_degree() {
        let _ = randomized(&gen::cycle(5), 1);
    }

    #[test]
    fn deterministic_on_petersen() {
        let g = gen::petersen();
        let run = deterministic(&g, DetOrientParams::default());
        assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
    }

    #[test]
    fn deterministic_on_complete_graphs() {
        for n in [4usize, 6, 9] {
            let g = gen::complete(n);
            let run = deterministic(&g, DetOrientParams::default());
            assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
        }
    }

    #[test]
    fn deterministic_on_random_3regular() {
        for seed in 0..6 {
            let g = regular3(64, seed + 20);
            let run = deterministic(&g, DetOrientParams::default());
            assert!(
                analysis::is_sinkless_orientation(&g, &run.orientation),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deterministic_on_larger_3regular() {
        let g = regular3(600, 77);
        let run = deterministic(&g, DetOrientParams::default());
        assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
        let r = ComplexityReport::from_run(&g, &run.transcript);
        assert!(
            r.node_averaged <= r.rounds as f64,
            "avg below worst case trivially"
        );
    }

    #[test]
    fn deterministic_on_higher_degree() {
        let mut rng = Rng::seed_from(31);
        let g = gen::random_regular(90, 5, &mut rng).unwrap();
        let run = deterministic(&g, DetOrientParams::default());
        assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
    }

    #[test]
    fn deterministic_is_reproducible() {
        let g = regular3(48, 3);
        let a = deterministic(&g, DetOrientParams::default());
        let b = deterministic(&g, DetOrientParams::default());
        assert_eq!(a.orientation, b.orientation);
        assert_eq!(
            a.transcript.edge_commit_round,
            b.transcript.edge_commit_round
        );
    }

    #[test]
    fn deterministic_on_hypercube() {
        // Q4 is 4-regular with min degree 4 >= 3 and plenty of 4-cycles:
        // exercises the short-cycle preferred-orientation rule.
        let g = gen::hypercube(4);
        let run = deterministic(&g, DetOrientParams::default());
        assert!(analysis::is_sinkless_orientation(&g, &run.orientation));
    }

    #[test]
    #[should_panic(expected = "minimum degree 3")]
    fn deterministic_rejects_low_degree() {
        let _ = deterministic(&gen::path(5), DetOrientParams::default());
    }

    #[test]
    fn empty_graph_ok() {
        let g = Graph::empty(0);
        let run = deterministic(&g, DetOrientParams::default());
        assert!(run.orientation.is_empty());
        let run2 = randomized(&g, 1);
        assert!(run2.orientation.is_empty());
    }
}
