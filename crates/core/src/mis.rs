//! Maximal independent set algorithms (paper §3.1).
//!
//! Three algorithms, matching the paper's discussion:
//!
//! * [`luby`] — Luby's classic randomized MIS \[Lub86, ABI86\]. Removes a
//!   constant fraction of *edges* per iteration, so under the relaxed
//!   one-endpoint edge convention (footnote 2) its edge-averaged complexity
//!   is O(1); on constant-degree graphs its node-averaged complexity is
//!   O(1) too (§1.1). On the lower-bound graphs of §4 its node-averaged
//!   complexity must grow — Theorem 16 — which experiment E9 measures.
//! * [`degree_guided`] — a desire-level algorithm in the style of
//!   Ghaffari \[Gha16\] / \[BYCHGS17\], whose per-node decision probability
//!   stays constant per O(log Δ)-phase; the paper cites it for the
//!   O(log Δ / log log Δ) node-averaged upper bound.
//! * [`greedy_by_id`] — the deterministic local-minimum greedy baseline
//!   (every round, an undecided node with the smallest id in its undecided
//!   neighborhood joins).
//!
//! All three commit node labels (`true` = in the MIS) the moment they are
//! decided, which is exactly the `T_v` Definition 1 averages.

use localavg_graph::{analysis, Graph};
use localavg_sim::prelude::*;

/// Result of an MIS run: the transcript plus the extracted set.
#[derive(Debug, Clone)]
pub struct MisRun {
    /// Full execution transcript (commit rounds per node).
    pub transcript: Transcript<bool, ()>,
    /// Indicator: `in_set[v]` iff `v` joined the MIS.
    pub in_set: Vec<bool>,
}

impl MisRun {
    /// Total rounds until every node terminated (worst-case complexity).
    pub fn worst_case(&self) -> Round {
        self.transcript.rounds
    }

    fn from_transcript(g: &Graph, transcript: Transcript<bool, ()>) -> Self {
        let in_set = transcript.node_labels();
        debug_assert!(
            analysis::is_maximal_independent_set(g, &in_set),
            "MIS algorithm produced an invalid output"
        );
        MisRun { transcript, in_set }
    }
}

/// Messages exchanged by the randomized MIS processes.
#[derive(Debug, Clone, PartialEq)]
pub enum MisMsg {
    /// "I marked myself (or not) this iteration; my current residual degree
    /// (Luby) or desire level (degree-guided) is attached."
    Mark {
        /// Whether the sender marked itself.
        marked: bool,
        /// Luby: residual degree. Degree-guided: desire level scaled by 2^32.
        weight: u64,
    },
    /// "I joined the MIS; you are covered."
    Join,
    /// "I left the graph (covered); update your residual degree."
    Removed,
}

impl MessageSize for MisMsg {
    fn size_bits(&self) -> usize {
        match self {
            MisMsg::Mark { .. } => 2 + 1 + 64,
            MisMsg::Join | MisMsg::Removed => 2,
        }
    }
}

// ---------------------------------------------------------------------------
// Luby's algorithm
// ---------------------------------------------------------------------------

/// Tuning parameters of Luby's MIS (`"mis/luby"`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LubyMisParams {
    /// Per-iteration mark probability numerator: an active node marks
    /// itself with probability `mark_factor / deg(v)`. The classic choice
    /// `1/(2 deg(v))` is `0.5`; must lie in `(0, 1]` so the probability
    /// is valid on every degree.
    pub mark_factor: f64,
}

impl Default for LubyMisParams {
    fn default() -> Self {
        LubyMisParams { mark_factor: 0.5 }
    }
}

/// Luby's MIS as a 3-round-per-iteration CONGEST process.
///
/// Iteration structure (phase = round mod 3):
/// * **mark**: update the residual degree from `Removed` messages; a node
///   whose residual degree reached 0 joins; otherwise mark with probability
///   `mark_factor/deg` (default `1/(2 deg)`) and announce the mark and the
///   degree.
/// * **join**: a marked node with no marked higher-priority neighbor
///   (priority = lexicographic (degree, id), as in Theorem 2's tie
///   breaking) joins the MIS and announces it.
/// * **cover**: neighbors of joiners commit `false`, announce `Removed`,
///   and terminate.
struct LubyMis {
    active_degree: usize,
    marked: bool,
    mark_factor: f64,
}

impl LubyMis {
    fn mark_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<MisMsg>]) {
        for env in inbox {
            if matches!(env.msg, MisMsg::Removed) {
                self.active_degree -= 1;
            }
        }
        if self.active_degree == 0 {
            ctx.commit_node(true);
            ctx.halt();
            return;
        }
        self.marked = ctx
            .rng()
            .chance(self.mark_factor / self.active_degree as f64);
        ctx.broadcast(MisMsg::Mark {
            marked: self.marked,
            weight: self.active_degree as u64,
        });
    }

    fn join_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<MisMsg>]) {
        if !self.marked {
            return;
        }
        let my_priority = (self.active_degree as u64, ctx.id() as u64);
        let beaten = inbox.iter().any(|env| match env.msg {
            MisMsg::Mark { marked, weight } => marked && (weight, env.src as u64) > my_priority,
            _ => false,
        });
        if !beaten {
            ctx.commit_node(true);
            ctx.broadcast(MisMsg::Join);
            ctx.halt();
        }
    }

    fn cover_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<MisMsg>]) {
        if inbox.iter().any(|env| matches!(env.msg, MisMsg::Join)) {
            ctx.commit_node(false);
            ctx.broadcast(MisMsg::Removed);
            ctx.halt();
        }
    }
}

impl Process for LubyMis {
    type Message = MisMsg;
    type NodeOutput = bool;
    type EdgeOutput = ();
    type Params = LubyMisParams;

    const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

    fn init(params: &LubyMisParams, ctx: &mut Ctx<'_, Self>) -> Self {
        let mut state = LubyMis {
            active_degree: ctx.degree(),
            marked: false,
            mark_factor: params.mark_factor,
        };
        state.mark_phase(ctx, &[]);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<MisMsg>]) {
        match ctx.round() % 3 {
            0 => self.mark_phase(ctx, inbox),
            1 => self.join_phase(ctx, inbox),
            _ => self.cover_phase(ctx, inbox),
        }
    }
}

/// Runs Luby's randomized MIS.
///
/// # Example
///
/// ```
/// use localavg_graph::{gen, rng::Rng};
/// use localavg_core::mis;
///
/// let mut rng = Rng::seed_from(3);
/// let g = gen::random_regular(60, 4, &mut rng).expect("graph");
/// let run = mis::luby(&g, 42);
/// assert!(localavg_graph::analysis::is_maximal_independent_set(&g, &run.in_set));
/// ```
pub fn luby(g: &Graph, seed: u64) -> MisRun {
    luby_spec(
        g,
        &RunSpec::new(seed),
        &LubyMisParams::default(),
        &mut Workspace::new(),
    )
}

/// [`luby`] under an explicit [`RunSpec`], with tunable parameters and
/// reusable [`Workspace`] arenas — the primary entry point.
pub fn luby_spec(g: &Graph, spec: &RunSpec, params: &LubyMisParams, ws: &mut Workspace) -> MisRun {
    let t = spec.run_in::<LubyMis>(g, params, ws);
    MisRun::from_transcript(g, t)
}

/// [`luby`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `luby_spec(g, &RunSpec::new(seed).with_exec(exec), ..)`")]
pub fn luby_exec(g: &Graph, seed: u64, exec: Exec) -> MisRun {
    luby_spec(
        g,
        &RunSpec::new(seed).with_exec(exec),
        &LubyMisParams::default(),
        &mut Workspace::new(),
    )
}

// ---------------------------------------------------------------------------
// Degree-guided (Ghaffari-style) algorithm
// ---------------------------------------------------------------------------

const DESIRE_SCALE: f64 = (1u64 << 32) as f64;

/// Tuning parameters of the degree-guided MIS (`"mis/degree-guided"`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeGuidedParams {
    /// Starting desire level `p_v` (and the cap desire levels double back
    /// up to). Ghaffari's choice is `1/2`; must lie in `(0, 0.5]`.
    pub initial_desire: f64,
    /// Neighborhood desire mass above which a node halves its desire
    /// level (`Σ p_u >= mass_threshold`). Ghaffari's choice is `2`; must
    /// be positive.
    pub mass_threshold: f64,
}

impl Default for DegreeGuidedParams {
    fn default() -> Self {
        DegreeGuidedParams {
            initial_desire: 0.5,
            mass_threshold: 2.0,
        }
    }
}

/// Ghaffari-style MIS: each node keeps a desire level `p_v` (starting at
/// `initial_desire`, default 1/2), marks itself with probability `p_v`,
/// joins when marked with no marked neighbor, and halves/doubles `p_v`
/// depending on the neighborhood desire mass (`Σ p_u >= mass_threshold`
/// halves, otherwise doubles up to 1/2).
struct DegreeGuidedMis {
    p: f64,
    active_degree: usize,
    marked: bool,
    neighbor_mass: f64,
    mass_threshold: f64,
}

impl DegreeGuidedMis {
    fn mark_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<MisMsg>]) {
        for env in inbox {
            if matches!(env.msg, MisMsg::Removed) {
                self.active_degree -= 1;
            }
        }
        if self.active_degree == 0 {
            ctx.commit_node(true);
            ctx.halt();
            return;
        }
        self.marked = ctx.rng().chance(self.p);
        ctx.broadcast(MisMsg::Mark {
            marked: self.marked,
            weight: (self.p * DESIRE_SCALE) as u64,
        });
    }

    fn join_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<MisMsg>]) {
        self.neighbor_mass = 0.0;
        let mut any_marked_neighbor = false;
        for env in inbox {
            if let MisMsg::Mark { marked, weight } = env.msg {
                any_marked_neighbor |= marked;
                self.neighbor_mass += weight as f64 / DESIRE_SCALE;
            }
        }
        if self.marked && !any_marked_neighbor {
            ctx.commit_node(true);
            ctx.broadcast(MisMsg::Join);
            ctx.halt();
        }
    }

    fn cover_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<MisMsg>]) {
        if inbox.iter().any(|env| matches!(env.msg, MisMsg::Join)) {
            ctx.commit_node(false);
            ctx.broadcast(MisMsg::Removed);
            ctx.halt();
            return;
        }
        if self.neighbor_mass >= self.mass_threshold {
            self.p /= 2.0;
        } else {
            self.p = (2.0 * self.p).min(0.5);
        }
    }
}

impl Process for DegreeGuidedMis {
    type Message = MisMsg;
    type NodeOutput = bool;
    type EdgeOutput = ();
    type Params = DegreeGuidedParams;

    const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

    fn init(params: &DegreeGuidedParams, ctx: &mut Ctx<'_, Self>) -> Self {
        let mut state = DegreeGuidedMis {
            p: params.initial_desire,
            active_degree: ctx.degree(),
            marked: false,
            neighbor_mass: 0.0,
            mass_threshold: params.mass_threshold,
        };
        state.mark_phase(ctx, &[]);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<MisMsg>]) {
        match ctx.round() % 3 {
            0 => self.mark_phase(ctx, inbox),
            1 => self.join_phase(ctx, inbox),
            _ => self.cover_phase(ctx, inbox),
        }
    }
}

/// Runs the degree-guided (Ghaffari-style) randomized MIS.
pub fn degree_guided(g: &Graph, seed: u64) -> MisRun {
    degree_guided_spec(
        g,
        &RunSpec::new(seed),
        &DegreeGuidedParams::default(),
        &mut Workspace::new(),
    )
}

/// [`degree_guided`] under an explicit [`RunSpec`], with tunable
/// parameters and reusable [`Workspace`] arenas.
pub fn degree_guided_spec(
    g: &Graph,
    spec: &RunSpec,
    params: &DegreeGuidedParams,
    ws: &mut Workspace,
) -> MisRun {
    let t = spec.run_in::<DegreeGuidedMis>(g, params, ws);
    MisRun::from_transcript(g, t)
}

/// [`degree_guided`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `degree_guided_spec(g, &RunSpec::new(seed).with_exec(exec), ..)`")]
pub fn degree_guided_exec(g: &Graph, seed: u64, exec: Exec) -> MisRun {
    degree_guided_spec(
        g,
        &RunSpec::new(seed).with_exec(exec),
        &DegreeGuidedParams::default(),
        &mut Workspace::new(),
    )
}

// ---------------------------------------------------------------------------
// Deterministic greedy baseline
// ---------------------------------------------------------------------------

/// Messages of the greedy process: join/leave announcements only.
#[derive(Debug, Clone, PartialEq)]
pub enum GreedyMsg {
    /// Sender joined the MIS.
    Joined,
    /// Sender committed `false` (covered) and left.
    Out,
}

impl MessageSize for GreedyMsg {
    fn size_bits(&self) -> usize {
        1
    }
}

struct GreedyMis {
    nbr_undecided: Vec<bool>,
}

impl GreedyMis {
    fn try_join(&mut self, ctx: &mut Ctx<'_, Self>) {
        let me = ctx.id();
        let is_local_min = ctx
            .ports()
            .all(|port| !self.nbr_undecided[port] || ctx.neighbor_id(port) > me);
        if is_local_min {
            ctx.commit_node(true);
            ctx.broadcast(GreedyMsg::Joined);
            ctx.halt();
        }
    }
}

impl Process for GreedyMis {
    type Message = GreedyMsg;
    type NodeOutput = bool;
    type EdgeOutput = ();
    type Params = ();

    const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

    fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
        let mut state = GreedyMis {
            nbr_undecided: vec![true; ctx.degree()],
        };
        state.try_join(ctx);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<GreedyMsg>]) {
        for env in inbox {
            match env.msg {
                GreedyMsg::Joined => {
                    ctx.commit_node(false);
                    ctx.broadcast(GreedyMsg::Out);
                    ctx.halt();
                    return;
                }
                GreedyMsg::Out => self.nbr_undecided[env.port] = false,
            }
        }
        self.try_join(ctx);
    }
}

/// Runs the deterministic greedy-by-id MIS (baseline).
pub fn greedy_by_id(g: &Graph) -> MisRun {
    greedy_by_id_spec(g, &RunSpec::new(0), &mut Workspace::new())
}

/// [`greedy_by_id`] under an explicit [`RunSpec`] with reusable
/// [`Workspace`] arenas (the seed is ignored — deterministic).
pub fn greedy_by_id_spec(g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> MisRun {
    let t = spec.run_in::<GreedyMis>(g, &(), ws);
    MisRun::from_transcript(g, t)
}

/// [`greedy_by_id`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `greedy_by_id_spec(g, &RunSpec::new(0).with_exec(exec), ..)`")]
pub fn greedy_by_id_exec(g: &Graph, exec: Exec) -> MisRun {
    greedy_by_id_spec(g, &RunSpec::new(0).with_exec(exec), &mut Workspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ComplexityReport;
    use localavg_graph::gen;

    fn check_valid(g: &Graph, run: &MisRun) {
        assert!(
            analysis::is_maximal_independent_set(g, &run.in_set),
            "invalid MIS"
        );
        assert!(run.transcript.all_nodes_committed());
    }

    #[test]
    fn luby_on_standard_graphs() {
        for (name, g) in [
            ("path", gen::path(40)),
            ("cycle", gen::cycle(41)),
            ("complete", gen::complete(12)),
            ("star", gen::star(20)),
            ("grid", gen::grid(6, 7)),
            ("petersen", gen::petersen()),
        ] {
            let run = luby(&g, 7);
            check_valid(&g, &run);
            let _ = name;
        }
    }

    #[test]
    fn luby_isolated_nodes_join_at_round_zero() {
        let g = Graph::empty(5);
        let run = luby(&g, 1);
        assert!(run.in_set.iter().all(|&b| b));
        assert!(run.transcript.node_commit_round.iter().all(|&r| r == 0));
    }

    #[test]
    fn luby_different_seeds_differ() {
        let mut rng = Rng::seed_from(5);
        let g = gen::random_regular(80, 6, &mut rng).unwrap();
        let a = luby(&g, 1);
        let b = luby(&g, 2);
        check_valid(&g, &a);
        check_valid(&g, &b);
        assert_ne!(a.in_set, b.in_set, "almost surely different MIS");
    }

    #[test]
    fn luby_is_congest() {
        let mut rng = Rng::seed_from(6);
        let g = gen::gnp(100, 0.08, &mut rng);
        let run = luby(&g, 3);
        check_valid(&g, &run);
        assert!(
            run.transcript
                .peak_message_bits()
                .expect("full-policy run is audited")
                <= 128
        );
    }

    #[test]
    fn luby_node_averaged_small_on_constant_degree() {
        let mut rng = Rng::seed_from(8);
        let g = gen::random_regular(400, 4, &mut rng).unwrap();
        let run = luby(&g, 11);
        check_valid(&g, &run);
        let report = ComplexityReport::from_run(&g, &run.transcript);
        // O(1) node-averaged on constant degree: generous bound.
        assert!(
            report.node_averaged < 20.0,
            "node averaged {}",
            report.node_averaged
        );
        // Relaxed edge average is even smaller in expectation.
        assert!(report.edge_averaged_one_endpoint <= report.edge_averaged + 1e-9);
    }

    #[test]
    fn degree_guided_on_standard_graphs() {
        for g in [
            gen::path(30),
            gen::cycle(33),
            gen::complete(10),
            gen::star(16),
            gen::hypercube(4),
        ] {
            let run = degree_guided(&g, 9);
            check_valid(&g, &run);
        }
    }

    #[test]
    fn degree_guided_on_random_graph() {
        let mut rng = Rng::seed_from(10);
        let g = gen::gnp(150, 0.05, &mut rng);
        let run = degree_guided(&g, 4);
        check_valid(&g, &run);
    }

    #[test]
    fn greedy_matches_sequential_greedy() {
        // Greedy-by-id equals the sequential greedy that scans ids in order.
        let mut rng = Rng::seed_from(12);
        let g = gen::gnp(60, 0.1, &mut rng);
        let run = greedy_by_id(&g);
        check_valid(&g, &run);
        let mut expect = vec![false; g.n()];
        for v in g.nodes() {
            if g.neighbor_ids(v).all(|u| u > v || !expect[u]) {
                expect[v] = true;
            }
        }
        assert_eq!(run.in_set, expect);
    }

    #[test]
    fn greedy_on_path_takes_linear_rounds_in_worst_case() {
        // Path with increasing ids: node 0 joins first, then a wave.
        let g = gen::path(30);
        let run = greedy_by_id(&g);
        check_valid(&g, &run);
        assert!(run.worst_case() >= 10, "adversarial id order is slow");
    }

    #[test]
    fn parallel_executor_agrees_with_sequential() {
        let mut rng = Rng::seed_from(14);
        let g = gen::random_regular(300, 6, &mut rng).unwrap();
        let cfg = SimConfig::new(77).with_threads(4);
        let params = LubyMisParams::default();
        let seq = run_sequential::<LubyMis>(&g, &params, &cfg);
        let par = run_parallel::<LubyMis>(&g, &params, &cfg);
        assert_eq!(seq.node_output, par.node_output);
        assert_eq!(seq.node_commit_round, par.node_commit_round);
    }

    #[test]
    fn luby_mark_factor_changes_the_run_but_stays_valid() {
        let mut rng = Rng::seed_from(30);
        let g = gen::random_regular(200, 4, &mut rng).unwrap();
        let default = luby(&g, 5);
        let aggressive = luby_spec(
            &g,
            &RunSpec::new(5),
            &LubyMisParams { mark_factor: 1.0 },
            &mut Workspace::new(),
        );
        check_valid(&g, &aggressive);
        assert_ne!(
            default.transcript.node_commit_round, aggressive.transcript.node_commit_round,
            "doubling the mark probability should change the schedule"
        );
    }

    #[test]
    fn degree_guided_params_change_the_run_but_stay_valid() {
        let mut rng = Rng::seed_from(31);
        let g = gen::random_regular(200, 6, &mut rng).unwrap();
        let default = degree_guided(&g, 4);
        let cautious = degree_guided_spec(
            &g,
            &RunSpec::new(4),
            &DegreeGuidedParams {
                initial_desire: 0.25,
                mass_threshold: 1.0,
            },
            &mut Workspace::new(),
        );
        check_valid(&g, &cautious);
        assert_ne!(
            default.transcript.node_commit_round,
            cautious.transcript.node_commit_round
        );
    }

    #[test]
    fn luby_edge_averaged_one_endpoint_constant() {
        // Footnote 2 / §3.1: Luby halves the edges each iteration, so the
        // one-endpoint edge-averaged complexity is O(1) on any graph.
        let mut rng = Rng::seed_from(20);
        let g = gen::gnp(300, 0.03, &mut rng);
        let run = luby(&g, 5);
        let report = ComplexityReport::from_run(&g, &run.transcript);
        assert!(
            report.edge_averaged_one_endpoint < 15.0,
            "edge-averaged (one endpoint) = {}",
            report.edge_averaged_one_endpoint
        );
    }
}
