//! Ruling set algorithms (paper §3.1, Theorems 2 and 3).
//!
//! An (α, β)-ruling set is a set `S` with pairwise distances `>= α` whose
//! members are within distance `β` of every node \[AGLP89\]; an MIS is a
//! (2,1)-ruling set.
//!
//! * [`two_two`] — **Theorem 2**, implemented verbatim: each active node
//!   marks itself with probability `1/(deg(v)+1)`; a marked node joins if
//!   it has no marked *higher-priority* neighbor (priority = lexicographic
//!   (degree, id)); everything within distance 2 of the new members is
//!   deleted; recurse. The paper proves a constant fraction of nodes is
//!   deleted per iteration, giving node-averaged complexity O(1).
//! * [`deterministic`] — **Theorem 3**: O(log Δ) iterations of a
//!   dominating-set step that (empirically, and by \[KP98\]'s guarantee
//!   for the paper's subroutine) halves the active nodes in O(log* n)
//!   rounds, followed by a Linial-coloring MIS finisher on the few
//!   survivors. Terminated nodes are always within distance ≤ 2 of the
//!   surviving set, so `T` iterations yield a (2, 2T+1)-ruling set.
//!
//! The dominating-set step follows the paper's own footnote 7: build the
//! pointer pseudo-forest, put *parents of leaves* into the dominating set,
//! remove the dominated nodes, and finish with an MIS of the remaining
//! pseudo-forest (computed by Cole–Vishkin 6-coloring of pointer chains in
//! O(log* n) rounds plus a 6-phase color sweep).

use crate::subroutines::{
    ceil_log2, cv_rounds, cv_step, cv_step_root, linial_schedule, LinialStep,
};
use localavg_graph::{analysis, Graph};
use localavg_sim::prelude::*;

/// Result of a ruling set run.
#[derive(Debug, Clone)]
pub struct RulingRun {
    /// Full execution transcript.
    pub transcript: Transcript<bool, ()>,
    /// Indicator of ruling set membership.
    pub in_set: Vec<bool>,
    /// The β this run guarantees (2 for Theorem 2; `2T+1` for Theorem 3).
    pub beta: usize,
}

impl RulingRun {
    /// Total rounds (worst-case complexity of the run).
    pub fn worst_case(&self) -> Round {
        self.transcript.rounds
    }
}

// ---------------------------------------------------------------------------
// Theorem 2: randomized (2,2)-ruling set
// ---------------------------------------------------------------------------

/// Messages of the (2,2)-ruling set process.
#[derive(Debug, Clone, PartialEq)]
pub enum TwoTwoMsg {
    /// Mark announcement with the sender's residual degree.
    Mark {
        /// Whether the sender marked itself this iteration.
        marked: bool,
        /// Sender's residual degree (for the priority comparison).
        degree: u64,
    },
    /// Sender joined the ruling set.
    Joined,
    /// Sender is adjacent to the set (so the receiver is within distance 2).
    NearSet,
    /// Sender left the residual graph.
    Removed,
}

impl MessageSize for TwoTwoMsg {
    fn size_bits(&self) -> usize {
        match self {
            TwoTwoMsg::Mark { .. } => 2 + 1 + 64,
            _ => 2,
        }
    }
}

/// Theorem 2's process; iteration = 4 rounds (mark, join, near, removed).
struct TwoTwoRuling {
    active_degree: usize,
    marked: bool,
}

impl TwoTwoRuling {
    fn mark_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<TwoTwoMsg>]) {
        for env in inbox {
            if matches!(env.msg, TwoTwoMsg::Removed) {
                self.active_degree -= 1;
            }
        }
        if self.active_degree == 0 {
            // Isolated in the residual graph: must join (nothing can cover it).
            ctx.commit_node(true);
            ctx.halt();
            return;
        }
        // p_v := 1 / (deg(v) + 1), exactly as in the proof of Theorem 2.
        self.marked = ctx.rng().chance(1.0 / (self.active_degree as f64 + 1.0));
        ctx.broadcast(TwoTwoMsg::Mark {
            marked: self.marked,
            degree: self.active_degree as u64,
        });
    }

    fn join_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<TwoTwoMsg>]) {
        if !self.marked {
            return;
        }
        // Higher priority: deg(w) > deg(v), or equal degree and ID(w) > ID(v).
        let mine = (self.active_degree as u64, ctx.id() as u64);
        let beaten = inbox.iter().any(|env| match env.msg {
            TwoTwoMsg::Mark { marked, degree } => marked && (degree, env.src as u64) > mine,
            _ => false,
        });
        if !beaten {
            ctx.commit_node(true);
            ctx.broadcast(TwoTwoMsg::Joined);
            ctx.halt();
        }
    }

    fn near_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<TwoTwoMsg>]) {
        if inbox.iter().any(|env| matches!(env.msg, TwoTwoMsg::Joined)) {
            // Distance 1 from the set: deleted; notify distance-2 nodes.
            ctx.commit_node(false);
            ctx.broadcast(TwoTwoMsg::NearSet);
            ctx.halt();
        }
    }

    fn far_phase(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<TwoTwoMsg>]) {
        if inbox
            .iter()
            .any(|env| matches!(env.msg, TwoTwoMsg::NearSet))
        {
            // Distance 2 from the set: deleted.
            ctx.commit_node(false);
            ctx.broadcast(TwoTwoMsg::Removed);
            ctx.halt();
        }
    }
}

impl Process for TwoTwoRuling {
    type Message = TwoTwoMsg;
    type NodeOutput = bool;
    type EdgeOutput = ();
    type Params = ();

    const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

    fn init(_: &(), ctx: &mut Ctx<'_, Self>) -> Self {
        let mut state = TwoTwoRuling {
            active_degree: ctx.degree(),
            marked: false,
        };
        state.mark_phase(ctx, &[]);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<TwoTwoMsg>]) {
        match ctx.round() % 4 {
            0 => self.mark_phase(ctx, inbox),
            1 => self.join_phase(ctx, inbox),
            2 => self.near_phase(ctx, inbox),
            _ => self.far_phase(ctx, inbox),
        }
    }
}

/// Runs Theorem 2's randomized (2,2)-ruling set algorithm (CONGEST).
///
/// # Example
///
/// ```
/// use localavg_graph::{analysis, gen, rng::Rng};
/// use localavg_core::ruling;
///
/// let mut rng = Rng::seed_from(2);
/// let g = gen::random_regular(64, 4, &mut rng).expect("graph");
/// let run = ruling::two_two(&g, 5);
/// assert!(analysis::is_ruling_set(&g, &run.in_set, 2, 2));
/// ```
pub fn two_two(g: &Graph, seed: u64) -> RulingRun {
    two_two_spec(g, &RunSpec::new(seed), &mut Workspace::new())
}

/// [`two_two`] under an explicit [`RunSpec`] with reusable [`Workspace`]
/// arenas.
pub fn two_two_spec(g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> RulingRun {
    let t = spec.run_in::<TwoTwoRuling>(g, &(), ws);
    let in_set = t.node_labels();
    debug_assert!(analysis::is_ruling_set(g, &in_set, 2, 2));
    RulingRun {
        transcript: t,
        in_set,
        beta: 2,
    }
}

/// [`two_two`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `two_two_spec(g, &RunSpec::new(seed).with_exec(exec), ..)`")]
pub fn two_two_exec(g: &Graph, seed: u64, exec: Exec) -> RulingRun {
    two_two_spec(
        g,
        &RunSpec::new(seed).with_exec(exec),
        &mut Workspace::new(),
    )
}

// ---------------------------------------------------------------------------
// Theorem 3: deterministic ruling sets
// ---------------------------------------------------------------------------

/// Messages of the deterministic ruling set process.
#[derive(Debug, Clone, PartialEq)]
pub enum DetMsg {
    /// "You are my pointer target" (pseudo-forest edge).
    Pointer,
    /// "I am a leaf of the pointer forest and you are my parent."
    LeafNotice,
    /// "I joined the dominating set of this iteration."
    InDominating,
    /// "I terminated" (receiver prunes me from its residual neighborhood).
    Gone,
    /// Cole–Vishkin color announcement within the pointer forest.
    CvColor(u64),
    /// "I joined the pseudo-forest MIS of this iteration."
    InForestMis,
    /// Linial color announcement (finisher stage).
    Color(u64),
    /// "I joined the final ruling set."
    SetJoined,
}

impl MessageSize for DetMsg {
    fn size_bits(&self) -> usize {
        match self {
            DetMsg::CvColor(_) | DetMsg::Color(_) => 3 + 64,
            _ => 3,
        }
    }
}

/// Parameters of the deterministic ruling set: the number of
/// dominating-set iterations before the MIS finisher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRulingParams {
    /// Number of halving iterations `T` (the final β is `2T + 1`).
    pub iterations: usize,
}

impl DetRulingParams {
    /// Theorem 3's (2, O(log Δ)) variant: `T = 3⌈log2 Δ⌉ + 1` iterations,
    /// leaving ~`n/Δ³` nodes for the finisher.
    pub fn for_log_delta(g: &Graph) -> Self {
        let delta = g.max_degree().max(2) as u64;
        DetRulingParams {
            iterations: 3 * ceil_log2(delta) as usize + 1,
        }
    }

    /// Theorem 3's (2, O(log log n)) variant: `T = 3⌈log2 log2 n⌉ + 1`
    /// iterations, leaving ~`n / log³ n` nodes for the finisher.
    pub fn for_log_log_n(g: &Graph) -> Self {
        let loglog = ceil_log2(ceil_log2(g.n().max(4) as u64).max(2) as u64) as usize;
        DetRulingParams {
            iterations: 3 * loglog + 1,
        }
    }
}

/// Fixed per-iteration schedule, derived identically by all nodes from the
/// global knowledge `(n, Δ)`.
#[derive(Debug, Clone)]
struct DetSchedule {
    iterations: usize,
    cv: usize,
    iter_len: usize,
    linial: Vec<LinialStep>,
}

impl DetSchedule {
    fn new(n: usize, params: &DetRulingParams) -> Self {
        let cv = cv_rounds(n.max(2) as u64);
        DetSchedule {
            iterations: params.iterations,
            cv,
            // offsets: 0 point, 1 leaf, 2 lp-join, 3 dominated, 4 pf-setup,
            // 5..5+cv CV, then 6 sweep rounds, then 1 finish round.
            iter_len: cv + 12,
            linial: Vec::new(), // filled lazily per process (needs Δ)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DetStage {
    Iterating,
    LinialColoring,
    Sweep,
}

/// Theorem 3's process. See the module docs for the schedule.
struct DetRuling {
    sched: DetSchedule,
    nbr_active: Vec<bool>,
    // Per-iteration state:
    pointer_port: Option<usize>,
    in_children: Vec<bool>,
    in_dominating: bool,
    is_forest_node: bool,
    forest_parent: Option<usize>,
    cv_color: u64,
    forest_covered: bool,
    // Finisher state:
    stage: DetStage,
    color: u64,
    nbr_color: Vec<u64>,
    linial_idx: usize,
}

impl DetRuling {
    fn prune(&mut self, inbox: &[Envelope<DetMsg>]) {
        for env in inbox {
            if matches!(env.msg, DetMsg::Gone) {
                self.nbr_active[env.port] = false;
                self.in_children[env.port] = false;
            }
        }
    }

    fn iteration_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMsg>], off: usize) {
        let cv = self.sched.cv;
        match off {
            // POINT: reset iteration state; pick the max-id active neighbor.
            0 => {
                self.pointer_port = None;
                self.in_children.iter_mut().for_each(|c| *c = false);
                self.in_dominating = false;
                self.is_forest_node = false;
                self.forest_parent = None;
                self.forest_covered = false;
                let target = ctx
                    .ports()
                    .filter(|&p| self.nbr_active[p])
                    .max_by_key(|&p| ctx.neighbor_id(p));
                match target {
                    None => {
                        // Isolated in the residual graph: joins the set.
                        ctx.commit_node(true);
                        ctx.halt();
                    }
                    Some(p) => {
                        self.pointer_port = Some(p);
                        ctx.send(p, DetMsg::Pointer);
                    }
                }
            }
            // LEAF: record in-pointers; leaves notify their parent.
            1 => {
                for env in inbox {
                    if matches!(env.msg, DetMsg::Pointer) {
                        self.in_children[env.port] = true;
                    }
                }
                if !self.in_children.iter().any(|&c| c) {
                    let p = self.pointer_port.expect("non-isolated node has a pointer");
                    ctx.send(p, DetMsg::LeafNotice);
                }
            }
            // LP-JOIN: parents of leaves join the dominating set.
            2 => {
                if inbox
                    .iter()
                    .any(|env| matches!(env.msg, DetMsg::LeafNotice))
                {
                    self.in_dominating = true;
                    ctx.broadcast(DetMsg::InDominating);
                }
            }
            // DOMINATED: neighbors of the dominating set terminate.
            3 => {
                let dominated = inbox
                    .iter()
                    .any(|env| matches!(env.msg, DetMsg::InDominating));
                if dominated && !self.in_dominating {
                    ctx.commit_node(false);
                    ctx.broadcast(DetMsg::Gone);
                    ctx.halt();
                }
            }
            // PF-SETUP: determine forest membership, parent, and isolation.
            4 => {
                if self.in_dominating {
                    return; // dominating-set members sit this part out
                }
                self.is_forest_node = true;
                let p = self.pointer_port.expect("forest node has a pointer");
                if self.nbr_active[p] {
                    // Mutual pair: the smaller id acts as root.
                    let mutual = self.in_children[p];
                    if mutual && ctx.id() < ctx.neighbor_id(p) {
                        self.forest_parent = None;
                    } else {
                        self.forest_parent = Some(p);
                    }
                } else if self.in_children.iter().any(|&c| c) {
                    self.forest_parent = None; // dangling pointer: root
                } else {
                    // Isolated in the forest: its target was dominated, so it
                    // sits within distance 2 of the dominating set. Terminate.
                    self.is_forest_node = false;
                    ctx.commit_node(false);
                    ctx.broadcast(DetMsg::Gone);
                    ctx.halt();
                    return;
                }
                self.cv_color = ctx.id() as u64;
                if cv > 0 {
                    // First CV step uses the parent's id, already known.
                    self.cv_color = match self.forest_parent {
                        Some(p) => cv_step(self.cv_color, ctx.neighbor_id(p) as u64),
                        None => cv_step_root(self.cv_color),
                    };
                    ctx.broadcast(DetMsg::CvColor(self.cv_color));
                }
            }
            // CV iterations and the 6-phase sweep, then FINISH.
            _ => {
                if !self.is_forest_node {
                    return;
                }
                let cv_off = off - 5;
                if cv_off < cv.saturating_sub(1) {
                    // CV step using the parent's color from this inbox.
                    self.cv_color = match self.forest_parent {
                        Some(p) => {
                            let parent_color = inbox
                                .iter()
                                .find_map(|env| match env.msg {
                                    DetMsg::CvColor(c) if env.port == p => Some(c),
                                    _ => None,
                                })
                                .expect("parent broadcasts its CV color");
                            cv_step(self.cv_color, parent_color)
                        }
                        None => cv_step_root(self.cv_color),
                    };
                    ctx.broadcast(DetMsg::CvColor(self.cv_color));
                } else if off < 5 + cv.saturating_sub(1) + 7 {
                    // Sweep rounds: 6 color phases + finish. Compute the
                    // sweep index; colors are < 6 after the CV rounds.
                    let sweep_base = 5 + cv.saturating_sub(1);
                    let sweep_idx = off - sweep_base;
                    for env in inbox {
                        if matches!(env.msg, DetMsg::InForestMis)
                            && (Some(env.port) == self.forest_parent || self.in_children[env.port])
                        {
                            self.forest_covered = true;
                        }
                    }
                    if sweep_idx < 6 {
                        debug_assert!(self.cv_color < 6, "CV must have converged");
                        if !self.forest_covered
                            && !self.in_dominating
                            && self.cv_color == sweep_idx as u64
                        {
                            self.in_dominating = true; // joins via the forest MIS
                            ctx.broadcast(DetMsg::InForestMis);
                        }
                    } else {
                        // FINISH: forest nodes not in the dominating set are
                        // covered by a forest-MIS neighbor; they terminate.
                        if !self.in_dominating {
                            debug_assert!(
                                self.forest_covered,
                                "forest MIS must be maximal on the pointer forest"
                            );
                            ctx.commit_node(false);
                            ctx.broadcast(DetMsg::Gone);
                            ctx.halt();
                        }
                    }
                }
            }
        }
    }

    fn finisher_round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMsg>], off: usize) {
        match self.stage {
            DetStage::Iterating => unreachable!("finisher entered in Iterating stage"),
            DetStage::LinialColoring => {
                if off == 0 {
                    self.color = ctx.id() as u64;
                    self.linial_idx = 0;
                    ctx.broadcast(DetMsg::Color(self.color));
                    if self.sched.linial.is_empty() {
                        self.stage = DetStage::Sweep;
                    }
                    return;
                }
                // Apply one Linial step using the colors just received.
                let step = self.sched.linial[self.linial_idx];
                let nbr: Vec<u64> = inbox
                    .iter()
                    .filter_map(|env| match env.msg {
                        DetMsg::Color(c) => Some(c),
                        _ => None,
                    })
                    .collect();
                self.color = step.reduce(self.color, &nbr);
                self.linial_idx += 1;
                ctx.broadcast(DetMsg::Color(self.color));
                if self.linial_idx == self.sched.linial.len() {
                    self.stage = DetStage::Sweep;
                }
            }
            DetStage::Sweep => {
                // Record final neighbor colors (arriving one round after the
                // last Linial broadcast), then run local-minimum sweep.
                for env in inbox {
                    match env.msg {
                        DetMsg::Color(c) => self.nbr_color[env.port] = c,
                        DetMsg::SetJoined => {
                            ctx.commit_node(false);
                            ctx.broadcast(DetMsg::Gone);
                            ctx.halt();
                            return;
                        }
                        _ => {}
                    }
                }
                let local_min = ctx
                    .ports()
                    .filter(|&p| self.nbr_active[p])
                    .all(|p| self.nbr_color[p] > self.color);
                if local_min {
                    ctx.commit_node(true);
                    ctx.broadcast(DetMsg::SetJoined);
                    ctx.halt();
                }
            }
        }
    }
}

impl Process for DetRuling {
    type Message = DetMsg;
    type NodeOutput = bool;
    type EdgeOutput = ();
    type Params = (DetRulingParams, usize); // (params, max_degree hint)

    const OUTPUT_KIND: OutputKind = OutputKind::NodeLabels;

    fn init(params: &(DetRulingParams, usize), ctx: &mut Ctx<'_, Self>) -> Self {
        let mut sched = DetSchedule::new(ctx.n(), &params.0);
        sched.linial = linial_schedule(ctx.n().max(2) as u64, ctx.max_degree().max(1) as u64);
        let degree = ctx.degree();
        let mut state = DetRuling {
            sched,
            nbr_active: vec![true; degree],
            pointer_port: None,
            in_children: vec![false; degree],
            in_dominating: false,
            is_forest_node: false,
            forest_parent: None,
            cv_color: 0,
            forest_covered: false,
            stage: DetStage::Iterating,
            color: 0,
            nbr_color: vec![u64::MAX; degree],
            linial_idx: 0,
        };
        state.iteration_round(ctx, &[], 0);
        state
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Self>, inbox: &[Envelope<DetMsg>]) {
        self.prune(inbox);
        let total_iter_rounds = self.sched.iterations * self.sched.iter_len;
        let r = ctx.round();
        if r < total_iter_rounds {
            self.iteration_round(ctx, inbox, r % self.sched.iter_len);
        } else {
            if self.stage == DetStage::Iterating {
                self.stage = DetStage::LinialColoring;
            }
            self.finisher_round(ctx, inbox, r - total_iter_rounds);
        }
    }
}

/// Runs Theorem 3's deterministic ruling set.
///
/// Returns a (2, β)-ruling set with `β = 2 * params.iterations + 1`.
///
/// # Example
///
/// ```
/// use localavg_graph::{analysis, gen};
/// use localavg_core::ruling::{deterministic, DetRulingParams};
///
/// let g = gen::grid(8, 8);
/// let run = deterministic(&g, DetRulingParams::for_log_delta(&g));
/// assert!(analysis::is_ruling_set(&g, &run.in_set, 2, run.beta));
/// ```
pub fn deterministic(g: &Graph, params: DetRulingParams) -> RulingRun {
    deterministic_spec(g, &RunSpec::new(0), params, &mut Workspace::new())
}

/// [`deterministic`] under an explicit [`RunSpec`] with reusable
/// [`Workspace`] arenas (the seed is ignored — deterministic).
pub fn deterministic_spec(
    g: &Graph,
    spec: &RunSpec,
    params: DetRulingParams,
    ws: &mut Workspace,
) -> RulingRun {
    let t = spec.run_in::<DetRuling>(g, &(params, g.max_degree()), ws);
    let in_set = t.node_labels();
    let beta = 2 * params.iterations + 1;
    debug_assert!(analysis::is_ruling_set(g, &in_set, 2, beta));
    RulingRun {
        transcript: t,
        in_set,
        beta,
    }
}

/// [`deterministic`] on a chosen executor (bit-identical across executors).
#[deprecated(note = "use `deterministic_spec(g, &RunSpec::new(0).with_exec(exec), ..)`")]
pub fn deterministic_exec(g: &Graph, params: DetRulingParams, exec: Exec) -> RulingRun {
    deterministic_spec(
        g,
        &RunSpec::new(0).with_exec(exec),
        params,
        &mut Workspace::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ComplexityReport;
    use localavg_graph::gen;

    #[test]
    fn two_two_on_standard_graphs() {
        for g in [
            gen::path(30),
            gen::cycle(31),
            gen::complete(10),
            gen::star(12),
            gen::grid(5, 6),
            gen::petersen(),
        ] {
            let run = two_two(&g, 3);
            assert!(
                analysis::is_ruling_set(&g, &run.in_set, 2, 2),
                "invalid (2,2)-ruling set"
            );
        }
    }

    #[test]
    fn two_two_on_random_graphs() {
        for seed in 0..5 {
            let mut rng = Rng::seed_from(seed);
            let g = gen::gnp(120, 0.05, &mut rng);
            let run = two_two(&g, seed * 11 + 1);
            assert!(analysis::is_ruling_set(&g, &run.in_set, 2, 2));
        }
    }

    #[test]
    fn two_two_is_congest() {
        let mut rng = Rng::seed_from(4);
        let g = gen::random_regular(100, 8, &mut rng).unwrap();
        let run = two_two(&g, 9);
        assert!(
            run.transcript
                .peak_message_bits()
                .expect("full-policy run is audited")
                <= 128
        );
    }

    #[test]
    fn two_two_node_averaged_is_small() {
        // Theorem 2: node-averaged complexity O(1) — even on high-degree
        // graphs, unlike MIS.
        let mut rng = Rng::seed_from(5);
        let g = gen::random_regular(512, 16, &mut rng).unwrap();
        let run = two_two(&g, 13);
        let report = ComplexityReport::from_run(&g, &run.transcript);
        assert!(
            report.node_averaged < 16.0,
            "node averaged = {}",
            report.node_averaged
        );
    }

    #[test]
    fn two_two_empty_and_singleton() {
        let g = Graph::empty(1);
        let run = two_two(&g, 1);
        assert_eq!(run.in_set, vec![true]);
        let g0 = Graph::empty(0);
        let run0 = two_two(&g0, 1);
        assert!(run0.in_set.is_empty());
    }

    #[test]
    fn deterministic_on_standard_graphs() {
        for g in [
            gen::path(40),
            gen::cycle(37),
            gen::star(15),
            gen::grid(6, 6),
            gen::petersen(),
            gen::binary_tree(31),
        ] {
            let params = DetRulingParams::for_log_delta(&g);
            let run = deterministic(&g, params);
            assert!(
                analysis::is_ruling_set(&g, &run.in_set, 2, run.beta),
                "invalid (2,{})-ruling set",
                run.beta
            );
        }
    }

    #[test]
    fn deterministic_on_random_graphs() {
        for seed in 0..3 {
            let mut rng = Rng::seed_from(seed + 100);
            let g = gen::gnp(90, 0.06, &mut rng);
            let run = deterministic(&g, DetRulingParams::for_log_delta(&g));
            assert!(analysis::is_ruling_set(&g, &run.in_set, 2, run.beta));
        }
    }

    #[test]
    fn deterministic_log_log_variant() {
        let mut rng = Rng::seed_from(42);
        let g = gen::random_regular(128, 4, &mut rng).unwrap();
        let params = DetRulingParams::for_log_log_n(&g);
        let run = deterministic(&g, params);
        assert!(analysis::is_ruling_set(&g, &run.in_set, 2, run.beta));
        // β = O(log log n), far below the log Δ variant on high-degree graphs.
        assert!(run.beta <= 2 * (3 * 3 + 1) + 1);
    }

    #[test]
    fn deterministic_is_reproducible() {
        let g = gen::grid(7, 7);
        let params = DetRulingParams::for_log_delta(&g);
        let a = deterministic(&g, params);
        let b = deterministic(&g, params);
        assert_eq!(a.in_set, b.in_set);
        assert_eq!(
            a.transcript.node_commit_round,
            b.transcript.node_commit_round
        );
    }

    #[test]
    fn deterministic_active_set_shrinks_fast() {
        // The halving claim: after T iterations few nodes remain undecided.
        let mut rng = Rng::seed_from(77);
        let g = gen::random_regular(256, 4, &mut rng).unwrap();
        let params = DetRulingParams::for_log_delta(&g);
        let run = deterministic(&g, params);
        let report = ComplexityReport::from_run(&g, &run.transcript);
        // Node-averaged must be much smaller than the worst case.
        assert!(
            report.node_averaged * 2.0 < report.rounds as f64,
            "node avg {} vs rounds {}",
            report.node_averaged,
            report.rounds
        );
    }

    #[test]
    fn params_scale_with_graph() {
        let small = gen::cycle(8);
        let big = gen::complete(64);
        assert!(
            DetRulingParams::for_log_delta(&small).iterations
                < DetRulingParams::for_log_delta(&big).iterations
        );
    }
}
