//! Rake-and-compress tree algorithms (`*/tree-rc`).
//!
//! This module implements the node-averaged tree algorithms that run on top
//! of the deterministic rake-and-compress decomposition of
//! [`localavg_graph::decomp`]. The decomposition peels a forest in `O(log n)`
//! phases; each phase first *rakes* (removes nodes of residual degree ≤ 1)
//! and then *compresses* (removes an independent set of residual-degree-2
//! nodes chosen by local priority minima). A node learns its own
//! `(layer, label)` pair after `O(layer)` LOCAL rounds because each phase is
//! `O(1)`-locally computable, which makes the decomposition a scheduling
//! substrate: a node at layer `ℓ` is *ready* to act at round
//! `2ℓ + sub(ℓ)` (`sub` = 0 for rake, 1 for compress), and commits once the
//! neighbors it depends on have committed.
//!
//! Because layer sizes decay geometrically, scheduling greedy decisions in
//! *removal order* yields commit clocks that are `O(layer(v))` per node and
//! therefore `O(1)` **on average** — the node-averaged collapse of
//! Theorems 2–3 specialized to trees — while the worst-case clock stays
//! `Θ(log n)` (the last surviving nodes). Three problems are implemented:
//!
//! * [`mis_spec`] — greedy MIS in removal order. Average clock `O(1)`.
//! * [`ruling_spec`] — a (2,2)-ruling set: an MIS of the induced subgraph
//!   `H = G[deg ≥ 2]`, with degree-≤ 1 nodes committing "out" at round 2
//!   (maximality on `H` guarantees a set node within distance 2 without the
//!   low-degree node ever learning which one). The flattest average of the
//!   three.
//! * [`coloring_spec`] — proper 3-coloring by greedy first-free color in
//!   *reverse* removal order (top of the decomposition first). Every node
//!   sees at most 2 earlier-colored neighbors, so 3 colors suffice; the
//!   reverse order makes every clock `Θ(depth)`, so the average matches the
//!   worst case — an honest negative control: 3-coloring a path is
//!   `Θ(log n)` even node-averaged.
//!
//! All three produce *structural* transcripts (like
//! [`crate::orientation`]'s ledger runs): the commit clock is computed
//! directly from the decomposition rather than by driving the round engine,
//! and is therefore independent of executor, chunk geometry, and transcript
//! policy. Non-forest inputs are rejected with the typed
//! [`NotATree`] error — the `Algorithm` wrappers in [`crate::algo`] turn
//! that into a panic only when the registry's tree-domain filters have been
//! bypassed.
//!
//! # Example
//!
//! ```
//! use localavg_core::algo::{RunSpec, Workspace};
//! use localavg_core::{treerc, verify};
//! use localavg_graph::{gen, rng::Rng};
//!
//! let g = gen::random_tree(200, &mut Rng::seed_from(7));
//! let run = treerc::mis_spec(&g, &RunSpec::new(7), &mut Workspace::new()).unwrap();
//! assert!(verify::is_maximal_independent_set(
//!     &g,
//!     run.solution.node_set().unwrap()
//! ));
//! ```

use crate::algo::{AlgoRun, RunSpec, Solution, Workspace};
use localavg_graph::decomp::{NotATree, RcDecomposition, RcLabel};
use localavg_graph::Graph;
use localavg_sim::prelude::*;

/// Round at which node `v` has learned its own `(layer, label)` pair:
/// phase `ℓ` of the decomposition is simulated in LOCAL rounds
/// `2ℓ - 1, 2ℓ` (one round to gather residual degrees, one to compare
/// priorities), with the compress sub-step resolving one round after the
/// rake sub-step.
fn ready_round(d: &RcDecomposition, v: usize) -> usize {
    let sub = match d.label(v) {
        RcLabel::Rake => 0,
        RcLabel::Compress => 1,
    };
    2 * d.layer(v) as usize + sub
}

/// Commit clocks for a greedy pass over `decision` (a permutation of the
/// nodes): node `v` becomes ready at [`ready_round`] and must additionally
/// wait one round past every neighbor that decides before it.
fn commit_clocks(g: &Graph, d: &RcDecomposition, decision: &[usize]) -> Vec<usize> {
    let mut clock = vec![0usize; g.n()];
    let mut decided = vec![false; g.n()];
    for &v in decision {
        let mut c = ready_round(d, v);
        for u in g.neighbor_ids(v) {
            if decided[u] {
                c = c.max(clock[u] + 1);
            }
        }
        clock[v] = c;
        decided[v] = true;
    }
    clock
}

/// Wraps per-node commit clocks and a typed solution into an [`AlgoRun`]
/// with a structural transcript: commit = halt = clock, `rounds` = the
/// latest clock, live ledger rebuilt from the halts. Structural runs do
/// not drive the round engine (matching the orientation ledger
/// precedent), so under an audited policy the transcript carries a
/// *silent* audit (peak `Some(0)`, zero per-node volume); under a lean
/// policy the audit columns stay empty.
fn structural_run(
    name: &'static str,
    g: &Graph,
    clock: &[usize],
    solution: Solution,
    policy: TranscriptPolicy,
) -> AlgoRun {
    let mut t: Transcript<(), ()> = Transcript::empty(OutputKind::NodeLabels, g.n(), g.m());
    t.rounds = clock.iter().copied().max().unwrap_or(0);
    for v in g.nodes() {
        t.node_output[v] = Some(());
        t.node_commit_round[v] = clock[v];
        t.node_halt_round[v] = clock[v];
    }
    t.rebuild_live_ledger();
    if policy.records_audit() {
        t.record_silent_audit();
    }
    AlgoRun {
        algorithm: name,
        transcript: t,
        solution,
    }
}

/// Greedy MIS in rake-and-compress removal order (`"mis/tree-rc"`).
///
/// A node joins the set iff no earlier-removed neighbor joined. Any total
/// order makes this a maximal independent set; *this* order makes the
/// commit clock `O(layer(v))`: within one `(layer, sub)` class the only
/// possible adjacency is a raked 2-node residual component, so greedy
/// chains inside a class have length ≤ 2, and classes shrink
/// geometrically. Node-averaged completion is `O(1)` while the worst case
/// is `Θ(log n)`.
///
/// # Errors
///
/// Returns [`NotATree`] when `g` contains a cycle.
pub fn mis_spec(g: &Graph, spec: &RunSpec, _ws: &mut Workspace) -> Result<AlgoRun, NotATree> {
    let d = RcDecomposition::compute(g, spec.seed)?;
    let order = d.removal_order();
    let mut in_set = vec![false; g.n()];
    let mut decided = vec![false; g.n()];
    for &v in &order {
        in_set[v] = !g.neighbor_ids(v).any(|u| decided[u] && in_set[u]);
        decided[v] = true;
    }
    let clock = commit_clocks(g, &d, &order);
    Ok(structural_run(
        "mis/tree-rc",
        g,
        &clock,
        Solution::Mis { in_set },
        spec.transcript,
    ))
}

/// (2,2)-ruling set via rake-and-compress (`"ruling/tree-rc"`).
///
/// Let `H = G[deg ≥ 2]`. The set is a greedy MIS of `H` in removal order,
/// plus the minimum-priority node of every component that has no `H` node
/// (such components have at most 2 nodes). A degree-≤ 1 node whose
/// neighbor lies in `H` commits **out** at round 2 without waiting: the
/// maximality of the MIS on `H` guarantees either the neighbor or one of
/// the neighbor's `H`-neighbors is in the set, so the node is ruled within
/// distance 2 no matter how the greedy pass resolves. This decoupling is
/// what makes the average completion of the ruling set the flattest of the
/// tree-rc family.
///
/// # Errors
///
/// Returns [`NotATree`] when `g` contains a cycle.
pub fn ruling_spec(g: &Graph, spec: &RunSpec, _ws: &mut Workspace) -> Result<AlgoRun, NotATree> {
    let d = RcDecomposition::compute(g, spec.seed)?;
    let deg: Vec<usize> = g.degrees().collect();
    let in_h = |v: usize| deg[v] >= 2;
    let mut in_set = vec![false; g.n()];
    let mut clock = vec![0usize; g.n()];
    let mut decided = vec![false; g.n()];
    for &v in &d.removal_order() {
        if !in_h(v) {
            continue;
        }
        let mut c = ready_round(&d, v);
        let mut blocked = false;
        for u in g.neighbor_ids(v).filter(|&u| in_h(u) && decided[u]) {
            blocked |= in_set[u];
            c = c.max(clock[u] + 1);
        }
        in_set[v] = !blocked;
        clock[v] = c;
        decided[v] = true;
    }
    for v in g.nodes().filter(|&v| !in_h(v)) {
        match g.neighbor_ids(v).next() {
            // Isolated node: a component of its own; it is the set member.
            None => {
                in_set[v] = true;
                clock[v] = 1;
            }
            Some(u) if in_h(u) => clock[v] = 2,
            // A 2-node component (both endpoints of degree 1): the
            // smaller (priority, id) endpoint joins.
            Some(u) => {
                in_set[v] = (d.priority(v), v) < (d.priority(u), u);
                clock[v] = 2;
            }
        }
    }
    Ok(structural_run(
        "ruling/tree-rc",
        g,
        &clock,
        Solution::RulingSet { in_set, beta: 2 },
        spec.transcript,
    ))
}

/// Proper 3-coloring by layer peeling (`"coloring/tree-rc"`).
///
/// Colors are assigned greedily (first free color in `{0, 1, 2}`) in
/// **reverse** removal order, so the top of the decomposition commits
/// first. A compress node's two residual neighbors are removed strictly
/// later (compress candidates are an independent set and rakes precede
/// compresses within a phase), and a rake node has at most one
/// later-removed neighbor — so every node sees at most 2 earlier-colored
/// neighbors and 3 colors always suffice. The reverse order drags every
/// clock up to `Θ(depth)`: the node-averaged completion matches the
/// worst case, the honest landscape for 3-coloring (which is `Θ(log n)`
/// node-averaged even on paths).
///
/// # Errors
///
/// Returns [`NotATree`] when `g` contains a cycle.
pub fn coloring_spec(g: &Graph, spec: &RunSpec, _ws: &mut Workspace) -> Result<AlgoRun, NotATree> {
    let d = RcDecomposition::compute(g, spec.seed)?;
    let mut order = d.removal_order();
    order.reverse();
    let mut colors = vec![usize::MAX; g.n()];
    let mut decided = vec![false; g.n()];
    for &v in &order {
        let mut used = [false; 3];
        for u in g.neighbor_ids(v).filter(|&u| decided[u]) {
            used[colors[u]] = true;
        }
        colors[v] = (0..3)
            .find(|&c| !used[c])
            .expect("a rake-and-compress node has at most 2 earlier-colored neighbors");
        decided[v] = true;
    }
    let clock = commit_clocks(g, &d, &order);
    Ok(structural_run(
        "coloring/tree-rc",
        g,
        &clock,
        Solution::Coloring { colors },
        spec.transcript,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use crate::metrics::CompletionTimes;
    use localavg_graph::{gen, rng::Rng};

    fn tree_zoo() -> Vec<(&'static str, Graph)> {
        let mut rng = Rng::seed_from(11);
        vec![
            ("path", gen::path(97)),
            ("star", gen::star(64)),
            ("random-tree", gen::random_tree(180, &mut rng)),
            ("empty", Graph::empty(0)),
            ("singleton", Graph::empty(1)),
            ("two-paths", {
                let mut b = localavg_graph::GraphBuilder::new(6);
                b.add_edge(0, 1).unwrap();
                b.add_edge(1, 2).unwrap();
                b.add_edge(3, 4).unwrap();
                b.add_edge(4, 5).unwrap();
                b.build()
            }),
        ]
    }

    #[test]
    fn mis_is_valid_and_complete_on_the_zoo() {
        for (name, g) in tree_zoo() {
            let run = mis_spec(&g, &RunSpec::new(3), &mut Workspace::new()).unwrap();
            check::verify_solution(&g, &run.solution).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                run.transcript.is_complete(),
                "{name}: incomplete transcript"
            );
        }
    }

    #[test]
    fn ruling_set_is_a_two_two_ruling_set_on_the_zoo() {
        for (name, g) in tree_zoo() {
            let run = ruling_spec(&g, &RunSpec::new(3), &mut Workspace::new()).unwrap();
            check::verify_solution(&g, &run.solution).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn coloring_is_a_proper_three_coloring_on_the_zoo() {
        for (name, g) in tree_zoo() {
            let run = coloring_spec(&g, &RunSpec::new(3), &mut Workspace::new()).unwrap();
            check::verify_solution(&g, &run.solution).unwrap_or_else(|e| panic!("{name}: {e}"));
            if let Solution::Coloring { colors } = &run.solution {
                assert!(colors.iter().all(|&c| c < 3), "{name}: palette exceeds 3");
            }
        }
    }

    #[test]
    fn cycles_are_rejected_with_the_typed_error() {
        let g = gen::cycle(12);
        let err = mis_spec(&g, &RunSpec::new(0), &mut Workspace::new()).unwrap_err();
        assert_eq!(err.nodes, 12);
        assert!(ruling_spec(&g, &RunSpec::new(0), &mut Workspace::new()).is_err());
        assert!(coloring_spec(&g, &RunSpec::new(0), &mut Workspace::new()).is_err());
    }

    #[test]
    fn transcripts_are_deterministic_in_the_seed_only() {
        let mut rng = Rng::seed_from(5);
        let g = gen::random_tree(140, &mut rng);
        let base = mis_spec(&g, &RunSpec::new(9), &mut Workspace::new()).unwrap();
        let chunked = mis_spec(
            &g,
            &RunSpec::new(9).with_chunk_nodes(Some(1)),
            &mut Workspace::new(),
        )
        .unwrap();
        assert_eq!(base.transcript, chunked.transcript);
        assert_eq!(base.solution, chunked.solution);
        let reseeded = mis_spec(&g, &RunSpec::new(10), &mut Workspace::new()).unwrap();
        assert_eq!(reseeded.transcript.rounds, reseeded.transcript.rounds);
        check::verify_solution(&g, &reseeded.solution).unwrap();
    }

    #[test]
    fn mis_average_is_far_below_the_worst_case_on_long_paths() {
        let g = gen::path(4096);
        let run = mis_spec(&g, &RunSpec::new(1), &mut Workspace::new()).unwrap();
        let t = CompletionTimes::from_transcript(&g, &run.transcript);
        let avg = t.node_mean();
        let worst = run.transcript.rounds as f64;
        assert!(avg < worst / 2.0, "AVG_V {avg} not below WORST {worst} / 2");
        assert!(avg < 12.0, "AVG_V {avg} should be O(1)-ish");
    }

    #[test]
    fn ruling_low_degree_nodes_commit_at_round_two() {
        let g = gen::star(64);
        let run = ruling_spec(&g, &RunSpec::new(2), &mut Workspace::new()).unwrap();
        for v in 1..64 {
            assert_eq!(run.transcript.node_commit_round[v], 2, "leaf {v}");
        }
    }
}
