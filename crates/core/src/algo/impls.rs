//! [`Algorithm`] implementations for every family in the workspace.
//!
//! Each implementation is a zero-sized unit struct wrapping the family
//! module's entry point and converting its legacy `*Run` into the unified
//! [`AlgoRun`]. The legacy free functions (`mis::luby`, `ruling::two_two`,
//! …) stay available as thin shims for code that wants the typed outputs
//! directly.

use super::{AlgoRun, Algorithm, Exec, Problem};
use crate::orientation::DetOrientParams;
use crate::ruling::DetRulingParams;
use crate::{coloring, matching, mis, orientation, ruling};
use localavg_graph::Graph;

/// Luby's randomized MIS (`"mis/luby"`, §3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisLuby;

impl Algorithm for MisLuby {
    type Params = ();

    fn name(&self) -> &'static str {
        "mis/luby"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn run_with(&self, g: &Graph, seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(mis::luby(g, seed)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(mis::luby_exec(g, seed, exec)).named(self.name())
    }
}

/// Ghaffari-style degree-guided MIS (`"mis/degree-guided"`, §3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisDegreeGuided;

impl Algorithm for MisDegreeGuided {
    type Params = ();

    fn name(&self) -> &'static str {
        "mis/degree-guided"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn run_with(&self, g: &Graph, seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(mis::degree_guided(g, seed)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(mis::degree_guided_exec(g, seed, exec)).named(self.name())
    }
}

/// Deterministic greedy-by-id MIS baseline (`"mis/greedy"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisGreedy;

impl Algorithm for MisGreedy {
    type Params = ();

    fn name(&self) -> &'static str {
        "mis/greedy"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run_with(&self, g: &Graph, _seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(mis::greedy_by_id(g)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, _seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(mis::greedy_by_id_exec(g, exec)).named(self.name())
    }
}

/// Theorem 2's randomized (2,2)-ruling set (`"ruling/two-two"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RulingTwoTwo;

impl Algorithm for RulingTwoTwo {
    type Params = ();

    fn name(&self) -> &'static str {
        "ruling/two-two"
    }

    fn problem(&self) -> Problem {
        Problem::RulingSet
    }

    fn run_with(&self, g: &Graph, seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(ruling::two_two(g, seed)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(ruling::two_two_exec(g, seed, exec)).named(self.name())
    }
}

/// How `"ruling/det"` chooses Theorem 3's iteration count. The
/// graph-dependent variants are resolved against the input graph inside
/// `run_with`, which is what lets `Default` stay graph-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetRulingSpec {
    /// Theorem 3's (2, O(log Δ)) variant (the default).
    #[default]
    LogDelta,
    /// Theorem 3's (2, O(log log n)) variant.
    LogLogN,
    /// Explicit iteration count.
    Fixed(DetRulingParams),
}

impl DetRulingSpec {
    /// Resolves the spec to concrete parameters for `g`.
    pub fn resolve(&self, g: &Graph) -> DetRulingParams {
        match self {
            DetRulingSpec::LogDelta => DetRulingParams::for_log_delta(g),
            DetRulingSpec::LogLogN => DetRulingParams::for_log_log_n(g),
            DetRulingSpec::Fixed(p) => *p,
        }
    }
}

/// Theorem 3's deterministic (2,β)-ruling set (`"ruling/det"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RulingDet;

impl Algorithm for RulingDet {
    type Params = DetRulingSpec;

    fn name(&self) -> &'static str {
        "ruling/det"
    }

    fn problem(&self) -> Problem {
        Problem::RulingSet
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run_with(&self, g: &Graph, _seed: u64, params: &DetRulingSpec) -> AlgoRun {
        AlgoRun::from(ruling::deterministic(g, params.resolve(g))).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, _seed: u64, params: &DetRulingSpec, exec: Exec) -> AlgoRun {
        AlgoRun::from(ruling::deterministic_exec(g, params.resolve(g), exec)).named(self.name())
    }
}

/// Theorem 4's randomized maximal matching (`"matching/luby"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingLuby;

impl Algorithm for MatchingLuby {
    type Params = ();

    fn name(&self) -> &'static str {
        "matching/luby"
    }

    fn problem(&self) -> Problem {
        Problem::MaximalMatching
    }

    fn run_with(&self, g: &Graph, seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(matching::luby(g, seed)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(matching::luby_exec(g, seed, exec)).named(self.name())
    }
}

/// Theorem 5's deterministic maximal matching (`"matching/det"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingDet;

impl Algorithm for MatchingDet {
    type Params = ();

    fn name(&self) -> &'static str {
        "matching/det"
    }

    fn problem(&self) -> Problem {
        Problem::MaximalMatching
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run_with(&self, g: &Graph, _seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(matching::deterministic(g)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, _seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(matching::deterministic_exec(g, exec)).named(self.name())
    }
}

/// Deterministic proposal-matching baseline (`"matching/greedy"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingGreedy;

impl Algorithm for MatchingGreedy {
    type Params = ();

    fn name(&self) -> &'static str {
        "matching/greedy"
    }

    fn problem(&self) -> Problem {
        Problem::MaximalMatching
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run_with(&self, g: &Graph, _seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(matching::greedy(g)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, _seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(matching::greedy_exec(g, exec)).named(self.name())
    }
}

/// Randomized sinkless orientation (`"orientation/rand"`, \[GS17a\]-style).
#[derive(Debug, Clone, Copy, Default)]
pub struct OrientationRand;

impl Algorithm for OrientationRand {
    type Params = ();

    fn name(&self) -> &'static str {
        "orientation/rand"
    }

    fn problem(&self) -> Problem {
        Problem::SinklessOrientation
    }

    fn run_with(&self, g: &Graph, seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(orientation::randomized(g, seed)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(orientation::randomized_exec(g, seed, exec)).named(self.name())
    }
}

/// Theorem 6's deterministic sinkless orientation (`"orientation/det"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct OrientationDet;

impl Algorithm for OrientationDet {
    type Params = DetOrientParams;

    fn name(&self) -> &'static str {
        "orientation/det"
    }

    fn problem(&self) -> Problem {
        Problem::SinklessOrientation
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run_with(&self, g: &Graph, _seed: u64, params: &DetOrientParams) -> AlgoRun {
        AlgoRun::from(orientation::deterministic(g, *params)).named(self.name())
    }
}

/// Randomized (Δ+1)-coloring by color trials (`"coloring/trial"`, §1.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoringTrial;

impl Algorithm for ColoringTrial {
    type Params = ();

    fn name(&self) -> &'static str {
        "coloring/trial"
    }

    fn problem(&self) -> Problem {
        Problem::Coloring
    }

    fn run_with(&self, g: &Graph, seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(coloring::random_trial(g, seed)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(coloring::random_trial_exec(g, seed, exec)).named(self.name())
    }
}

/// Linial's deterministic O(log* n) coloring (`"coloring/linial"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoringLinial;

impl Algorithm for ColoringLinial {
    type Params = ();

    fn name(&self) -> &'static str {
        "coloring/linial"
    }

    fn problem(&self) -> Problem {
        Problem::Coloring
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run_with(&self, g: &Graph, _seed: u64, _params: &()) -> AlgoRun {
        AlgoRun::from(coloring::linial(g)).named(self.name())
    }

    fn run_with_exec(&self, g: &Graph, _seed: u64, _params: &(), exec: Exec) -> AlgoRun {
        AlgoRun::from(coloring::linial_exec(g, exec)).named(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::Solution;
    use localavg_graph::gen;
    use localavg_graph::rng::Rng;

    #[test]
    fn det_ruling_spec_variants_resolve() {
        let g = gen::grid(6, 6);
        let spec = DetRulingSpec::default();
        assert_eq!(spec, DetRulingSpec::LogDelta);
        assert_eq!(spec.resolve(&g), DetRulingParams::for_log_delta(&g));
        assert_eq!(
            DetRulingSpec::LogLogN.resolve(&g),
            DetRulingParams::for_log_log_n(&g)
        );
        let fixed = DetRulingParams { iterations: 4 };
        assert_eq!(DetRulingSpec::Fixed(fixed).resolve(&g), fixed);
    }

    #[test]
    fn ruling_det_beta_tracks_spec() {
        let g = gen::grid(5, 5);
        let run = RulingDet.run_with(
            &g,
            0,
            &DetRulingSpec::Fixed(DetRulingParams { iterations: 3 }),
        );
        match run.solution {
            Solution::RulingSet { beta, .. } => assert_eq!(beta, 7),
            ref other => panic!("wrong solution kind: {other:?}"),
        }
        run.verify(&g).expect("valid ruling set");
    }

    #[test]
    fn deterministic_flags_match_seed_behavior() {
        let mut rng = Rng::seed_from(4);
        let g = gen::random_regular(40, 4, &mut rng).unwrap();
        for algo in crate::algo::registry().iter() {
            if algo.problem().min_degree() > g.min_degree() || !algo.deterministic() {
                continue;
            }
            let a = algo.run(&g, 1);
            let b = algo.run(&g, 99);
            assert_eq!(
                a.solution,
                b.solution,
                "{} claims determinism but depends on the seed",
                algo.name()
            );
        }
    }

    #[test]
    fn orientation_algorithms_run_on_cubic_graph() {
        let mut rng = Rng::seed_from(7);
        let g = gen::random_regular(32, 3, &mut rng).unwrap();
        for name in ["orientation/rand", "orientation/det"] {
            let run = crate::algo::registry().get(name).unwrap().run(&g, 2);
            run.verify(&g).expect("sinkless");
        }
    }
}
