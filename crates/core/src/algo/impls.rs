//! [`Algorithm`] implementations for every family in the workspace.
//!
//! Each implementation is a zero-sized unit struct wrapping the family
//! module's `*_spec` entry point and converting its typed `*Run` into the
//! unified [`AlgoRun`]. The family free functions (`mis::luby`,
//! `ruling::two_two`, …) stay available for code that wants the typed
//! outputs directly.
//!
//! Algorithms with tuning knobs declare them as [`ParamSpec`]s and
//! validate string assignments in `set_param` — that is what
//! `DynAlgorithm::with_params` (and `exp --param family/name:key=value`)
//! dispatches through. Defaults are always the paper's constants, so a
//! parameterless run is byte-identical to the pre-parameter engine.

use super::{AlgoRun, Algorithm, ParamError, ParamSpec, Problem, RunSpec, Workspace};
use crate::coloring::TrialColoringParams;
use crate::matching::LubyMatchParams;
use crate::mis::{DegreeGuidedParams, LubyMisParams};
use crate::orientation::{DetOrientParams, RandOrientParams};
use crate::ruling::DetRulingParams;
use crate::{coloring, matching, mis, orientation, ruling, treerc};
use localavg_graph::decomp::NotATree;
use localavg_graph::Graph;

/// Parses a float parameter in `(0, hi]`.
fn parse_unit_factor(
    algorithm: &'static str,
    key: &str,
    value: &str,
    hi: f64,
    expected: &'static str,
) -> Result<f64, ParamError> {
    value
        .parse::<f64>()
        .ok()
        .filter(|f| f.is_finite() && *f > 0.0 && *f <= hi)
        .ok_or_else(|| ParamError::invalid(algorithm, key, value, expected))
}

/// Parses an unsigned integer parameter with a lower bound.
fn parse_count(
    algorithm: &'static str,
    key: &str,
    value: &str,
    min: usize,
    expected: &'static str,
) -> Result<usize, ParamError> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&v| v >= min)
        .ok_or_else(|| ParamError::invalid(algorithm, key, value, expected))
}

/// Luby's randomized MIS (`"mis/luby"`, §3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisLuby;

impl Algorithm for MisLuby {
    type Params = LubyMisParams;

    fn name(&self) -> &'static str {
        "mis/luby"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        params: &LubyMisParams,
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(mis::luby_spec(g, spec, params, ws)).named(self.name())
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            key: "mark-factor",
            default: "0.5",
            doc: "mark probability numerator, p_v = mark-factor/deg(v); a float in (0, 1]",
        }]
    }

    fn set_param(
        &self,
        params: &mut LubyMisParams,
        key: &str,
        value: &str,
    ) -> Result<(), ParamError> {
        match key {
            "mark-factor" => {
                params.mark_factor =
                    parse_unit_factor(self.name(), key, value, 1.0, "a float in (0, 1]")?;
                Ok(())
            }
            _ => Err(ParamError::unknown_key(
                self.name(),
                key,
                self.param_specs(),
            )),
        }
    }
}

/// Ghaffari-style degree-guided MIS (`"mis/degree-guided"`, §3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisDegreeGuided;

impl Algorithm for MisDegreeGuided {
    type Params = DegreeGuidedParams;

    fn name(&self) -> &'static str {
        "mis/degree-guided"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        params: &DegreeGuidedParams,
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(mis::degree_guided_spec(g, spec, params, ws)).named(self.name())
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        &[
            ParamSpec {
                key: "initial-desire",
                default: "0.5",
                doc: "starting desire level p_v; a float in (0, 0.5]",
            },
            ParamSpec {
                key: "mass-threshold",
                default: "2.0",
                doc: "neighborhood desire mass above which p_v halves; a positive float",
            },
        ]
    }

    fn set_param(
        &self,
        params: &mut DegreeGuidedParams,
        key: &str,
        value: &str,
    ) -> Result<(), ParamError> {
        match key {
            "initial-desire" => {
                params.initial_desire =
                    parse_unit_factor(self.name(), key, value, 0.5, "a float in (0, 0.5]")?;
                Ok(())
            }
            "mass-threshold" => {
                params.mass_threshold =
                    parse_unit_factor(self.name(), key, value, f64::INFINITY, "a positive float")?;
                Ok(())
            }
            _ => Err(ParamError::unknown_key(
                self.name(),
                key,
                self.param_specs(),
            )),
        }
    }
}

/// Deterministic greedy-by-id MIS baseline (`"mis/greedy"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisGreedy;

impl Algorithm for MisGreedy {
    type Params = ();

    fn name(&self) -> &'static str {
        "mis/greedy"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        _params: &(),
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(mis::greedy_by_id_spec(g, spec, ws)).named(self.name())
    }
}

/// Theorem 2's randomized (2,2)-ruling set (`"ruling/two-two"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RulingTwoTwo;

impl Algorithm for RulingTwoTwo {
    type Params = ();

    fn name(&self) -> &'static str {
        "ruling/two-two"
    }

    fn problem(&self) -> Problem {
        Problem::RulingSet
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        _params: &(),
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(ruling::two_two_spec(g, spec, ws)).named(self.name())
    }
}

/// How `"ruling/det"` chooses Theorem 3's iteration count. The
/// graph-dependent variants are resolved against the input graph inside
/// `execute_with_in`, which is what lets `Default` stay graph-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetRulingSpec {
    /// Theorem 3's (2, O(log Δ)) variant (the default).
    #[default]
    LogDelta,
    /// Theorem 3's (2, O(log log n)) variant.
    LogLogN,
    /// Explicit iteration count.
    Fixed(DetRulingParams),
}

impl DetRulingSpec {
    /// Resolves the spec to concrete parameters for `g`.
    pub fn resolve(&self, g: &Graph) -> DetRulingParams {
        match self {
            DetRulingSpec::LogDelta => DetRulingParams::for_log_delta(g),
            DetRulingSpec::LogLogN => DetRulingParams::for_log_log_n(g),
            DetRulingSpec::Fixed(p) => *p,
        }
    }
}

/// Theorem 3's deterministic (2,β)-ruling set (`"ruling/det"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RulingDet;

impl Algorithm for RulingDet {
    type Params = DetRulingSpec;

    fn name(&self) -> &'static str {
        "ruling/det"
    }

    fn problem(&self) -> Problem {
        Problem::RulingSet
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        params: &DetRulingSpec,
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(ruling::deterministic_spec(g, spec, params.resolve(g), ws)).named(self.name())
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        &[
            ParamSpec {
                key: "variant",
                default: "log-delta",
                doc: "iteration policy: `log-delta` (Theorem 3a) or `log-log-n` (Theorem 3b)",
            },
            ParamSpec {
                key: "iterations",
                default: "(variant)",
                doc: "fixed halving-iteration count T (yields a (2, 2T+1)-ruling set); an integer >= 1",
            },
        ]
    }

    fn set_param(
        &self,
        params: &mut DetRulingSpec,
        key: &str,
        value: &str,
    ) -> Result<(), ParamError> {
        // `variant` and `iterations` both choose the whole spec; a
        // silent overwrite would make repeated --param flags
        // order-dependent, so contradictory pairs are rejected.
        match key {
            "variant" => {
                if matches!(params, DetRulingSpec::Fixed(_)) {
                    return Err(ParamError::invalid(
                        self.name(),
                        key,
                        value,
                        "no `variant` on top of an explicit `iterations` \
                         (the two are mutually exclusive)",
                    ));
                }
                *params = match value {
                    "log-delta" => DetRulingSpec::LogDelta,
                    "log-log-n" => DetRulingSpec::LogLogN,
                    _ => {
                        return Err(ParamError::invalid(
                            self.name(),
                            key,
                            value,
                            "`log-delta` or `log-log-n`",
                        ))
                    }
                };
                Ok(())
            }
            "iterations" => {
                if matches!(params, DetRulingSpec::LogLogN) {
                    return Err(ParamError::invalid(
                        self.name(),
                        key,
                        value,
                        "no `iterations` on top of an explicit `variant` \
                         (the two are mutually exclusive)",
                    ));
                }
                let iterations = parse_count(self.name(), key, value, 1, "an integer >= 1")?;
                *params = DetRulingSpec::Fixed(DetRulingParams { iterations });
                Ok(())
            }
            _ => Err(ParamError::unknown_key(
                self.name(),
                key,
                self.param_specs(),
            )),
        }
    }
}

/// Theorem 4's randomized maximal matching (`"matching/luby"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingLuby;

impl Algorithm for MatchingLuby {
    type Params = LubyMatchParams;

    fn name(&self) -> &'static str {
        "matching/luby"
    }

    fn problem(&self) -> Problem {
        Problem::MaximalMatching
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        params: &LubyMatchParams,
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(matching::luby_spec(g, spec, params, ws)).named(self.name())
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            key: "mark-factor",
            default: "0.25",
            doc: "edge-mark probability numerator, p_e = mark-factor/(d_u+d_v); a float in (0, 1]",
        }]
    }

    fn set_param(
        &self,
        params: &mut LubyMatchParams,
        key: &str,
        value: &str,
    ) -> Result<(), ParamError> {
        match key {
            "mark-factor" => {
                params.mark_factor =
                    parse_unit_factor(self.name(), key, value, 1.0, "a float in (0, 1]")?;
                Ok(())
            }
            _ => Err(ParamError::unknown_key(
                self.name(),
                key,
                self.param_specs(),
            )),
        }
    }
}

/// Theorem 5's deterministic maximal matching (`"matching/det"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingDet;

impl Algorithm for MatchingDet {
    type Params = ();

    fn name(&self) -> &'static str {
        "matching/det"
    }

    fn problem(&self) -> Problem {
        Problem::MaximalMatching
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        _params: &(),
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(matching::deterministic_spec(g, spec, ws)).named(self.name())
    }
}

/// Deterministic proposal-matching baseline (`"matching/greedy"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingGreedy;

impl Algorithm for MatchingGreedy {
    type Params = ();

    fn name(&self) -> &'static str {
        "matching/greedy"
    }

    fn problem(&self) -> Problem {
        Problem::MaximalMatching
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        _params: &(),
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(matching::greedy_spec(g, spec, ws)).named(self.name())
    }
}

/// Randomized sinkless orientation (`"orientation/rand"`, \[GS17a\]-style).
#[derive(Debug, Clone, Copy, Default)]
pub struct OrientationRand;

impl Algorithm for OrientationRand {
    type Params = RandOrientParams;

    fn name(&self) -> &'static str {
        "orientation/rand"
    }

    fn problem(&self) -> Problem {
        Problem::SinklessOrientation
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        params: &RandOrientParams,
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(orientation::randomized_spec(g, spec, params, ws)).named(self.name())
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            key: "contest-iterations",
            default: "8",
            doc: "proposal-contest iterations before the structural finisher; an integer >= 1",
        }]
    }

    fn set_param(
        &self,
        params: &mut RandOrientParams,
        key: &str,
        value: &str,
    ) -> Result<(), ParamError> {
        match key {
            "contest-iterations" => {
                params.contest_iterations =
                    parse_count(self.name(), key, value, 1, "an integer >= 1")?;
                Ok(())
            }
            _ => Err(ParamError::unknown_key(
                self.name(),
                key,
                self.param_specs(),
            )),
        }
    }
}

/// Theorem 6's deterministic sinkless orientation (`"orientation/det"`).
///
/// The transcript is assembled structurally (no round engine), so
/// `spec.exec` and the workspace have no effect on this algorithm; the
/// transcript policy only decides whether the (silent) CONGEST audit
/// columns are stamped.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrientationDet;

impl Algorithm for OrientationDet {
    type Params = DetOrientParams;

    fn name(&self) -> &'static str {
        "orientation/det"
    }

    fn problem(&self) -> Problem {
        Problem::SinklessOrientation
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        params: &DetOrientParams,
        _ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(orientation::deterministic_with(g, *params, spec.transcript))
            .named(self.name())
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        &[
            ParamSpec {
                key: "r",
                default: "2",
                doc: "the paper's constant r (cycle threshold 6r, cluster radius 2r+1); an integer >= 2",
            },
            ParamSpec {
                key: "finish-threshold",
                default: "48",
                doc: "virtual graphs at most this large go straight to the ball-growing finisher; an integer >= 4",
            },
            ParamSpec {
                key: "max-depth",
                default: "12",
                doc: "hard cap on contraction-recursion depth; an integer >= 1",
            },
        ]
    }

    fn set_param(
        &self,
        params: &mut DetOrientParams,
        key: &str,
        value: &str,
    ) -> Result<(), ParamError> {
        match key {
            "r" => {
                params.r = parse_count(self.name(), key, value, 2, "an integer >= 2")?;
                Ok(())
            }
            "finish-threshold" => {
                params.finish_threshold =
                    parse_count(self.name(), key, value, 4, "an integer >= 4")?;
                Ok(())
            }
            "max-depth" => {
                params.max_depth = parse_count(self.name(), key, value, 1, "an integer >= 1")?;
                Ok(())
            }
            _ => Err(ParamError::unknown_key(
                self.name(),
                key,
                self.param_specs(),
            )),
        }
    }
}

/// Randomized (Δ+1)-coloring by color trials (`"coloring/trial"`, §1.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoringTrial;

impl Algorithm for ColoringTrial {
    type Params = TrialColoringParams;

    fn name(&self) -> &'static str {
        "coloring/trial"
    }

    fn problem(&self) -> Problem {
        Problem::Coloring
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        params: &TrialColoringParams,
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(coloring::random_trial_spec(g, spec, params, ws)).named(self.name())
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            key: "extra-colors",
            default: "0",
            doc: "palette slots beyond the guaranteed Δ+1; a non-negative integer",
        }]
    }

    fn set_param(
        &self,
        params: &mut TrialColoringParams,
        key: &str,
        value: &str,
    ) -> Result<(), ParamError> {
        match key {
            "extra-colors" => {
                params.extra_colors =
                    parse_count(self.name(), key, value, 0, "a non-negative integer")?;
                Ok(())
            }
            _ => Err(ParamError::unknown_key(
                self.name(),
                key,
                self.param_specs(),
            )),
        }
    }
}

/// Linial's deterministic O(log* n) coloring (`"coloring/linial"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoringLinial;

impl Algorithm for ColoringLinial {
    type Params = ();

    fn name(&self) -> &'static str {
        "coloring/linial"
    }

    fn problem(&self) -> Problem {
        Problem::Coloring
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        _params: &(),
        ws: &mut Workspace,
    ) -> AlgoRun {
        AlgoRun::from(coloring::linial_spec(g, spec, ws)).named(self.name())
    }
}

/// Panic message shared by the `*/tree-rc` wrappers when the tree-domain
/// filters were bypassed and a cyclic graph reached a tree algorithm.
fn expect_tree(name: &'static str, result: Result<AlgoRun, NotATree>) -> AlgoRun {
    result.unwrap_or_else(|e| {
        panic!(
            "{name} is restricted to forests but was handed a cyclic graph ({e}); \
             sweep/fuzz domain filters only pair `*/tree-rc` with tree generators — \
             pick a `tree/*` (or `path`) family when forcing this algorithm by hand"
        )
    })
}

/// Rake-and-compress greedy MIS on forests (`"mis/tree-rc"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisTreeRc;

impl Algorithm for MisTreeRc {
    type Params = ();

    fn name(&self) -> &'static str {
        "mis/tree-rc"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn requires_tree(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        _params: &(),
        ws: &mut Workspace,
    ) -> AlgoRun {
        expect_tree(self.name(), treerc::mis_spec(g, spec, ws))
    }
}

/// Rake-and-compress (2,2)-ruling set on forests (`"ruling/tree-rc"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RulingTreeRc;

impl Algorithm for RulingTreeRc {
    type Params = ();

    fn name(&self) -> &'static str {
        "ruling/tree-rc"
    }

    fn problem(&self) -> Problem {
        Problem::RulingSet
    }

    fn requires_tree(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        _params: &(),
        ws: &mut Workspace,
    ) -> AlgoRun {
        expect_tree(self.name(), treerc::ruling_spec(g, spec, ws))
    }
}

/// Rake-and-compress 3-coloring on forests (`"coloring/tree-rc"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoringTreeRc;

impl Algorithm for ColoringTreeRc {
    type Params = ();

    fn name(&self) -> &'static str {
        "coloring/tree-rc"
    }

    fn problem(&self) -> Problem {
        Problem::Coloring
    }

    fn requires_tree(&self) -> bool {
        true
    }

    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        _params: &(),
        ws: &mut Workspace,
    ) -> AlgoRun {
        expect_tree(self.name(), treerc::coloring_spec(g, spec, ws))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{registry, DynAlgorithm, Solution};
    use localavg_graph::gen;
    use localavg_graph::rng::Rng;

    #[test]
    fn det_ruling_spec_variants_resolve() {
        let g = gen::grid(6, 6);
        let spec = DetRulingSpec::default();
        assert_eq!(spec, DetRulingSpec::LogDelta);
        assert_eq!(spec.resolve(&g), DetRulingParams::for_log_delta(&g));
        assert_eq!(
            DetRulingSpec::LogLogN.resolve(&g),
            DetRulingParams::for_log_log_n(&g)
        );
        let fixed = DetRulingParams { iterations: 4 };
        assert_eq!(DetRulingSpec::Fixed(fixed).resolve(&g), fixed);
    }

    #[test]
    fn ruling_det_beta_tracks_spec() {
        let g = gen::grid(5, 5);
        let run = RulingDet.execute_with(
            &g,
            &RunSpec::new(0),
            &DetRulingSpec::Fixed(DetRulingParams { iterations: 3 }),
        );
        match run.solution {
            Solution::RulingSet { beta, .. } => assert_eq!(beta, 7),
            ref other => panic!("wrong solution kind: {other:?}"),
        }
        run.verify(&g).expect("valid ruling set");
    }

    #[test]
    fn deterministic_flags_match_seed_behavior() {
        let mut rng = Rng::seed_from(4);
        let g = gen::random_regular(40, 4, &mut rng).unwrap();
        for algo in crate::algo::registry().iter() {
            if algo.problem().min_degree() > g.min_degree() || !algo.deterministic() {
                continue;
            }
            let a = algo.execute(&g, &RunSpec::new(1));
            let b = algo.execute(&g, &RunSpec::new(99));
            assert_eq!(
                a.solution,
                b.solution,
                "{} claims determinism but depends on the seed",
                algo.name()
            );
        }
    }

    #[test]
    fn orientation_algorithms_run_on_cubic_graph() {
        let mut rng = Rng::seed_from(7);
        let g = gen::random_regular(32, 3, &mut rng).unwrap();
        for name in ["orientation/rand", "orientation/det"] {
            let run = crate::algo::registry()
                .get(name)
                .unwrap()
                .execute(&g, &RunSpec::new(2));
            run.verify(&g).expect("sinkless");
        }
    }

    #[test]
    fn string_params_configure_every_declared_key() {
        // Every declared (key, default-compatible value) round-trips
        // through with_params and still produces a verifying run.
        let mut rng = Rng::seed_from(11);
        let g = gen::random_regular(48, 4, &mut rng).unwrap();
        let assignments: &[(&str, &[(&str, &str)])] = &[
            ("mis/luby", &[("mark-factor", "0.3")]),
            (
                "mis/degree-guided",
                &[("initial-desire", "0.25"), ("mass-threshold", "1.5")],
            ),
            ("ruling/det", &[("variant", "log-log-n")]),
            ("ruling/det", &[("iterations", "2")]),
            ("matching/luby", &[("mark-factor", "0.5")]),
            ("coloring/trial", &[("extra-colors", "3")]),
        ];
        for (name, kvs) in assignments {
            let algo = registry()
                .get(name)
                .unwrap()
                .with_params(kvs)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(algo.name(), *name);
            let run = algo.execute(&g, &RunSpec::new(3));
            run.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn ruling_det_iterations_param_sets_beta() {
        let g = gen::grid(5, 5);
        let algo = registry()
            .get("ruling/det")
            .unwrap()
            .with_params(&[("iterations", "3")])
            .unwrap();
        let run = algo.execute(&g, &RunSpec::new(0));
        match run.solution {
            Solution::RulingSet { beta, .. } => assert_eq!(beta, 7),
            ref other => panic!("wrong solution kind: {other:?}"),
        }
    }

    /// `expect_err` needs `T: Debug`, which trait-object boxes lack.
    fn param_err(result: Result<Box<dyn DynAlgorithm>, ParamError>) -> ParamError {
        match result {
            Err(e) => e,
            Ok(_) => panic!("expected a parameter error"),
        }
    }

    #[test]
    fn invalid_values_are_rejected_with_expectations() {
        let cases: &[(&str, &str, &str)] = &[
            ("mis/luby", "mark-factor", "2.0"),
            ("mis/luby", "mark-factor", "nan"),
            ("mis/luby", "mark-factor", "-0.5"),
            ("mis/degree-guided", "initial-desire", "0.9"),
            ("ruling/det", "variant", "log-squared"),
            ("ruling/det", "iterations", "0"),
            ("orientation/det", "r", "1"),
            ("orientation/rand", "contest-iterations", "0"),
            ("coloring/trial", "extra-colors", "-1"),
        ];
        for (name, key, value) in cases {
            let err = param_err(registry().get(name).unwrap().with_params(&[(key, value)]));
            assert!(
                matches!(err, ParamError::InvalidValue { .. }),
                "{name} {key}={value}: got {err:?}"
            );
            assert!(err.to_string().contains("expected"));
        }
    }

    #[test]
    fn ruling_det_conflicting_params_are_rejected() {
        // `variant` and `iterations` both pick the whole spec: combining
        // them must fail loudly instead of silently keeping the last one.
        let r = registry().get("ruling/det").unwrap();
        let err = param_err(r.with_params(&[("iterations", "3"), ("variant", "log-delta")]));
        assert!(matches!(err, ParamError::InvalidValue { .. }));
        assert!(err.to_string().contains("mutually exclusive"));
        let err = param_err(r.with_params(&[("variant", "log-log-n"), ("iterations", "3")]));
        assert!(matches!(err, ParamError::InvalidValue { .. }));
        // Each alone still works.
        assert!(r.with_params(&[("variant", "log-log-n")]).is_ok());
        assert!(r.with_params(&[("iterations", "3")]).is_ok());
    }

    #[test]
    fn unknown_keys_suggest_close_matches() {
        let err = param_err(
            registry()
                .get("mis/luby")
                .unwrap()
                .with_params(&[("mark-facotr", "0.5")]),
        );
        match err {
            ParamError::UnknownKey { suggestion, .. } => {
                assert_eq!(suggestion, Some("mark-factor"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        // Parameterless algorithms reject with NoParams.
        let err = param_err(
            registry()
                .get("mis/greedy")
                .unwrap()
                .with_params(&[("anything", "1")]),
        );
        assert!(matches!(err, ParamError::NoParams { .. }));
        assert!(err.to_string().contains("takes no parameters"));
    }

    #[test]
    fn with_params_layers_on_previous_configuration() {
        let g = gen::grid(5, 5);
        let base = registry()
            .get("ruling/det")
            .unwrap()
            .with_params(&[("iterations", "1")])
            .unwrap();
        // Re-configuring a configured algorithm overrides on top.
        let refined = base.with_params(&[("iterations", "2")]).unwrap();
        let beta = |algo: &dyn DynAlgorithm| match algo.execute(&g, &RunSpec::new(0)).solution {
            Solution::RulingSet { beta, .. } => beta,
            ref other => panic!("wrong solution kind: {other:?}"),
        };
        assert_eq!(beta(base.as_ref()), 3);
        assert_eq!(beta(refined.as_ref()), 5);
        assert_eq!(refined.problem(), Problem::RulingSet);
        assert!(refined.deterministic());
        assert_eq!(refined.param_specs().len(), 2);
    }
}
