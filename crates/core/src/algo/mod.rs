//! Unified algorithm API: one trait, one result type, one registry.
//!
//! The paper measures every algorithm with the same yardstick — the
//! per-node/per-edge commit times of Definition 1 — yet each family
//! (MIS, ruling sets, matching, orientation, coloring) naturally produces
//! a differently-typed output. This module erases that difference:
//!
//! * [`Algorithm`] — the one trait every implementation satisfies:
//!   `name()`, `problem()`, a typed [`Algorithm::Params`] with a sane
//!   `Default`, and `execute(&Graph, &RunSpec) -> AlgoRun`.
//! * [`RunSpec`] — everything one run needs besides graph and algorithm
//!   parameters: seed, executor, round budget, and a
//!   [`TranscriptPolicy`] that lets the engine skip ledger bookkeeping
//!   when only completion times are wanted.
//! * [`Workspace`] — reusable engine arenas keyed to a graph's CSR
//!   shape; repeated runs through `execute_in` reuse allocations
//!   instead of paying them per run.
//! * [`AlgoRun`] — the single result type: an output-erased transcript
//!   (commit clocks survive; labels move into [`Solution`]) plus shared
//!   [`AlgoRun::worst_case`], [`AlgoRun::report`], and
//!   [`AlgoRun::verify`] wired to the `localavg_graph::analysis`
//!   validators.
//! * [`registry`] — the string-keyed catalog (`"mis/luby"`,
//!   `"ruling/two-two"`, `"matching/det"`, …) for dynamic dispatch:
//!   sweep drivers iterate it instead of special-casing five families.
//!   [`DynAlgorithm::with_params`] configures an entry from string
//!   `key=value` pairs with per-algorithm validation, so CLIs can vary
//!   tuning knobs without knowing the typed parameter structs.
//!
//! The pre-`RunSpec` entry points (`run(&Graph, seed)`,
//! `run_with_exec(...)`) survive as deprecated shims for one release;
//! migrate via `execute(&g, &RunSpec::new(seed))`.
//!
//! # Quickstart
//!
//! ```
//! use localavg_core::algo::{registry, RunSpec};
//! use localavg_graph::{gen, rng::Rng};
//!
//! let mut rng = Rng::seed_from(1);
//! let g = gen::random_regular(64, 4, &mut rng).expect("graph");
//!
//! // Dynamic dispatch by name…
//! let run = registry()
//!     .get("mis/luby")
//!     .expect("registered")
//!     .execute(&g, &RunSpec::new(7));
//! run.verify(&g).expect("valid MIS");
//! assert!(run.report(&g).node_averaged < 32.0);
//!
//! // …or sweep everything whose domain fits the graph (degree floor,
//! // and the `*/tree-rc` family only runs on forests).
//! for algo in registry().iter() {
//!     if algo.problem().min_degree() <= g.min_degree() && !algo.requires_tree() {
//!         let run = algo.execute(&g, &RunSpec::new(7));
//!         run.verify(&g).expect("every algorithm is valid");
//!     }
//! }
//! ```
//!
//! # Repeated runs and string-keyed parameters
//!
//! ```
//! use localavg_core::algo::{registry, RunSpec, TranscriptPolicy, Workspace};
//! use localavg_graph::gen;
//!
//! let g = gen::grid(8, 8);
//! // A (2, 5)-ruling set: Theorem 3 with a fixed iteration count.
//! let algo = registry()
//!     .get("ruling/det")
//!     .expect("registered")
//!     .with_params(&[("iterations", "2")])
//!     .expect("valid parameters");
//! // Reuse arenas and skip the CONGEST audit across repeated runs.
//! let mut ws = Workspace::new();
//! let spec = RunSpec::new(0).with_transcript(TranscriptPolicy::CompletionsOnly);
//! for seed in 0..4 {
//!     let run = algo.execute_in(&g, &spec.clone().with_seed(seed), &mut ws);
//!     run.verify(&g).expect("valid ruling set");
//! }
//! ```

mod impls;

pub use impls::{
    ColoringLinial, ColoringTreeRc, ColoringTrial, DetRulingSpec, MatchingDet, MatchingGreedy,
    MatchingLuby, MisDegreeGuided, MisGreedy, MisLuby, MisTreeRc, OrientationDet, OrientationRand,
    RulingDet, RulingTreeRc, RulingTwoTwo,
};

use crate::coloring::ColoringRun;
use crate::matching::MatchingRun;
use crate::metrics::{CompletionTimes, ComplexityReport};
use crate::mis::MisRun;
use crate::orientation::OrientationRun;
use crate::ruling::RulingRun;
use localavg_graph::analysis::{self, Orientation};
use localavg_graph::suggest::closest_match;
use localavg_graph::Graph;
pub use localavg_sim::engine::{Exec, RunSpec};
pub use localavg_sim::transcript::TranscriptPolicy;
use localavg_sim::transcript::{Round, Transcript};
pub use localavg_sim::workspace::Workspace;
use std::fmt;
use std::sync::OnceLock;

/// The problem an algorithm solves (the LCL class, in the landscape
/// papers' terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Maximal independent set (§3.1).
    Mis,
    /// (2, β)-ruling set (Theorems 2–3).
    RulingSet,
    /// Maximal matching (Theorems 4–5).
    MaximalMatching,
    /// Sinkless orientation (Theorem 6 / \[GS17a\]).
    SinklessOrientation,
    /// Proper (vertex) coloring (§1.2).
    Coloring,
}

impl Problem {
    /// Every problem family, in registry-key order.
    pub const ALL: [Problem; 5] = [
        Problem::Mis,
        Problem::RulingSet,
        Problem::MaximalMatching,
        Problem::SinklessOrientation,
        Problem::Coloring,
    ];

    /// Minimum degree the problem's domain requires (sinkless orientation
    /// is only defined on graphs of minimum degree 3).
    pub fn min_degree(&self) -> usize {
        match self {
            Problem::SinklessOrientation => 3,
            _ => 0,
        }
    }

    /// Short human-readable label (used by `exp --list`).
    pub fn label(&self) -> &'static str {
        match self {
            Problem::Mis => "maximal independent set",
            Problem::RulingSet => "ruling set",
            Problem::MaximalMatching => "maximal matching",
            Problem::SinklessOrientation => "sinkless orientation",
            Problem::Coloring => "coloring",
        }
    }

    /// Stable selector key — the family prefix of the registry keys
    /// (`"mis"`, `"ruling"`, `"matching"`, `"orientation"`, `"coloring"`).
    /// Used by `exp --problem`.
    pub fn key(&self) -> &'static str {
        match self {
            Problem::Mis => "mis",
            Problem::RulingSet => "ruling",
            Problem::MaximalMatching => "matching",
            Problem::SinklessOrientation => "orientation",
            Problem::Coloring => "coloring",
        }
    }

    /// Parses a selector key; the inverse of [`Problem::key`].
    pub fn parse(s: &str) -> Option<Problem> {
        Problem::ALL.into_iter().find(|p| p.key() == s)
    }

    /// The problem key closest to `s` by edit distance, for
    /// "unknown problem, did you mean …" errors. Garbage input (further
    /// than a plausible typo) gets no suggestion.
    pub fn suggest(s: &str) -> Option<&'static str> {
        closest_match(Problem::ALL.into_iter().map(|p| p.key()), s)
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The typed output of a run, one variant per problem family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution {
    /// MIS indicator per node.
    Mis {
        /// `in_set[v]` iff node `v` joined the independent set.
        in_set: Vec<bool>,
    },
    /// Ruling-set indicator per node with the guaranteed domination radius.
    RulingSet {
        /// `in_set[v]` iff node `v` joined the ruling set.
        in_set: Vec<bool>,
        /// Every node is within distance `beta` of the set.
        beta: usize,
    },
    /// Matching indicator per edge.
    Matching {
        /// `in_matching[e]` iff edge `e` was matched.
        in_matching: Vec<bool>,
    },
    /// Orientation label per edge.
    Orientation {
        /// Direction of every edge.
        orientation: Vec<Orientation>,
    },
    /// Color per node.
    Coloring {
        /// The color assigned to every node.
        colors: Vec<usize>,
    },
}

impl Solution {
    /// The problem this solution answers.
    pub fn problem(&self) -> Problem {
        match self {
            Solution::Mis { .. } => Problem::Mis,
            Solution::RulingSet { .. } => Problem::RulingSet,
            Solution::Matching { .. } => Problem::MaximalMatching,
            Solution::Orientation { .. } => Problem::SinklessOrientation,
            Solution::Coloring { .. } => Problem::Coloring,
        }
    }

    /// Node-set indicator, for MIS and ruling-set solutions.
    pub fn node_set(&self) -> Option<&[bool]> {
        match self {
            Solution::Mis { in_set } | Solution::RulingSet { in_set, .. } => Some(in_set),
            _ => None,
        }
    }

    /// Matching indicator, for matching solutions.
    pub fn matching(&self) -> Option<&[bool]> {
        match self {
            Solution::Matching { in_matching } => Some(in_matching),
            _ => None,
        }
    }

    /// Edge orientations, for orientation solutions.
    pub fn orientation(&self) -> Option<&[Orientation]> {
        match self {
            Solution::Orientation { orientation } => Some(orientation),
            _ => None,
        }
    }

    /// Node colors, for coloring solutions.
    pub fn colors(&self) -> Option<&[usize]> {
        match self {
            Solution::Coloring { colors } => Some(colors),
            _ => None,
        }
    }
}

/// Why a [`Solution`] failed validation against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationError {
    /// Output vector length does not match the graph.
    SizeMismatch {
        /// Elements the graph expects (nodes or edges).
        expected: usize,
        /// Elements the solution carries.
        got: usize,
    },
    /// The node set is not a maximal independent set.
    NotMaximalIndependentSet,
    /// The node set is not a (2, β)-ruling set.
    NotRulingSet {
        /// The β the run promised.
        beta: usize,
    },
    /// The edge set is not a maximal matching.
    NotMaximalMatching,
    /// Some node of degree ≥ 1 has out-degree 0.
    HasSink,
    /// Two adjacent nodes share a color.
    NotProperColoring,
    /// The transcript never committed every required output.
    IncompleteTranscript,
}

impl fmt::Display for ViolationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationError::SizeMismatch { expected, got } => {
                write!(f, "solution size mismatch: expected {expected}, got {got}")
            }
            ViolationError::NotMaximalIndependentSet => {
                f.write_str("not a maximal independent set")
            }
            ViolationError::NotRulingSet { beta } => {
                write!(f, "not a (2, {beta})-ruling set")
            }
            ViolationError::NotMaximalMatching => f.write_str("not a maximal matching"),
            ViolationError::HasSink => f.write_str("orientation has a sink"),
            ViolationError::NotProperColoring => f.write_str("coloring is not proper"),
            ViolationError::IncompleteTranscript => {
                f.write_str("transcript incomplete: some output never committed")
            }
        }
    }
}

impl std::error::Error for ViolationError {}

/// The unified result of running any [`Algorithm`].
///
/// The transcript is output-erased (labels live in [`Solution`]), so every
/// family shares the same metrics plumbing: [`AlgoRun::report`] feeds it to
/// [`ComplexityReport`] and [`AlgoRun::completion_times`] to
/// [`CompletionTimes`] / [`crate::metrics::RunAggregate`].
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// Registry key of the algorithm that produced this run (`""` when the
    /// run was converted from a legacy `*Run` by hand).
    pub algorithm: &'static str,
    /// Output-erased execution transcript (commit clocks, halt rounds, and
    /// the CONGEST message audit all survive erasure).
    pub transcript: Transcript<(), ()>,
    /// The typed output labels.
    pub solution: Solution,
}

impl AlgoRun {
    /// Stamps the registry key onto the run (builder style).
    pub fn named(mut self, name: &'static str) -> Self {
        self.algorithm = name;
        self
    }

    /// The problem this run solved.
    pub fn problem(&self) -> Problem {
        self.solution.problem()
    }

    /// Total rounds until global termination (classic worst case).
    pub fn worst_case(&self) -> Round {
        self.transcript.rounds
    }

    /// Definition 1 / Appendix A complexity measures of this run.
    ///
    /// # Panics
    ///
    /// Panics if the transcript is incomplete (see
    /// [`ComplexityReport::from_run`]).
    pub fn report(&self, g: &Graph) -> ComplexityReport {
        ComplexityReport::from_run(g, &self.transcript)
    }

    /// Per-element completion times (for [`crate::metrics::RunAggregate`]).
    ///
    /// # Panics
    ///
    /// Panics if the transcript is incomplete.
    pub fn completion_times(&self, g: &Graph) -> CompletionTimes {
        CompletionTimes::from_transcript(g, &self.transcript)
    }

    /// Validates the solution against `g` using the
    /// [`localavg_graph::analysis`] validators.
    pub fn verify(&self, g: &Graph) -> Result<(), ViolationError> {
        if !self.transcript.is_complete() {
            return Err(ViolationError::IncompleteTranscript);
        }
        let check_len = |expected: usize, got: usize| {
            if expected == got {
                Ok(())
            } else {
                Err(ViolationError::SizeMismatch { expected, got })
            }
        };
        match &self.solution {
            Solution::Mis { in_set } => {
                check_len(g.n(), in_set.len())?;
                if analysis::is_maximal_independent_set(g, in_set) {
                    Ok(())
                } else {
                    Err(ViolationError::NotMaximalIndependentSet)
                }
            }
            Solution::RulingSet { in_set, beta } => {
                check_len(g.n(), in_set.len())?;
                if analysis::is_ruling_set(g, in_set, 2, *beta) {
                    Ok(())
                } else {
                    Err(ViolationError::NotRulingSet { beta: *beta })
                }
            }
            Solution::Matching { in_matching } => {
                check_len(g.m(), in_matching.len())?;
                if analysis::is_maximal_matching(g, in_matching) {
                    Ok(())
                } else {
                    Err(ViolationError::NotMaximalMatching)
                }
            }
            Solution::Orientation { orientation } => {
                check_len(g.m(), orientation.len())?;
                if analysis::is_sinkless_orientation(g, orientation) {
                    Ok(())
                } else {
                    Err(ViolationError::HasSink)
                }
            }
            Solution::Coloring { colors } => {
                check_len(g.n(), colors.len())?;
                if analysis::is_proper_coloring(g, colors) {
                    Ok(())
                } else {
                    Err(ViolationError::NotProperColoring)
                }
            }
        }
    }
}

impl From<MisRun> for AlgoRun {
    fn from(run: MisRun) -> Self {
        AlgoRun {
            algorithm: "",
            transcript: run.transcript.into_erased(),
            solution: Solution::Mis { in_set: run.in_set },
        }
    }
}

impl From<RulingRun> for AlgoRun {
    fn from(run: RulingRun) -> Self {
        AlgoRun {
            algorithm: "",
            transcript: run.transcript.into_erased(),
            solution: Solution::RulingSet {
                in_set: run.in_set,
                beta: run.beta,
            },
        }
    }
}

impl From<MatchingRun> for AlgoRun {
    fn from(run: MatchingRun) -> Self {
        AlgoRun {
            algorithm: "",
            transcript: run.transcript.into_erased(),
            solution: Solution::Matching {
                in_matching: run.in_matching,
            },
        }
    }
}

impl From<OrientationRun> for AlgoRun {
    fn from(run: OrientationRun) -> Self {
        AlgoRun {
            algorithm: "",
            transcript: run.transcript.into_erased(),
            solution: Solution::Orientation {
                orientation: run.orientation,
            },
        }
    }
}

impl From<ColoringRun> for AlgoRun {
    fn from(run: ColoringRun) -> Self {
        AlgoRun {
            algorithm: "",
            transcript: run.transcript.into_erased(),
            solution: Solution::Coloring { colors: run.colors },
        }
    }
}

/// Declares one string-keyed tuning parameter of an algorithm (the
/// machine-readable side of [`Algorithm::set_param`]). Listed by
/// `exp --list` and the README parameter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter key as accepted by [`DynAlgorithm::with_params`]
    /// (kebab-case, e.g. `"mark-factor"`).
    pub key: &'static str,
    /// Human-readable rendering of the default value.
    pub default: &'static str,
    /// One-line description, including the accepted range.
    pub doc: &'static str,
}

/// Why a string-keyed parameter assignment was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// The algorithm takes no parameters at all.
    NoParams {
        /// Registry key of the algorithm.
        algorithm: &'static str,
        /// The key that was offered anyway.
        key: String,
    },
    /// The key names no parameter of this algorithm.
    UnknownKey {
        /// Registry key of the algorithm.
        algorithm: &'static str,
        /// The unknown key.
        key: String,
        /// Closest declared key, if any is a plausible typo.
        suggestion: Option<&'static str>,
        /// Every declared key, for the error message.
        known: Vec<&'static str>,
    },
    /// The key exists but the value failed this algorithm's validation.
    InvalidValue {
        /// Registry key of the algorithm.
        algorithm: &'static str,
        /// The parameter key.
        key: String,
        /// The rejected value.
        value: String,
        /// What the algorithm accepts (e.g. `"a float in (0, 1]"`).
        expected: &'static str,
    },
}

impl ParamError {
    /// The standard rejection for a key that matches no [`ParamSpec`]:
    /// picks [`ParamError::NoParams`] or a [`ParamError::UnknownKey`]
    /// with a `suggest()`-style closest match. Implementations call this
    /// from `set_param`'s fall-through arm.
    pub fn unknown_key(algorithm: &'static str, key: &str, specs: &[ParamSpec]) -> ParamError {
        if specs.is_empty() {
            return ParamError::NoParams {
                algorithm,
                key: key.to_string(),
            };
        }
        let suggestion = closest_match(specs.iter().map(|s| s.key), key);
        ParamError::UnknownKey {
            algorithm,
            key: key.to_string(),
            suggestion,
            known: specs.iter().map(|s| s.key).collect(),
        }
    }

    /// Builds an [`ParamError::InvalidValue`].
    pub fn invalid(
        algorithm: &'static str,
        key: &str,
        value: &str,
        expected: &'static str,
    ) -> ParamError {
        ParamError::InvalidValue {
            algorithm,
            key: key.to_string(),
            value: value.to_string(),
            expected,
        }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NoParams { algorithm, key } => {
                write!(f, "`{algorithm}` takes no parameters (got `{key}`)")
            }
            ParamError::UnknownKey {
                algorithm,
                key,
                suggestion,
                known,
            } => {
                write!(f, "`{algorithm}` has no parameter `{key}`")?;
                if let Some(s) = suggestion {
                    write!(f, " — did you mean `{s}`?")?;
                }
                write!(f, " (known: {})", known.join(", "))
            }
            ParamError::InvalidValue {
                algorithm,
                key,
                value,
                expected,
            } => write!(
                f,
                "invalid value `{value}` for `{algorithm}` parameter `{key}`: expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ParamError {}

/// The unified algorithm interface with statically-typed parameters.
///
/// Implementations are zero-sized unit structs (e.g. [`MisLuby`]); the
/// registry exposes them through the object-safe [`DynAlgorithm`] facade.
/// The one required entry point is [`Algorithm::execute_with_in`] —
/// graph, [`RunSpec`], typed parameters, reusable [`Workspace`]; every
/// other entry point (`execute`, `execute_with`, `execute_in`) is a
/// convenience default over it. Call [`Algorithm::execute_with`] directly
/// when you need non-default typed parameters.
pub trait Algorithm {
    /// Tuning parameters. `Default` must be sensible on any input graph
    /// (graph-dependent defaults are resolved inside `execute_with_in`).
    type Params: Clone + Default + fmt::Debug;

    /// Stable registry key, e.g. `"mis/luby"`.
    fn name(&self) -> &'static str;

    /// The problem this algorithm solves.
    fn problem(&self) -> Problem;

    /// Whether the run is a pure function of the graph (the seed is
    /// ignored).
    fn deterministic(&self) -> bool {
        false
    }

    /// Whether the algorithm's domain is restricted to forests. Sweep and
    /// fuzz sampling only pair `true` algorithms with generators flagged
    /// [`localavg_graph::gen::NamedGenerator::is_tree`]; forcing such a
    /// pairing by hand yields a
    /// [`localavg_graph::decomp::NotATree`]-carrying panic from
    /// [`Algorithm::execute_with_in`].
    fn requires_tree(&self) -> bool {
        false
    }

    /// Runs under `spec` with explicit parameters, reusing the arenas in
    /// `ws` — the primary entry point every implementation provides.
    ///
    /// Executors are bit-identical (see `localavg_sim::engine`), so
    /// `spec.exec` is a pure performance knob; structural algorithms that
    /// never enter the round engine ignore it (and the workspace).
    fn execute_with_in(
        &self,
        g: &Graph,
        spec: &RunSpec,
        params: &Self::Params,
        ws: &mut Workspace,
    ) -> AlgoRun;

    /// Runs under `spec` with explicit parameters and fresh arenas.
    fn execute_with(&self, g: &Graph, spec: &RunSpec, params: &Self::Params) -> AlgoRun {
        self.execute_with_in(g, spec, params, &mut Workspace::new())
    }

    /// Runs under `spec` with default parameters and fresh arenas.
    fn execute(&self, g: &Graph, spec: &RunSpec) -> AlgoRun {
        self.execute_with(g, spec, &Self::Params::default())
    }

    /// Runs under `spec` with default parameters, reusing the arenas in
    /// `ws`.
    fn execute_in(&self, g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> AlgoRun {
        self.execute_with_in(g, spec, &Self::Params::default(), ws)
    }

    /// The string-keyed parameters this algorithm accepts (empty for
    /// parameterless algorithms).
    fn param_specs(&self) -> &'static [ParamSpec] {
        &[]
    }

    /// Applies one string-keyed parameter assignment to `params`,
    /// validating key and value. The default rejects every key (correct
    /// for parameterless algorithms); implementations with a non-empty
    /// [`Algorithm::param_specs`] override it.
    ///
    /// # Errors
    ///
    /// [`ParamError::UnknownKey`] / [`ParamError::NoParams`] for keys not
    /// in `param_specs()`, [`ParamError::InvalidValue`] for values that
    /// fail the algorithm's validation.
    fn set_param(
        &self,
        params: &mut Self::Params,
        key: &str,
        value: &str,
    ) -> Result<(), ParamError> {
        let _ = (params, value);
        Err(ParamError::unknown_key(
            self.name(),
            key,
            self.param_specs(),
        ))
    }

    /// Runs with default parameters.
    #[deprecated(note = "use `execute(&g, &RunSpec::new(seed))`")]
    fn run(&self, g: &Graph, seed: u64) -> AlgoRun {
        self.execute(g, &RunSpec::new(seed))
    }

    /// Runs with explicit parameters.
    #[deprecated(note = "use `execute_with(&g, &RunSpec::new(seed), params)`")]
    fn run_with(&self, g: &Graph, seed: u64, params: &Self::Params) -> AlgoRun {
        self.execute_with(g, &RunSpec::new(seed), params)
    }

    /// Runs with default parameters on a chosen executor.
    #[deprecated(note = "use `execute(&g, &RunSpec::new(seed).with_exec(exec))`")]
    fn run_exec(&self, g: &Graph, seed: u64, exec: Exec) -> AlgoRun {
        self.execute(g, &RunSpec::new(seed).with_exec(exec))
    }

    /// Runs with explicit parameters on a chosen executor.
    #[deprecated(note = "use `execute_with(&g, &RunSpec::new(seed).with_exec(exec), params)`")]
    fn run_with_exec(&self, g: &Graph, seed: u64, params: &Self::Params, exec: Exec) -> AlgoRun {
        self.execute_with(g, &RunSpec::new(seed).with_exec(exec), params)
    }
}

/// Object-safe facade over [`Algorithm`] for the string-keyed registry
/// (the typed `Params` associated type keeps `Algorithm` itself out of
/// trait-object land). Blanket-implemented for every `Algorithm`.
///
/// [`DynAlgorithm::with_params`] is the string-keyed counterpart of the
/// typed `Algorithm::execute_with`: it validates `key=value` pairs
/// against the algorithm's [`ParamSpec`]s and returns a configured,
/// boxed algorithm that runs with those parameters — what
/// `exp sweep --param family/name:key=value` dispatches through.
pub trait DynAlgorithm: Send + Sync {
    /// Stable registry key.
    fn name(&self) -> &'static str;
    /// The problem solved.
    fn problem(&self) -> Problem;
    /// Whether the seed is ignored.
    fn deterministic(&self) -> bool;
    /// Whether the algorithm's domain is restricted to forests (see
    /// [`Algorithm::requires_tree`]).
    fn requires_tree(&self) -> bool;
    /// Runs under `spec` with this instance's parameters (defaults for
    /// registry entries; overridden values for configured instances).
    fn execute(&self, g: &Graph, spec: &RunSpec) -> AlgoRun;
    /// Runs under `spec`, reusing the arenas in `ws`.
    fn execute_in(&self, g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> AlgoRun;
    /// The string-keyed parameters this algorithm accepts.
    fn param_specs(&self) -> &'static [ParamSpec];
    /// Builds a configured instance with the given `(key, value)`
    /// assignments applied on top of this instance's parameters.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's [`ParamError`] (unknown key with a
    /// closest-match suggestion, or invalid value).
    fn with_params(&self, params: &[(&str, &str)]) -> Result<Box<dyn DynAlgorithm>, ParamError>;

    /// Runs with default parameters.
    #[deprecated(note = "use `execute(&g, &RunSpec::new(seed))`")]
    fn run(&self, g: &Graph, seed: u64) -> AlgoRun {
        self.execute(g, &RunSpec::new(seed))
    }

    /// Runs with default parameters on a chosen executor.
    #[deprecated(note = "use `execute(&g, &RunSpec::new(seed).with_exec(exec))`")]
    fn run_exec(&self, g: &Graph, seed: u64, exec: Exec) -> AlgoRun {
        self.execute(g, &RunSpec::new(seed).with_exec(exec))
    }
}

impl<A> DynAlgorithm for A
where
    A: Algorithm + Copy + Send + Sync + 'static,
    A::Params: Send + Sync + 'static,
{
    fn name(&self) -> &'static str {
        Algorithm::name(self)
    }

    fn problem(&self) -> Problem {
        Algorithm::problem(self)
    }

    fn deterministic(&self) -> bool {
        Algorithm::deterministic(self)
    }

    fn requires_tree(&self) -> bool {
        Algorithm::requires_tree(self)
    }

    fn execute(&self, g: &Graph, spec: &RunSpec) -> AlgoRun {
        Algorithm::execute(self, g, spec)
    }

    fn execute_in(&self, g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> AlgoRun {
        Algorithm::execute_in(self, g, spec, ws)
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        Algorithm::param_specs(self)
    }

    fn with_params(&self, params: &[(&str, &str)]) -> Result<Box<dyn DynAlgorithm>, ParamError> {
        let mut typed = A::Params::default();
        for (key, value) in params {
            Algorithm::set_param(self, &mut typed, key, value)?;
        }
        Ok(Box::new(Configured {
            algo: *self,
            params: typed,
        }))
    }
}

/// An algorithm bound to explicit typed parameters — what
/// [`DynAlgorithm::with_params`] returns. Runs exactly like the bare
/// algorithm, substituting the stored parameters for the defaults.
struct Configured<A: Algorithm> {
    algo: A,
    params: A::Params,
}

impl<A> DynAlgorithm for Configured<A>
where
    A: Algorithm + Copy + Send + Sync + 'static,
    A::Params: Send + Sync + 'static,
{
    fn name(&self) -> &'static str {
        Algorithm::name(&self.algo)
    }

    fn problem(&self) -> Problem {
        Algorithm::problem(&self.algo)
    }

    fn deterministic(&self) -> bool {
        Algorithm::deterministic(&self.algo)
    }

    fn requires_tree(&self) -> bool {
        Algorithm::requires_tree(&self.algo)
    }

    fn execute(&self, g: &Graph, spec: &RunSpec) -> AlgoRun {
        self.algo.execute_with(g, spec, &self.params)
    }

    fn execute_in(&self, g: &Graph, spec: &RunSpec, ws: &mut Workspace) -> AlgoRun {
        self.algo.execute_with_in(g, spec, &self.params, ws)
    }

    fn param_specs(&self) -> &'static [ParamSpec] {
        Algorithm::param_specs(&self.algo)
    }

    fn with_params(&self, params: &[(&str, &str)]) -> Result<Box<dyn DynAlgorithm>, ParamError> {
        let mut typed = self.params.clone();
        for (key, value) in params {
            self.algo.set_param(&mut typed, key, value)?;
        }
        Ok(Box::new(Configured {
            algo: self.algo,
            params: typed,
        }))
    }
}

/// The string-keyed catalog of every registered algorithm.
pub struct Registry {
    entries: Vec<&'static dyn DynAlgorithm>,
}

impl Registry {
    /// Looks an algorithm up by its registry key.
    pub fn get(&self, name: &str) -> Option<&'static dyn DynAlgorithm> {
        self.entries.iter().copied().find(|a| a.name() == name)
    }

    /// All registered algorithms, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &'static dyn DynAlgorithm> + '_ {
        self.entries.iter().copied()
    }

    /// The registered algorithms solving `problem`, in registration
    /// order — the filter behind `exp --problem mis|coloring|…`.
    pub fn by_problem(
        &self,
        problem: Problem,
    ) -> impl Iterator<Item = &'static dyn DynAlgorithm> + '_ {
        self.entries
            .iter()
            .copied()
            .filter(move |a| a.problem() == problem)
    }

    /// All registry keys, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|a| a.name())
    }

    /// Number of registered algorithms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty (it never is).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered key closest to `name` by edit distance — the basis
    /// of `exp`'s "unknown algorithm, did you mean …" error, via the
    /// workspace-wide [`localavg_graph::suggest`] policy. Returns `None`
    /// when even the best candidate is too far off to be a typo, so
    /// garbage input doesn't get a misleading suggestion.
    pub fn suggest(&self, name: &str) -> Option<&'static str> {
        closest_match(self.names(), name)
    }
}

/// The global registry of every algorithm in the workspace.
///
/// Keys follow `family/variant`:
///
/// | key | problem | paper result |
/// |---|---|---|
/// | `mis/luby` | MIS | §3.1, Luby \[Lub86, ABI86\] |
/// | `mis/degree-guided` | MIS | §3.1, Ghaffari-style desire levels |
/// | `mis/greedy` | MIS | deterministic greedy-by-id baseline |
/// | `ruling/two-two` | ruling set | Theorem 2, randomized (2,2) |
/// | `ruling/det` | ruling set | Theorem 3, deterministic (2,β) |
/// | `matching/luby` | matching | Theorem 4, randomized |
/// | `matching/det` | matching | Theorem 5, fractional rounding |
/// | `matching/greedy` | matching | deterministic proposal baseline |
/// | `orientation/rand` | sinkless orientation | \[GS17a\]-style |
/// | `orientation/det` | sinkless orientation | Theorem 6 |
/// | `coloring/trial` | coloring | §1.2, random (Δ+1) trials |
/// | `coloring/linial` | coloring | Linial's O(log* n) |
/// | `mis/tree-rc` | MIS | rake-and-compress, trees only |
/// | `ruling/tree-rc` | ruling set | rake-and-compress (2,2), trees only |
/// | `coloring/tree-rc` | coloring | rake-and-compress 3-coloring, trees only |
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: vec![
            &MisLuby,
            &MisDegreeGuided,
            &MisGreedy,
            &RulingTwoTwo,
            &RulingDet,
            &MatchingLuby,
            &MatchingDet,
            &MatchingGreedy,
            &OrientationRand,
            &OrientationDet,
            &ColoringTrial,
            &ColoringLinial,
            &MisTreeRc,
            &RulingTreeRc,
            &ColoringTreeRc,
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use localavg_graph::gen;
    use localavg_graph::rng::Rng;

    #[test]
    fn registry_keys_are_unique_and_stable() {
        let names: Vec<&str> = registry().names().collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate registry keys");
        for key in [
            "mis/luby",
            "ruling/two-two",
            "matching/det",
            "orientation/det",
            "coloring/linial",
        ] {
            assert!(registry().get(key).is_some(), "missing {key}");
        }
        assert_eq!(registry().len(), 15);
    }

    #[test]
    fn dyn_execute_matches_typed_execute() {
        let mut rng = Rng::seed_from(2);
        let g = gen::random_regular(48, 4, &mut rng).unwrap();
        let spec = RunSpec::new(5);
        let dynamic = registry().get("mis/luby").unwrap().execute(&g, &spec);
        let typed = Algorithm::execute(&MisLuby, &g, &spec);
        assert_eq!(dynamic.solution, typed.solution);
        assert_eq!(
            dynamic.transcript.node_commit_round,
            typed.transcript.node_commit_round
        );
        assert_eq!(dynamic.algorithm, "mis/luby");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_execute() {
        // The one-release compatibility contract: the old positional
        // entry points are thin shims over `execute` and must produce
        // identical runs.
        let mut rng = Rng::seed_from(8);
        let g = gen::random_regular(48, 4, &mut rng).unwrap();
        let algo = registry().get("mis/luby").unwrap();
        let via_execute = algo.execute(&g, &RunSpec::new(5));
        let via_run = algo.run(&g, 5);
        assert_eq!(via_run.solution, via_execute.solution);
        assert_eq!(
            via_run.transcript.node_commit_round,
            via_execute.transcript.node_commit_round
        );
        let via_exec = algo.run_exec(&g, 5, Exec::Sequential);
        assert_eq!(via_exec.solution, via_execute.solution);
        let typed_run = Algorithm::run(&MisLuby, &g, 5);
        assert_eq!(typed_run.solution, via_execute.solution);
        let typed_with = Algorithm::run_with_exec(
            &MisLuby,
            &g,
            5,
            &crate::mis::LubyMisParams::default(),
            Exec::Sequential,
        );
        assert_eq!(typed_with.solution, via_execute.solution);
    }

    #[test]
    fn verify_accepts_valid_and_rejects_corrupted() {
        let g = gen::grid(4, 4);
        let run = registry()
            .get("mis/greedy")
            .unwrap()
            .execute(&g, &RunSpec::new(0));
        assert_eq!(run.verify(&g), Ok(()));
        let mut bad = run.clone();
        if let Solution::Mis { in_set } = &mut bad.solution {
            for b in in_set.iter_mut() {
                *b = false; // empty set is not maximal
            }
        }
        assert_eq!(
            bad.verify(&g),
            Err(ViolationError::NotMaximalIndependentSet)
        );
        let mut short = run.clone();
        if let Solution::Mis { in_set } = &mut short.solution {
            in_set.pop();
        }
        assert!(matches!(
            short.verify(&g),
            Err(ViolationError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn verify_checks_each_family() {
        let mut rng = Rng::seed_from(9);
        let g = gen::random_regular(32, 4, &mut rng).unwrap();
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree() || algo.requires_tree() {
                continue;
            }
            let run = algo.execute(&g, &RunSpec::new(3));
            assert_eq!(run.verify(&g), Ok(()), "{} failed", algo.name());
            assert_eq!(run.problem(), algo.problem());
            assert!(run.worst_case() == run.transcript.rounds);
        }
    }

    #[test]
    fn by_problem_partitions_the_registry() {
        let r = registry();
        let mut total = 0;
        for p in Problem::ALL {
            let names: Vec<&str> = r.by_problem(p).map(|a| a.name()).collect();
            assert!(!names.is_empty(), "no algorithm for {p}");
            assert!(
                names.iter().all(|n| n.starts_with(p.key())),
                "{p}: keys {names:?} should start with `{}`",
                p.key()
            );
            total += names.len();
        }
        assert_eq!(total, r.len(), "every algorithm belongs to one problem");
        assert_eq!(r.by_problem(Problem::Mis).count(), 4);
    }

    #[test]
    fn problem_keys_parse_and_suggest() {
        for p in Problem::ALL {
            assert_eq!(Problem::parse(p.key()), Some(p));
        }
        assert_eq!(Problem::parse("matchings"), None);
        assert_eq!(Problem::suggest("matchign"), Some("matching"));
        assert_eq!(Problem::suggest("colorng"), Some("coloring"));
        assert_eq!(Problem::suggest("zzzzzz"), None);
    }

    #[test]
    fn workspace_execute_in_matches_fresh_execution() {
        let mut rng = Rng::seed_from(12);
        let g = gen::random_regular(48, 4, &mut rng).unwrap();
        let mut ws = Workspace::new();
        let spec = RunSpec::new(9);
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree() || algo.requires_tree() {
                continue;
            }
            // Twice through the same workspace (second run reuses arenas),
            // then compared against a fresh execution.
            let first = algo.execute_in(&g, &spec, &mut ws);
            let reused = algo.execute_in(&g, &spec, &mut ws);
            let fresh = algo.execute(&g, &spec);
            assert_eq!(first.solution, fresh.solution, "{}", algo.name());
            assert_eq!(reused.solution, fresh.solution, "{}", algo.name());
            assert_eq!(
                reused.transcript.node_commit_round,
                fresh.transcript.node_commit_round,
                "{}",
                algo.name()
            );
            assert_eq!(
                reused.transcript.edge_commit_round,
                fresh.transcript.edge_commit_round,
                "{}",
                algo.name()
            );
        }
        assert!(ws.reuse_count() > 0);
    }

    #[test]
    fn transcript_policies_preserve_solutions_and_completions() {
        let mut rng = Rng::seed_from(13);
        let g = gen::random_regular(48, 4, &mut rng).unwrap();
        for algo in registry().iter() {
            if algo.problem().min_degree() > g.min_degree() || algo.requires_tree() {
                continue;
            }
            let full = algo.execute(&g, &RunSpec::new(4));
            for policy in [TranscriptPolicy::CompletionsOnly, TranscriptPolicy::None] {
                let lean = algo.execute(&g, &RunSpec::new(4).with_transcript(policy));
                assert_eq!(lean.solution, full.solution, "{}", algo.name());
                assert_eq!(
                    lean.completion_times(&g),
                    full.completion_times(&g),
                    "{} under {policy:?}",
                    algo.name()
                );
                assert_eq!(lean.verify(&g), Ok(()));
            }
        }
    }

    #[test]
    fn ruling_set_beta_violation_detected() {
        // A (2,2)-ruling set claimed as beta is fine, but an empty set is
        // not a ruling set at all on a nonempty graph.
        let g = gen::path(5);
        let bad = AlgoRun {
            algorithm: "",
            transcript: {
                let mut t =
                    Transcript::empty(localavg_sim::transcript::OutputKind::NodeLabels, 5, 4);
                t.node_commit_round = vec![0; 5];
                t.node_output = vec![Some(()); 5];
                t
            },
            solution: Solution::RulingSet {
                in_set: vec![false; 5],
                beta: 2,
            },
        };
        assert_eq!(
            bad.verify(&g),
            Err(ViolationError::NotRulingSet { beta: 2 })
        );
    }

    #[test]
    fn suggest_finds_close_matches() {
        let r = registry();
        assert_eq!(r.suggest("mis/lubby"), Some("mis/luby"));
        assert_eq!(r.suggest("matchign/det"), Some("matching/det"));
        assert_eq!(r.suggest("coloring/linail"), Some("coloring/linial"));
    }

    #[test]
    fn suggest_rejects_garbage() {
        // Nothing remotely close: no misleading "did you mean".
        assert_eq!(registry().suggest("foobar"), None);
        assert_eq!(registry().suggest("xx"), None);
    }

    #[test]
    fn solution_accessors() {
        let s = Solution::Mis {
            in_set: vec![true, false],
        };
        assert_eq!(s.node_set(), Some(&[true, false][..]));
        assert!(s.matching().is_none());
        let m = Solution::Matching {
            in_matching: vec![true],
        };
        assert_eq!(m.matching(), Some(&[true][..]));
        assert!(m.colors().is_none());
        assert_eq!(m.problem(), Problem::MaximalMatching);
    }
}
