//! Shared deterministic subroutines: Cole–Vishkin color reduction, prime
//! selection for Linial's coloring step, and small numeric helpers.
//!
//! These are the classic tools the paper's deterministic algorithms lean
//! on: Theorem 3's dominating-set iteration 3-colors pointer forests in
//! O(log* n) rounds, Theorem 5's rounding 3-colors paths/cycles, and the
//! ruling-set/matching finishers use Linial-style coloring.

/// One Cole–Vishkin reduction step for rooted forests / pointer chains.
///
/// Given a node's current color and its parent's current color (distinct),
/// produces a new color `2*i + bit(i)` where `i` is the lowest bit index at
/// which the colors differ. Iterating shrinks any `k`-coloring to a
/// constant-size palette in `O(log* k)` steps, staying proper along every
/// pointer edge.
///
/// # Panics
///
/// Panics if `my == parent` (that would not be a proper coloring).
///
/// # Example
///
/// ```
/// use localavg_core::subroutines::cv_step;
/// // Colors 5 (101b) and 1 (001b) differ first at bit 2; my bit there is 1.
/// assert_eq!(cv_step(5, 1), 2 * 2 + 1);
/// ```
pub fn cv_step(my: u64, parent: u64) -> u64 {
    assert_ne!(my, parent, "Cole–Vishkin requires distinct colors");
    let diff = my ^ parent;
    let i = diff.trailing_zeros() as u64;
    2 * i + ((my >> i) & 1)
}

/// The color for a root node (no parent): pair it with a fictitious parent
/// color that is guaranteed to differ.
pub fn cv_step_root(my: u64) -> u64 {
    let fake_parent = if my == 0 { 1 } else { 0 };
    cv_step(my, fake_parent)
}

/// Number of [`cv_step`] iterations that take any proper coloring with
/// `initial_colors` colors down to at most 6 colors.
///
/// All nodes compute the same schedule from global knowledge of `n`, so
/// the reduction runs synchronously without extra coordination.
///
/// # Example
///
/// ```
/// use localavg_core::subroutines::cv_rounds;
/// assert!(cv_rounds(6) == 0);
/// assert!(cv_rounds(1 << 20) <= 6);
/// ```
pub fn cv_rounds(initial_colors: u64) -> usize {
    let mut colors = initial_colors;
    let mut rounds = 0;
    while colors > 6 {
        // After one step colors are < 2 * ceil(log2(colors)) + 2.
        let bits = 64 - (colors - 1).leading_zeros() as u64;
        colors = 2 * bits;
        rounds += 1;
        assert!(rounds < 64, "cv_rounds failed to converge");
    }
    rounds
}

/// Smallest prime `>= x` (trial division; fine for the small values used
/// by Linial coloring steps).
///
/// # Example
///
/// ```
/// use localavg_core::subroutines::next_prime;
/// assert_eq!(next_prime(10), 11);
/// assert_eq!(next_prime(11), 11);
/// assert_eq!(next_prime(1), 2);
/// ```
pub fn next_prime(x: u64) -> u64 {
    let mut candidate = x.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 1;
    }
}

fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3u64;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// `ceil(log2(x))` for `x >= 1` (0 for `x = 1`).
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x >= 1);
    64 - (x - 1).leading_zeros()
}

/// Iterated logarithm `log* x` (base 2): the number of times `log2` must be
/// applied before the value drops to at most 1. The paper's Θ(log* n)
/// bounds are compared against this reference function in the experiments.
///
/// # Example
///
/// ```
/// use localavg_core::subroutines::log_star;
/// assert_eq!(log_star(1.0), 0);
/// assert_eq!(log_star(2.0), 1);
/// assert_eq!(log_star(16.0), 3);
/// assert_eq!(log_star(65536.0), 4);
/// ```
pub fn log_star(x: f64) -> usize {
    let mut x = x;
    let mut count = 0;
    while x > 1.0 {
        x = x.log2();
        count += 1;
        assert!(count < 16, "log_star diverged");
    }
    count
}

/// Parameters of one Linial color-reduction step: evaluating the current
/// color (seen as a polynomial over `F_p`) at a disagreement-free point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinialStep {
    /// Field size (prime).
    pub p: u64,
    /// Polynomial degree bound: colors are encoded with `degree + 1` base-p
    /// digits.
    pub degree: u64,
}

impl LinialStep {
    /// Chooses a field for one Linial step: reducing `k` colors on a graph
    /// of maximum degree `max_degree` to at most `p^2` colors.
    ///
    /// Guarantees `p > max_degree * degree` so a disagreement-free
    /// evaluation point always exists, and `p^(degree+1) >= k` so every
    /// color is encodable.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn choose(k: u64, max_degree: u64) -> LinialStep {
        assert!(k >= 1);
        let delta = max_degree.max(1);
        // Minimize the resulting palette p^2 over the polynomial degree d,
        // subject to p > Δ·d (a disagreement point exists) and
        // p^(d+1) >= k (every color is encodable).
        let mut best: Option<LinialStep> = None;
        for d in 1u64..=16 {
            // Smallest p with p^(d+1) >= k.
            let root = (k as f64).powf(1.0 / (d + 1) as f64).ceil() as u64;
            let mut p = next_prime(root.max(delta * d + 1).max(2));
            // Guard against floating point rounding: bump until cap >= k.
            loop {
                let mut cap = 1u64;
                let mut ok = true;
                for _ in 0..=d {
                    cap = match cap.checked_mul(p) {
                        Some(c) => c,
                        None => {
                            ok = true;
                            cap = u64::MAX;
                            break;
                        }
                    };
                }
                if ok && cap >= k {
                    break;
                }
                p = next_prime(p + 1);
            }
            let candidate = LinialStep { p, degree: d };
            if best
                .map(|b| candidate.new_color_count() < b.new_color_count())
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        best.expect("at least one feasible Linial field")
    }

    /// Number of colors after this step.
    pub fn new_color_count(&self) -> u64 {
        self.p * self.p
    }

    /// Interprets `color` as a polynomial over `F_p` (base-p digits as
    /// coefficients) and evaluates it at `x`.
    pub fn eval(&self, color: u64, x: u64) -> u64 {
        let mut c = color;
        let mut result = 0u64;
        let mut power = 1u64;
        for _ in 0..=self.degree {
            let digit = c % self.p;
            result = (result + digit * power) % self.p;
            power = (power * x) % self.p;
            c /= self.p;
        }
        result
    }

    /// Executes the step for one node: given its color and its neighbors'
    /// colors (all distinct from its own), returns the new color.
    ///
    /// The new color is `x * p + f(x)` for the smallest evaluation point
    /// `x` at which this node's polynomial disagrees with every neighbor's.
    ///
    /// # Panics
    ///
    /// Panics if no disagreement point exists — impossible when the inputs
    /// form a proper coloring and the field was chosen by
    /// [`LinialStep::choose`].
    pub fn reduce(&self, color: u64, neighbor_colors: &[u64]) -> u64 {
        'point: for x in 0..self.p {
            let mine = self.eval(color, x);
            for &nc in neighbor_colors {
                if nc == color {
                    continue; // defensive: identical colors carry no constraint
                }
                if self.eval(nc, x) == mine {
                    continue 'point;
                }
            }
            return x * self.p + mine;
        }
        panic!(
            "Linial step found no disagreement point (p={}, degree={}, deg(v)={})",
            self.p,
            self.degree,
            neighbor_colors.len()
        );
    }
}

/// The full Linial schedule: fields for successive steps until the color
/// count stops shrinking. All nodes derive the identical schedule from
/// `(n, max_degree)`.
pub fn linial_schedule(n: u64, max_degree: u64) -> Vec<LinialStep> {
    let mut steps = Vec::new();
    let mut k = n.max(2);
    loop {
        let step = LinialStep::choose(k, max_degree);
        let new_k = step.new_color_count();
        if new_k >= k {
            break;
        }
        steps.push(step);
        k = new_k;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use localavg_graph::gen;
    use localavg_graph::rng::Rng;

    #[test]
    fn cv_step_produces_proper_colors_on_chain() {
        // Simulate CV on a directed path with ids as colors.
        let n = 200usize;
        let mut colors: Vec<u64> = (0..n as u64).map(|i| i * 7919 % 65537).collect();
        // Ensure initial properness along the chain.
        for i in 0..n - 1 {
            assert_ne!(colors[i], colors[i + 1]);
        }
        for _ in 0..cv_rounds(65537) {
            let parents: Vec<u64> = (0..n)
                .map(|i| if i + 1 < n { colors[i + 1] } else { colors[i] })
                .collect();
            colors = (0..n)
                .map(|i| {
                    if i + 1 < n {
                        cv_step(colors[i], parents[i])
                    } else {
                        cv_step_root(colors[i])
                    }
                })
                .collect();
        }
        for i in 0..n - 1 {
            assert_ne!(colors[i], colors[i + 1], "chain coloring stays proper");
            assert!(colors[i] < 6, "colors reduced to < 6");
        }
    }

    #[test]
    fn cv_rounds_monotone_and_small() {
        assert_eq!(cv_rounds(3), 0);
        assert!(cv_rounds(1 << 16) <= 5);
        assert!(cv_rounds(u64::MAX) <= 8);
    }

    #[test]
    fn primes() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(97), 97);
        assert!(!is_prime(1));
        assert!(is_prime(2));
        assert!(!is_prime(91)); // 7 * 13
    }

    #[test]
    fn log_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(log_star(4.0), 2);
    }

    #[test]
    fn linial_step_parameters() {
        let s = LinialStep::choose(1 << 20, 4);
        assert!(s.p > 4 * s.degree, "field large enough for disagreement");
        // p^(degree+1) >= k
        let mut cap = 1u64;
        for _ in 0..=s.degree {
            cap = cap.saturating_mul(s.p);
        }
        assert!(cap >= 1 << 20);
    }

    #[test]
    fn linial_reduces_colors_on_random_graph() {
        let mut rng = Rng::seed_from(17);
        let g = gen::random_regular(600, 4, &mut rng).unwrap();
        let mut colors: Vec<u64> = (0..g.n() as u64).collect();
        let schedule = linial_schedule(g.n() as u64, 4);
        assert!(!schedule.is_empty());
        for step in &schedule {
            let next: Vec<u64> = g
                .nodes()
                .map(|v| {
                    let nbr: Vec<u64> = g.neighbor_ids(v).map(|u| colors[u]).collect();
                    step.reduce(colors[v], &nbr)
                })
                .collect();
            colors = next;
            // Stays proper after every step.
            for (_, u, v) in g.edges() {
                assert_ne!(colors[u], colors[v]);
            }
            let max = *colors.iter().max().unwrap();
            assert!(max < step.new_color_count());
        }
        let final_count = schedule.last().unwrap().new_color_count();
        assert!(
            final_count < 600,
            "color space should shrink below n: {final_count}"
        );
    }

    #[test]
    fn linial_eval_is_polynomial() {
        let s = LinialStep { p: 7, degree: 2 };
        // color 52 = 3 + 0*7 + 1*49 -> f(x) = 3 + x^2 mod 7
        assert_eq!(s.eval(52, 0), 3);
        assert_eq!(s.eval(52, 2), 0);
        assert_eq!(s.eval(52, 3), 5);
    }

    #[test]
    #[should_panic]
    fn cv_step_rejects_equal_colors() {
        cv_step(3, 3);
    }
}
