//! Averaged complexity measures (paper §2, Definition 1, and Appendix A).
//!
//! Given a [`Transcript`], this module computes per-node and per-edge
//! *completion times* exactly as the paper defines them:
//!
//! * a node has completed once **it and all its incident edges** have
//!   committed their outputs;
//! * an edge has completed once **it and both its endpoints** have
//!   committed.
//!
//! For a node-labelling problem (MIS, coloring, ruling sets) the edges
//! carry no output, so `T_e = max(T_u, T_v)`; for an edge-labelling problem
//! (matching, orientations) the nodes carry none, so `T_v = max over
//! incident edges`. Footnote 2 of the paper also uses the *relaxed*
//! edge-completion convention for Luby's MIS — an edge is done when at
//! least **one** endpoint is fixed — which we expose as
//! [`CompletionTimes::edge_one_endpoint`].
//!
//! On top of the per-element times the module provides every averaged
//! notion the paper discusses:
//!
//! * `AVG_V`, `AVG_E` — node and edge averaged complexity (Definition 1);
//! * `AVG^w_V`, `AVG^w_E` — weighted averages (Appendix A);
//! * `EXP_V`, `EXP_E` — node/edge expected complexity, i.e.
//!   `max_v E[T_v]` over runs (Appendix A);
//! * worst case — the usual round complexity;
//! * termination-time variants (§2, "Computation vs. Termination Time").
//!
//! Appendix A's chain `AVG ≤ AVG^w ≤ EXP ≤ WORST` (for worst-case weights)
//! is verified by tests and by experiment E14.

use localavg_graph::Graph;
use localavg_sim::transcript::{OutputKind, Round, Transcript, UNCOMMITTED};

/// Per-element completion times extracted from one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionTimes {
    /// `T_v` for every node (Definition 1 node completion).
    pub node: Vec<Round>,
    /// `T_e` for every edge (Definition 1 edge completion).
    pub edge: Vec<Round>,
    /// Relaxed edge completion (footnote 2): the round at which *some*
    /// endpoint-side output relevant to the edge was fixed.
    pub edge_one_endpoint: Vec<Round>,
}

impl CompletionTimes {
    /// Computes completion times from a transcript.
    ///
    /// # Panics
    ///
    /// Panics if the transcript is incomplete for its [`OutputKind`]
    /// (some required output never committed) — averaged complexities are
    /// only defined for algorithms that actually solve the problem.
    pub fn from_transcript<NO, EO>(g: &Graph, t: &Transcript<NO, EO>) -> Self {
        assert!(
            t.is_complete(),
            "transcript incomplete: averaged complexity undefined"
        );
        let needs_node = matches!(t.kind, OutputKind::NodeLabels | OutputKind::Both);
        let needs_edge = matches!(t.kind, OutputKind::EdgeLabels | OutputKind::Both);

        let own_node = |v: usize| -> Round {
            if needs_node {
                t.node_commit_round[v]
            } else {
                0
            }
        };
        let own_edge = |e: usize| -> Round {
            if needs_edge {
                t.edge_commit_round[e]
            } else {
                0
            }
        };

        let mut node: Vec<Round> = (0..g.n()).map(own_node).collect();
        let mut edge: Vec<Round> = (0..g.m()).map(own_edge).collect();
        let mut edge_one = vec![Round::MAX; g.m()];

        for (e, u, v) in g.edges() {
            // Edge completion: edge output and both endpoint outputs.
            edge[e] = edge[e].max(own_node(u)).max(own_node(v));
            // Node completion: node output and all incident edge outputs.
            node[u] = node[u].max(own_edge(e));
            node[v] = node[v].max(own_edge(e));
            // Relaxed convention (footnote 2): one endpoint suffices.
            let one = if needs_node {
                own_node(u).min(own_node(v))
            } else {
                own_edge(e)
            };
            edge_one[e] = one;
        }
        CompletionTimes {
            node,
            edge,
            edge_one_endpoint: edge_one,
        }
    }

    /// Mean node completion time — the per-run `AVG_V` of Definition 1.
    ///
    /// Scalar accessors exist so sweep emitters (DESIGN.md §6) can
    /// serialize a run from one `CompletionTimes` without recomputing the
    /// transcript scan through [`ComplexityReport`].
    pub fn node_mean(&self) -> f64 {
        mean(&self.node)
    }

    /// Mean edge completion time — the per-run `AVG_E` of Definition 1.
    pub fn edge_mean(&self) -> f64 {
        mean(&self.edge)
    }

    /// Mean edge completion time under the relaxed one-endpoint
    /// convention (footnote 2).
    pub fn edge_one_endpoint_mean(&self) -> f64 {
        mean(&self.edge_one_endpoint)
    }

    /// Maximum node completion time (0 on an empty graph).
    pub fn node_max(&self) -> Round {
        self.node.iter().copied().max().unwrap_or(0)
    }

    /// Maximum edge completion time (0 on an edgeless graph).
    pub fn edge_max(&self) -> Round {
        self.edge.iter().copied().max().unwrap_or(0)
    }
}

/// Mean of a completion-time vector.
///
/// **Empty-set convention:** the mean of an empty sample is defined as
/// `0.0` throughout this crate (here, in the [`Distribution`] summaries,
/// and in the `check` oracle's independent recomputation). A `path` at
/// n = 1 has no edges, so `AVG_E` would otherwise be `0/0 = NaN` — which
/// the hand-rolled JSON emitter must never see (it asserts finiteness at
/// emit time). Zero is the honest value: an averaged complexity over
/// nothing is "no rounds were needed by anyone".
fn mean(xs: &[Round]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Weighted mean; a zero (or empty, or non-positive) total weight uses
/// the same empty-set convention as [`mean`]: `0.0`, never `NaN`.
fn weighted_mean(xs: &[Round], w: &[f64]) -> f64 {
    assert_eq!(xs.len(), w.len(), "weight vector length mismatch");
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    xs.iter().zip(w).map(|(&x, &wi)| x as f64 * wi).sum::<f64>() / total
}

// ---------------------------------------------------------------------------
// Distributional summaries (ROADMAP item 5)
// ---------------------------------------------------------------------------

/// Distribution summary of a non-negative integer sample: exact
/// nearest-rank percentiles in production-latency language (p50/p90/p99),
/// the max, an exact mean, and a compact log-bucketed histogram.
///
/// The paper's Definition 1 is about what the *typical* element
/// experiences — Feuilloley (1704.05739) studies the output time of an
/// ordinary node, Rosenbaum–Suomela (1907.08160) measures volume rather
/// than rounds — so sweeps summarize per-node/per-edge completion times
/// and per-node message volume with this type rather than a bare mean.
///
/// **Percentile convention (nearest rank):** `p(q)` of an `N`-element
/// sample is `sorted[ceil(q·N) - 1]` with the rank clamped to `[1, N]`
/// — an actual sample value, never an interpolation. For `N ≤ 99`,
/// `p99 = max` by construction. `p50 ≤ p90 ≤ p99 ≤ max` always holds.
///
/// **Histogram bucketing:** bucket 0 counts zeros; bucket `b ≥ 1` counts
/// values `v` with `2^(b-1) ≤ v < 2^b` (that is, `b = 1 + floor(log2 v)`).
/// The vector is trimmed to the last nonempty bucket, so a sample with
/// max value `M` carries `2 + floor(log2 M)` counts at most — compact
/// enough to put on every sweep group record.
///
/// **Empty-set convention:** the summary of an empty sample is all-zero
/// scalars (`mean` 0.0 — this module's empty-set convention, shared
/// with the averaged-complexity means) and an empty histogram. Every
/// field is always finite.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Number of sampled values.
    pub count: usize,
    /// Exact mean (integer-summed before the single division; 0.0 for an
    /// empty sample).
    pub mean: f64,
    /// Median (50th percentile, nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
    /// Largest sampled value (0 for an empty sample).
    pub max: u64,
    /// Log2-bucketed counts; `histogram.iter().sum() == count`.
    pub histogram: Vec<u64>,
}

/// Nearest-rank percentile `q_num/q_den` of an ascending-sorted sample.
fn nearest_rank(sorted: &[u64], q_num: usize, q_den: usize) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q_num * sorted.len())
        .div_ceil(q_den)
        .clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram bucket of one value (see [`Distribution`]).
fn log_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Distribution {
    /// Summarizes a sample of non-negative integers.
    pub fn from_values(values: &[u64]) -> Self {
        if values.is_empty() {
            return Distribution {
                count: 0,
                mean: 0.0,
                p50: 0,
                p90: 0,
                p99: 0,
                max: 0,
                histogram: Vec::new(),
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let max = *sorted.last().expect("nonempty");
        let mut histogram = vec![0u64; log_bucket(max) + 1];
        for &v in &sorted {
            histogram[log_bucket(v)] += 1;
        }
        let total: u128 = sorted.iter().map(|&v| v as u128).sum();
        Distribution {
            count: sorted.len(),
            mean: total as f64 / sorted.len() as f64,
            p50: nearest_rank(&sorted, 50, 100),
            p90: nearest_rank(&sorted, 90, 100),
            p99: nearest_rank(&sorted, 99, 100),
            max,
            histogram,
        }
    }

    /// Summarizes a completion-time vector (`Round` sample).
    pub fn from_rounds(rounds: &[Round]) -> Self {
        let values: Vec<u64> = rounds.iter().map(|&r| r as u64).collect();
        Self::from_values(&values)
    }

    /// The percentile/max ordering invariant every summary satisfies:
    /// `mean ≤ max` and `p50 ≤ p90 ≤ p99 ≤ max` (trivially true when
    /// empty). Exposed so differential harnesses can assert it per cell.
    pub fn is_well_ordered(&self) -> bool {
        self.p50 <= self.p90
            && self.p90 <= self.p99
            && self.p99 <= self.max
            && self.mean <= self.max as f64 + 1e-9
            && self.mean.is_finite()
            && self.histogram.iter().sum::<u64>() == self.count as u64
    }
}

/// All single-run complexity measures of one execution.
#[derive(Debug, Clone)]
pub struct ComplexityReport {
    /// `AVG_V` — node-averaged complexity (Definition 1).
    pub node_averaged: f64,
    /// `AVG_E` — edge-averaged complexity (Definition 1).
    pub edge_averaged: f64,
    /// Edge-averaged complexity under the relaxed one-endpoint convention
    /// (footnote 2) — what "Luby has edge-averaged complexity O(1)" uses.
    pub edge_averaged_one_endpoint: f64,
    /// Maximum node completion time.
    pub node_worst: Round,
    /// Total rounds until global termination (classic worst case).
    pub rounds: Round,
    /// Average node *termination* time (§2's alternative notion), if every
    /// node halted.
    pub node_averaged_termination: f64,
}

impl ComplexityReport {
    /// Computes the report for one transcript.
    ///
    /// # Panics
    ///
    /// Panics if the transcript is incomplete (see
    /// [`CompletionTimes::from_transcript`]).
    pub fn from_run<NO, EO>(g: &Graph, t: &Transcript<NO, EO>) -> Self {
        let ct = CompletionTimes::from_transcript(g, t);
        let halted: Vec<Round> = t
            .node_halt_round
            .iter()
            .map(|&r| if r == UNCOMMITTED { t.rounds } else { r })
            .collect();
        ComplexityReport {
            node_averaged: mean(&ct.node),
            edge_averaged: mean(&ct.edge),
            edge_averaged_one_endpoint: mean(&ct.edge_one_endpoint),
            node_worst: ct.node.iter().copied().max().unwrap_or(0),
            rounds: t.rounds,
            node_averaged_termination: mean(&halted),
        }
    }

    /// Weighted node-averaged complexity `AVG^w_V` for the given weights
    /// (Appendix A).
    pub fn weighted_node_averaged<NO, EO>(
        g: &Graph,
        t: &Transcript<NO, EO>,
        weights: &[f64],
    ) -> f64 {
        let ct = CompletionTimes::from_transcript(g, t);
        weighted_mean(&ct.node, weights)
    }

    /// Weighted edge-averaged complexity `AVG^w_E` (Appendix A).
    pub fn weighted_edge_averaged<NO, EO>(
        g: &Graph,
        t: &Transcript<NO, EO>,
        weights: &[f64],
    ) -> f64 {
        let ct = CompletionTimes::from_transcript(g, t);
        weighted_mean(&ct.edge, weights)
    }
}

/// Aggregate over many randomized runs (different seeds): Appendix A's
/// *expected* complexities and the inequality chain.
#[derive(Debug, Clone)]
pub struct RunAggregate {
    /// Per-node mean completion time over the runs.
    pub node_mean: Vec<f64>,
    /// Per-edge mean completion time over the runs.
    pub edge_mean: Vec<f64>,
    /// Mean of the per-run node-averaged complexities (estimates `AVG_V`).
    pub node_averaged: f64,
    /// Mean of the per-run edge-averaged complexities (estimates `AVG_E`).
    pub edge_averaged: f64,
    /// `EXP_V = max_v E[T_v]` — node expected complexity (Appendix A).
    pub node_expected: f64,
    /// `EXP_E = max_e E[T_e]` — edge expected complexity (Appendix A).
    pub edge_expected: f64,
    /// Mean of the per-run worst cases.
    pub worst_case: f64,
    /// Number of aggregated runs.
    pub runs: usize,
}

impl RunAggregate {
    /// Aggregates completion times over several runs of the same algorithm
    /// on the same graph.
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty or the runs disagree on sizes.
    pub fn from_times(times: &[CompletionTimes], rounds: &[Round]) -> Self {
        assert!(!times.is_empty(), "need at least one run");
        assert_eq!(times.len(), rounds.len());
        let n = times[0].node.len();
        let m = times[0].edge.len();
        let runs = times.len() as f64;
        let mut node_mean = vec![0.0f64; n];
        let mut edge_mean = vec![0.0f64; m];
        for ct in times {
            assert_eq!(ct.node.len(), n);
            assert_eq!(ct.edge.len(), m);
            for (acc, &x) in node_mean.iter_mut().zip(&ct.node) {
                *acc += x as f64 / runs;
            }
            for (acc, &x) in edge_mean.iter_mut().zip(&ct.edge) {
                *acc += x as f64 / runs;
            }
        }
        let node_averaged = times.iter().map(|ct| mean(&ct.node)).sum::<f64>() / runs;
        let edge_averaged = times.iter().map(|ct| mean(&ct.edge)).sum::<f64>() / runs;
        RunAggregate {
            node_expected: node_mean.iter().copied().fold(0.0, f64::max),
            edge_expected: edge_mean.iter().copied().fold(0.0, f64::max),
            node_mean,
            edge_mean,
            node_averaged,
            edge_averaged,
            worst_case: rounds.iter().map(|&r| r as f64).sum::<f64>() / runs,
            runs: times.len(),
        }
    }

    /// The adversarial (worst-case) weighted node average: all weight on
    /// the node with the largest mean completion time. By construction it
    /// equals [`RunAggregate::node_expected`], which makes Appendix A's
    /// `AVG_V ≤ AVG^w_V ≤ EXP_V` chain checkable.
    pub fn adversarial_weighted_node_averaged(&self) -> f64 {
        self.node_expected
    }

    /// Checks Appendix A's inequality chain
    /// `AVG_V ≤ AVG^w_V (adversarial) ≤ EXP_V ≤ E[WORST]` on this aggregate.
    pub fn inequality_chain_holds(&self) -> bool {
        let eps = 1e-9;
        self.node_averaged <= self.adversarial_weighted_node_averaged() + eps
            && self.adversarial_weighted_node_averaged() <= self.node_expected + eps
            && self.node_expected <= self.worst_case + eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localavg_graph::gen;
    use localavg_sim::transcript::{OutputKind, Transcript};

    fn node_problem_transcript(g: &Graph, commits: &[Round]) -> Transcript<bool, ()> {
        let mut t = Transcript::empty(OutputKind::NodeLabels, g.n(), g.m());
        t.node_commit_round = commits.to_vec();
        t.node_output = commits.iter().map(|_| Some(true)).collect();
        t.rounds = commits.iter().copied().max().unwrap_or(0);
        t.node_halt_round = commits.to_vec();
        t
    }

    #[test]
    fn node_problem_completion_times() {
        let g = gen::path(3); // edges {0,1}, {1,2}
        let t = node_problem_transcript(&g, &[0, 5, 2]);
        let ct = CompletionTimes::from_transcript(&g, &t);
        assert_eq!(ct.node, vec![0, 5, 2]); // own commits only
        assert_eq!(ct.edge, vec![5, 5]); // max of endpoints
        assert_eq!(ct.edge_one_endpoint, vec![0, 2]); // min of endpoints
    }

    #[test]
    fn edge_problem_completion_times() {
        let g = gen::path(3);
        let mut t: Transcript<(), bool> = Transcript::empty(OutputKind::EdgeLabels, 3, 2);
        t.edge_commit_round = vec![4, 1];
        t.edge_output = vec![Some(true), Some(false)];
        t.rounds = 4;
        let ct = CompletionTimes::from_transcript(&g, &t);
        assert_eq!(ct.edge, vec![4, 1]); // own commits
        assert_eq!(ct.node, vec![4, 4, 1]); // max over incident edges
        assert_eq!(ct.edge_one_endpoint, vec![4, 1]);
    }

    #[test]
    fn both_problem_completion_times() {
        let g = gen::path(2);
        let mut t: Transcript<u8, u8> = Transcript::empty(OutputKind::Both, 2, 1);
        t.node_commit_round = vec![1, 3];
        t.node_output = vec![Some(0), Some(0)];
        t.edge_commit_round = vec![2];
        t.edge_output = vec![Some(0)];
        t.rounds = 3;
        let ct = CompletionTimes::from_transcript(&g, &t);
        assert_eq!(ct.node, vec![2, 3]); // own vs incident edge
        assert_eq!(ct.edge, vec![3]); // own vs both endpoints
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn incomplete_transcript_panics() {
        let g = gen::path(2);
        let t: Transcript<bool, ()> = Transcript::empty(OutputKind::NodeLabels, 2, 1);
        let _ = CompletionTimes::from_transcript(&g, &t);
    }

    #[test]
    fn completion_time_accessors_match_report() {
        let g = gen::path(3);
        let t = node_problem_transcript(&g, &[0, 6, 3]);
        let ct = CompletionTimes::from_transcript(&g, &t);
        let r = ComplexityReport::from_run(&g, &t);
        assert!((ct.node_mean() - r.node_averaged).abs() < 1e-12);
        assert!((ct.edge_mean() - r.edge_averaged).abs() < 1e-12);
        assert!((ct.edge_one_endpoint_mean() - r.edge_averaged_one_endpoint).abs() < 1e-12);
        assert_eq!(ct.node_max(), r.node_worst);
        assert_eq!(ct.edge_max(), 6);
    }

    #[test]
    fn report_values() {
        let g = gen::path(3);
        let t = node_problem_transcript(&g, &[0, 6, 3]);
        let r = ComplexityReport::from_run(&g, &t);
        assert!((r.node_averaged - 3.0).abs() < 1e-12);
        assert!((r.edge_averaged - 6.0).abs() < 1e-12);
        assert!((r.edge_averaged_one_endpoint - 1.5).abs() < 1e-12);
        assert_eq!(r.node_worst, 6);
        assert_eq!(r.rounds, 6);
        assert!((r.node_averaged_termination - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_averages() {
        let g = gen::path(3);
        let t = node_problem_transcript(&g, &[0, 6, 3]);
        let uniform = ComplexityReport::weighted_node_averaged(&g, &t, &[1.0, 1.0, 1.0]);
        assert!((uniform - 3.0).abs() < 1e-12);
        let adversarial = ComplexityReport::weighted_node_averaged(&g, &t, &[0.0, 1.0, 0.0]);
        assert!((adversarial - 6.0).abs() < 1e-12);
        let we = ComplexityReport::weighted_edge_averaged(&g, &t, &[3.0, 1.0]);
        assert!((we - 6.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_and_inequality_chain() {
        let g = gen::path(3);
        let runs = [
            node_problem_transcript(&g, &[0, 4, 2]),
            node_problem_transcript(&g, &[2, 0, 4]),
        ];
        let times: Vec<CompletionTimes> = runs
            .iter()
            .map(|t| CompletionTimes::from_transcript(&g, t))
            .collect();
        let rounds: Vec<Round> = runs.iter().map(|t| t.rounds).collect();
        let agg = RunAggregate::from_times(&times, &rounds);
        assert_eq!(agg.runs, 2);
        assert!((agg.node_mean[0] - 1.0).abs() < 1e-12);
        assert!((agg.node_mean[1] - 2.0).abs() < 1e-12);
        assert!((agg.node_mean[2] - 3.0).abs() < 1e-12);
        assert!((agg.node_expected - 3.0).abs() < 1e-12);
        assert!((agg.node_averaged - 2.0).abs() < 1e-12);
        assert_eq!(agg.worst_case, 4.0);
        assert!(agg.inequality_chain_holds());
    }

    #[test]
    fn empty_graph_report() {
        let g = Graph::empty(0);
        let t: Transcript<bool, ()> = Transcript::empty(OutputKind::NodeLabels, 0, 0);
        let r = ComplexityReport::from_run(&g, &t);
        assert_eq!(r.node_averaged, 0.0);
        assert_eq!(r.node_worst, 0);
    }

    #[test]
    fn edgeless_graph_means_are_finite_zero() {
        // The empty-set convention: a 1-node path has no edges, so every
        // edge-averaged measure is 0.0 — never NaN.
        let g = gen::path(1);
        let t = node_problem_transcript(&g, &[0]);
        let r = ComplexityReport::from_run(&g, &t);
        assert_eq!(r.edge_averaged, 0.0);
        assert_eq!(r.edge_averaged_one_endpoint, 0.0);
        assert!(r.node_averaged.is_finite());
        let w = ComplexityReport::weighted_edge_averaged(&g, &t, &[]);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn distribution_empty_sample() {
        let d = Distribution::from_values(&[]);
        assert_eq!(d.count, 0);
        assert_eq!(d.mean, 0.0);
        assert_eq!((d.p50, d.p90, d.p99, d.max), (0, 0, 0, 0));
        assert!(d.histogram.is_empty());
        assert!(d.is_well_ordered());
    }

    #[test]
    fn distribution_single_element() {
        let d = Distribution::from_values(&[7]);
        assert_eq!(d.count, 1);
        assert_eq!(d.mean, 7.0);
        assert_eq!((d.p50, d.p90, d.p99, d.max), (7, 7, 7, 7));
        // 7 lands in bucket 1 + floor(log2 7) = 3.
        assert_eq!(d.histogram, vec![0, 0, 0, 1]);
        assert!(d.is_well_ordered());
    }

    #[test]
    fn distribution_all_equal() {
        let d = Distribution::from_values(&[4; 10]);
        assert_eq!(d.count, 10);
        assert_eq!(d.mean, 4.0);
        assert_eq!((d.p50, d.p90, d.p99, d.max), (4, 4, 4, 4));
        assert_eq!(d.histogram, vec![0, 0, 0, 10]);
        assert!(d.is_well_ordered());
    }

    #[test]
    fn distribution_nearest_rank_percentiles() {
        // 1..=100: the nearest-rank percentile of a permutation-invariant
        // sample is exactly its rank value.
        let values: Vec<u64> = (1..=100).rev().collect();
        let d = Distribution::from_values(&values);
        assert_eq!(d.p50, 50);
        assert_eq!(d.p90, 90);
        assert_eq!(d.p99, 99);
        assert_eq!(d.max, 100);
        assert_eq!(d.mean, 50.5);
        assert!(d.is_well_ordered());
        // 10 elements: p50 = 5th smallest, p90 = 9th, p99 = 10th (= max).
        let small = Distribution::from_values(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(small.p50, 50);
        assert_eq!(small.p90, 90);
        assert_eq!(small.p99, 100);
    }

    #[test]
    fn distribution_histogram_buckets() {
        // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b).
        let d = Distribution::from_values(&[0, 1, 2, 3, 4, 7, 8, 1024]);
        assert_eq!(d.histogram.len(), 12); // bucket of 1024 is 11
        assert_eq!(d.histogram[0], 1); // 0
        assert_eq!(d.histogram[1], 1); // 1
        assert_eq!(d.histogram[2], 2); // 2, 3
        assert_eq!(d.histogram[3], 2); // 4, 7
        assert_eq!(d.histogram[4], 1); // 8
        assert_eq!(d.histogram[11], 1); // 1024
        assert_eq!(d.histogram.iter().sum::<u64>(), d.count as u64);
    }

    #[test]
    fn distribution_from_rounds_matches_values() {
        let rounds: Vec<Round> = vec![3, 1, 4, 1, 5];
        let a = Distribution::from_rounds(&rounds);
        let b = Distribution::from_values(&[3, 1, 4, 1, 5]);
        assert_eq!(a, b);
    }
}
