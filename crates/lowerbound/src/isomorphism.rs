//! Algorithm 1: `FindIsomorphism` (paper §C.1, Theorem 11).
//!
//! Given a cluster-tree graph and two nodes `v0 ∈ S(c0)`, `v1 ∈ S(c1)`
//! whose radius-k views are trees, the algorithm walks both views in
//! lockstep, bucketing neighbors by their directional edge label `β^i`
//! (Definition 8, self-loop edges sorted first) and zipping the buckets;
//! the single possible length mismatch (Lemma 19: the two histories) is
//! repaired by matching the two leftover nodes. The result is an
//! isomorphism between the radius-k views — the indistinguishability that
//! drives the Ω(min{log Δ/log log Δ, √(log n/log log n)}) lower bound.

use crate::base_graph::LiftedGk;
use localavg_graph::analysis::{bfs_distances, view_is_tree, UNREACHED};
use localavg_graph::NodeId;
use std::collections::HashMap;
use std::fmt;

/// Why `FindIsomorphism` failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsoError {
    /// A precondition failed: one of the views is not a tree.
    ViewNotTree(NodeId),
    /// Bucket lengths differed in an unrepairable way (more than the one
    /// history mismatch allowed by Lemma 19).
    BucketMismatch {
        /// Node on the `v0` side where the mismatch occurred.
        at: NodeId,
        /// Node on the `v1` side.
        at_other: NodeId,
    },
}

impl fmt::Display for IsoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsoError::ViewNotTree(v) => write!(f, "radius-k view of node {v} is not a tree"),
            IsoError::BucketMismatch { at, at_other } => {
                write!(f, "unrepairable bucket mismatch at pair ({at}, {at_other})")
            }
        }
    }
}

impl std::error::Error for IsoError {}

/// Runs Algorithm 1 on the lifted graph, producing the partial map
/// `φ : V(view_k(v0)) → V(view_k(v1))`.
///
/// # Errors
///
/// Returns [`IsoError::ViewNotTree`] when a precondition fails and
/// [`IsoError::BucketMismatch`] if the walk encounters an inconsistency
/// (which Theorem 11 proves cannot happen on valid inputs).
pub fn find_isomorphism(
    lg: &LiftedGk,
    k: usize,
    v0: NodeId,
    v1: NodeId,
) -> Result<HashMap<NodeId, NodeId>, IsoError> {
    let g = lg.graph();
    if !view_is_tree(g, v0, k) {
        return Err(IsoError::ViewNotTree(v0));
    }
    if !view_is_tree(g, v1, k) {
        return Err(IsoError::ViewNotTree(v1));
    }
    let mut phi = HashMap::new();
    phi.insert(v0, v1);
    walk(lg, k, v0, v1, None, k, &mut phi)?;
    Ok(phi)
}

/// One neighbor entry: (is_self, neighbor id) — self edges sort first.
fn buckets(lg: &LiftedGk, k: usize, v: NodeId, prev: Option<NodeId>) -> Vec<Vec<NodeId>> {
    let mut out: Vec<Vec<(bool, NodeId)>> = vec![Vec::new(); k + 2];
    for u in lg.graph().neighbor_ids(v) {
        if Some(u) == prev {
            continue;
        }
        let (exp, is_self) = lg.out_label(v, u);
        debug_assert!(exp < k + 2, "labels are β^0..β^{{k+1}}");
        out[exp].push((!is_self, u)); // false sorts first: self edges lead
    }
    out.iter_mut().for_each(|b| b.sort_unstable());
    out.into_iter()
        .map(|b| b.into_iter().map(|(_, u)| u).collect())
        .collect()
}

fn walk(
    lg: &LiftedGk,
    k: usize,
    v: NodeId,
    w: NodeId,
    prev: Option<(NodeId, NodeId)>,
    depth: usize,
    phi: &mut HashMap<NodeId, NodeId>,
) -> Result<(), IsoError> {
    if depth == 0 {
        return Ok(());
    }
    let nv = buckets(lg, k, v, prev.map(|(p, _)| p));
    let nw = buckets(lg, k, w, prev.map(|(_, q)| q));

    // Map zipped buckets (Algorithm 1's Map routine).
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for i in 0..nv.len() {
        for (a, b) in nv[i].iter().zip(nw[i].iter()) {
            pairs.push((*a, *b));
        }
    }
    let longer_v: Vec<usize> = (0..nv.len())
        .filter(|&i| nv[i].len() > nw[i].len())
        .collect();
    let longer_w: Vec<usize> = (0..nv.len())
        .filter(|&i| nw[i].len() > nv[i].len())
        .collect();
    match (longer_v.len(), longer_w.len()) {
        (0, 0) => {}
        (1, 1)
            if nv[longer_v[0]].len() == nw[longer_v[0]].len() + 1
                && nw[longer_w[0]].len() == nv[longer_w[0]].len() + 1 =>
        {
            // Lemma 19's history mismatch: pair the two leftovers.
            let a = *nv[longer_v[0]].last().expect("nonempty");
            let b = *nw[longer_w[0]].last().expect("nonempty");
            pairs.push((a, b));
        }
        _ => {
            return Err(IsoError::BucketMismatch { at: v, at_other: w });
        }
    }
    for &(a, b) in &pairs {
        phi.insert(a, b);
    }
    for (a, b) in pairs {
        walk(lg, k, a, b, Some((v, w)), depth - 1, phi)?;
    }
    Ok(())
}

/// Verifies that `phi` is an isomorphism between the radius-`k` views of
/// `v0` and `v1` (Theorem 11 is about *unlabeled* views — the LOCAL model
/// sees topology only; the construction's β-labels guide the algorithm
/// but need not be preserved, e.g. the Lemma 19 repair maps across
/// exponents):
///
/// * `φ` is injective and distance-preserving,
/// * every view edge at an interior node maps to an edge,
/// * interior nodes (distance `< k`) have matching degrees.
pub fn verify_isomorphism(
    lg: &LiftedGk,
    k: usize,
    v0: NodeId,
    v1: NodeId,
    phi: &HashMap<NodeId, NodeId>,
) -> Result<(), String> {
    let g = lg.graph();
    let d0 = bfs_distances(g, v0, k);
    let d1 = bfs_distances(g, v1, k);
    // Injectivity.
    let mut seen = HashMap::new();
    for (&a, &b) in phi {
        if let Some(prev) = seen.insert(b, a) {
            return Err(format!("φ not injective: {prev} and {a} both map to {b}"));
        }
    }
    for (&a, &b) in phi {
        if d0[a] == UNREACHED || d1[b] == UNREACHED {
            return Err(format!("pair ({a}, {b}) outside the views"));
        }
        if d0[a] != d1[b] {
            return Err(format!(
                "distance mismatch: d(v0, {a}) = {} but d(v1, {b}) = {}",
                d0[a], d1[b]
            ));
        }
        if d0[a] < k && g.degree(a) != g.degree(b) {
            return Err(format!(
                "degree mismatch at interior pair ({a}, {b}): {} vs {}",
                g.degree(a),
                g.degree(b)
            ));
        }
        // Edge and label preservation for interior nodes.
        if d0[a] < k {
            for x in g.neighbor_ids(a) {
                let Some(&y) = phi.get(&x) else {
                    return Err(format!("neighbor {x} of interior node {a} unmapped"));
                };
                if !g.has_edge(b, y) {
                    return Err(format!("edge {{{a}, {x}}} maps to non-edge {{{b}, {y}}}"));
                }
            }
        }
    }
    Ok(())
}

/// Convenience: finds a pair `(v0 ∈ S(c0), v1 ∈ S(c1))` with tree-like
/// radius-`k` views, if one exists.
pub fn tree_like_pair(lg: &LiftedGk, k: usize) -> Option<(NodeId, NodeId)> {
    let g = lg.graph();
    let v0 = lg.s0().into_iter().find(|&v| view_is_tree(g, v, k))?;
    let v1 = lg
        .cluster_nodes(1)
        .into_iter()
        .find(|&v| view_is_tree(g, v, k))?;
    Some((v0, v1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_graph::BaseGraph;
    use localavg_graph::rng::Rng;

    fn lifted(k: usize, beta: u64, q: usize, seed: u64) -> LiftedGk {
        let base = BaseGraph::build(k, beta, 4_000_000).expect("base graph");
        let mut rng = Rng::seed_from(seed);
        LiftedGk::build(base, q, &mut rng)
    }

    #[test]
    fn isomorphism_exists_for_k1() {
        let lg = lifted(1, 4, 16, 3);
        let (v0, v1) = tree_like_pair(&lg, 1).expect("tree-like pair at q=16");
        let phi = find_isomorphism(&lg, 1, v0, v1).expect("Algorithm 1 succeeds");
        verify_isomorphism(&lg, 1, v0, v1, &phi).expect("φ is a labeled isomorphism");
        // The radius-1 view of an S(c0) node has 1 + degree nodes.
        assert_eq!(phi.len(), 1 + lg.graph().degree(v0));
    }

    #[test]
    fn isomorphism_is_nontrivial_across_clusters() {
        let lg = lifted(1, 4, 16, 4);
        let (v0, v1) = tree_like_pair(&lg, 1).expect("pair");
        assert_eq!(lg.cluster_of(v0), 0);
        assert_eq!(lg.cluster_of(v1), 1);
        // Same degree despite different clusters: indistinguishability.
        assert_eq!(lg.graph().degree(v0), lg.graph().degree(v1));
    }

    #[test]
    fn rejects_non_tree_views() {
        // Radius-1 views are always trees (edges between two distance-1
        // nodes are excluded by the paper's view definition), but radius-2
        // views of the unlifted base contain the K_{β,2} gadget 4-cycles.
        let lg = lifted(1, 4, 1, 5);
        let v0 = lg.s0()[0];
        let v1 = lg.cluster_nodes(1)[0];
        let err = find_isomorphism(&lg, 2, v0, v1).unwrap_err();
        assert!(matches!(err, IsoError::ViewNotTree(_)));
    }

    #[test]
    fn error_display() {
        let e = IsoError::ViewNotTree(3);
        assert!(e.to_string().contains("not a tree"));
        let e2 = IsoError::BucketMismatch { at: 1, at_other: 2 };
        assert!(e2.to_string().contains("mismatch"));
    }

    #[test]
    fn deeper_views_with_larger_lift() {
        // k=2 construction: with a reasonable lift order some S(c0) node
        // should have a tree-like radius-2 view; when it does, Algorithm 1
        // must succeed against a tree-like S(c1) partner.
        let lg = lifted(2, 4, 4, 7);
        if let Some((v0, v1)) = tree_like_pair(&lg, 2) {
            let phi = find_isomorphism(&lg, 2, v0, v1).expect("Algorithm 1");
            verify_isomorphism(&lg, 2, v0, v1, &phi).expect("verified");
            assert!(phi.len() > lg.graph().degree(v0));
        }
    }
}
