//! Cluster tree skeletons `CT_k` (paper §4.3).
//!
//! A skeleton is a tree (plus self-loops) whose nodes stand for *clusters*
//! of graph nodes and whose directed labeled edges `(u, v, x)` demand that
//! every graph node in `S(u)` has exactly `x` neighbors in `S(v)`. Labels
//! are powers `β^i` or doubled powers `2β^i`; the exponent of a node's
//! self-loop is `ψ(v)` (Observation 7).

use std::fmt;

/// Identifier of a skeleton node (`0` = `c0`, `1` = `c1`).
pub type CtNodeId = usize;

/// A directed labeled edge of the skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtEdge {
    /// Source cluster.
    pub from: CtNodeId,
    /// Target cluster.
    pub to: CtNodeId,
    /// Exponent `i` of the label.
    pub exponent: usize,
    /// Whether the label is `2β^i` (true) or `β^i` (false).
    pub doubled: bool,
}

impl CtEdge {
    /// The numeric label value for a given β.
    pub fn value(&self, beta: u64) -> u64 {
        let base = beta.pow(self.exponent as u32);
        if self.doubled {
            2 * base
        } else {
            base
        }
    }
}

/// A node of the skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtNode {
    /// Parent in the skeleton tree (`None` for `c0`).
    pub parent: Option<CtNodeId>,
    /// Whether the node is internal (vs. a leaf) in `CT_k`.
    pub internal: bool,
    /// `ψ(v)`: exponent of the self-loop (`None` only for `c0`).
    pub psi: Option<usize>,
    /// Hop distance from `c0` (ignoring self-loops); `0..=k+1`.
    pub depth: usize,
}

/// The skeleton `CT_k`.
///
/// # Example
///
/// ```
/// use localavg_lowerbound::cluster_tree::ClusterTree;
///
/// let ct0 = ClusterTree::new(0);
/// assert_eq!(ct0.node_count(), 2);
/// let ct2 = ClusterTree::new(2);
/// assert_eq!(ct2.node_count(), 10); // Figure 1's CT_2
/// ```
#[derive(Clone)]
pub struct ClusterTree {
    k: usize,
    nodes: Vec<CtNode>,
    edges: Vec<CtEdge>,
}

impl fmt::Debug for ClusterTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClusterTree(k={}, nodes={}, edges={})",
            self.k,
            self.nodes.len(),
            self.edges.len()
        )
    }
}

impl ClusterTree {
    /// Builds `CT_k` by the inductive definition of §4.3.
    pub fn new(k: usize) -> Self {
        // Base case CT_0: c0 (internal), c1 (leaf);
        // edges (c0, c1, 2β^0), (c1, c0, β^1), (c1, c1, β^1).
        let mut ct = ClusterTree {
            k: 0,
            nodes: vec![
                CtNode {
                    parent: None,
                    internal: true,
                    psi: None,
                    depth: 0,
                },
                CtNode {
                    parent: Some(0),
                    internal: false,
                    psi: Some(1),
                    depth: 1,
                },
            ],
            edges: vec![
                CtEdge {
                    from: 0,
                    to: 1,
                    exponent: 0,
                    doubled: true,
                },
                CtEdge {
                    from: 1,
                    to: 0,
                    exponent: 1,
                    doubled: false,
                },
                CtEdge {
                    from: 1,
                    to: 1,
                    exponent: 1,
                    doubled: false,
                },
            ],
        };
        for step in 1..=k {
            ct.grow(step);
        }
        ct
    }

    /// One inductive step: `CT_{step-1} -> CT_step`.
    fn grow(&mut self, step: usize) {
        let old_nodes: Vec<(CtNodeId, bool)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i, n.internal))
            .collect();
        for (v, internal) in old_nodes {
            if internal {
                // Attach one new leaf ℓ with (v, ℓ, 2β^step), (ℓ, v,
                // β^{step+1}), and self-loop (ℓ, ℓ, β^{step+1}).
                self.attach_leaf(v, step);
            } else {
                // Leaf u with parent edge (u, p(u), β^i): attach a leaf ℓ_j
                // for each j in {0..step} \ {i}; u becomes internal.
                let i = self.nodes[v].psi.expect("leaves have self-loops");
                for j in 0..=step {
                    if j != i {
                        self.attach_leaf(v, j);
                    }
                }
                self.nodes[v].internal = true;
            }
        }
        self.k = step;
    }

    fn attach_leaf(&mut self, parent: CtNodeId, j: usize) {
        let ell = self.nodes.len();
        let depth = self.nodes[parent].depth + 1;
        self.nodes.push(CtNode {
            parent: Some(parent),
            internal: false,
            psi: Some(j + 1),
            depth,
        });
        self.edges.push(CtEdge {
            from: parent,
            to: ell,
            exponent: j,
            doubled: true,
        });
        self.edges.push(CtEdge {
            from: ell,
            to: parent,
            exponent: j + 1,
            doubled: false,
        });
        self.edges.push(CtEdge {
            from: ell,
            to: ell,
            exponent: j + 1,
            doubled: false,
        });
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of skeleton nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node.
    pub fn node(&self, v: CtNodeId) -> &CtNode {
        &self.nodes[v]
    }

    /// Iterator over nodes with ids.
    pub fn nodes(&self) -> impl Iterator<Item = (CtNodeId, &CtNode)> {
        self.nodes.iter().enumerate()
    }

    /// All directed labeled edges (including self-loops).
    pub fn edges(&self) -> &[CtEdge] {
        &self.edges
    }

    /// `ψ(v)` — the self-loop exponent (Observation 7.1).
    ///
    /// # Panics
    ///
    /// Panics for `c0`, which has no self-loop.
    pub fn psi(&self, v: CtNodeId) -> usize {
        self.nodes[v].psi.expect("c0 has no self-loop")
    }

    /// The children of `v` (skeleton tree, ignoring self-loops).
    pub fn children(&self, v: CtNodeId) -> Vec<CtNodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == Some(v))
            .map(|(i, _)| i)
            .collect()
    }

    /// The directed out-label exponents of `v` grouped per target:
    /// `(target, exponent, doubled)`.
    pub fn out_edges(&self, v: CtNodeId) -> Vec<CtEdge> {
        self.edges.iter().filter(|e| e.from == v).copied().collect()
    }

    /// The neighbors of `c0`, ordered as `v_1, ..., v_{k+1}` where `v_i`
    /// is reached by the edge `(c0, v_i, 2β^{i-1})` (proof of Thm 16).
    pub fn c0_children_by_exponent(&self) -> Vec<CtNodeId> {
        let mut out: Vec<(usize, CtNodeId)> = self
            .edges
            .iter()
            .filter(|e| e.from == 0 && e.to != 0)
            .map(|e| (e.exponent, e.to))
            .collect();
        out.sort_unstable();
        out.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct0_structure() {
        let ct = ClusterTree::new(0);
        assert_eq!(ct.node_count(), 2);
        assert!(ct.node(0).internal);
        assert!(!ct.node(1).internal);
        assert_eq!(ct.psi(1), 1);
        assert_eq!(ct.edges().len(), 3);
    }

    #[test]
    fn ct1_structure() {
        let ct = ClusterTree::new(1);
        // c0, c1, c0's new leaf, c1's leaf for j=0.
        assert_eq!(ct.node_count(), 4);
        // c1 became internal.
        assert!(ct.node(1).internal);
        // Every node except c0 has a self-loop (Observation 7.1).
        for (v, n) in ct.nodes() {
            if v == 0 {
                assert!(n.psi.is_none());
            } else {
                assert!(n.psi.is_some());
            }
        }
    }

    #[test]
    fn ct2_matches_figure1() {
        let ct = ClusterTree::new(2);
        assert_eq!(ct.node_count(), 10);
        // Leaves of CT_2: the 6 nodes added by the k=2 growth step.
        let leaves = ct.nodes().filter(|(_, n)| !n.internal).count();
        assert_eq!(leaves, 6);
    }

    #[test]
    fn observation7_internal_children() {
        // Obs 7.3/7.4: c0 has k+1 children via edges (c0, u_j, 2β^j) for
        // j in 0..=k; every other internal node v has k children reached by
        // (v, u_j, 2β^j) for j in {0..k} \ {ψ(v)}.
        for k in 0..4 {
            let ct = ClusterTree::new(k);
            let c0_out: Vec<usize> = ct
                .out_edges(0)
                .iter()
                .filter(|e| e.to != 0)
                .map(|e| e.exponent)
                .collect();
            let mut sorted = c0_out.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..=k).collect::<Vec<_>>(), "k={k}");
            for (v, n) in ct.nodes() {
                if v == 0 || !n.internal {
                    continue;
                }
                let mut exps: Vec<usize> = ct
                    .out_edges(v)
                    .iter()
                    .filter(|e| e.to != v && e.doubled)
                    .map(|e| e.exponent)
                    .collect();
                exps.sort_unstable();
                let expect: Vec<usize> = (0..=k).filter(|&j| j != ct.psi(v)).collect();
                assert_eq!(exps, expect, "k={k}, v={v}");
            }
        }
    }

    #[test]
    fn observation7_parent_edges() {
        // Obs 7.2: every v != c0 has edges (v, p(v), β^{i+1}), (p(v), v,
        // 2β^i), (v, v, β^{i+1}).
        let ct = ClusterTree::new(3);
        for (v, n) in ct.nodes() {
            let Some(p) = n.parent else { continue };
            let up = ct
                .edges()
                .iter()
                .find(|e| e.from == v && e.to == p)
                .expect("edge to parent");
            let down = ct
                .edges()
                .iter()
                .find(|e| e.from == p && e.to == v)
                .expect("edge from parent");
            assert!(!up.doubled);
            assert!(down.doubled);
            assert_eq!(up.exponent, down.exponent + 1);
            assert_eq!(ct.psi(v), up.exponent);
        }
    }

    #[test]
    fn depths_bounded() {
        let ct = ClusterTree::new(3);
        for (_, n) in ct.nodes() {
            assert!(n.depth <= 4);
        }
        assert_eq!(ct.node(0).depth, 0);
    }

    #[test]
    fn c0_children_ordered() {
        let ct = ClusterTree::new(2);
        let children = ct.c0_children_by_exponent();
        assert_eq!(children.len(), 3); // v_1 .. v_{k+1}
        for (idx, &v) in children.iter().enumerate() {
            assert_eq!(ct.psi(v), idx + 1, "ψ(v_i) = i");
        }
    }

    #[test]
    fn edge_values() {
        let e = CtEdge {
            from: 0,
            to: 1,
            exponent: 2,
            doubled: true,
        };
        assert_eq!(e.value(4), 32);
        let e2 = CtEdge {
            from: 1,
            to: 0,
            exponent: 3,
            doubled: false,
        };
        assert_eq!(e2.value(4), 64);
    }

    #[test]
    fn node_growth_is_geometric_ish() {
        let n2 = ClusterTree::new(2).node_count();
        let n3 = ClusterTree::new(3).node_count();
        assert!(n3 > n2);
        assert!(n3 <= n2 * 5, "|T_{{i+1}}| <= (k+1)|T_i| style growth");
    }
}
