//! Derived lower-bound constructions: the doubled graph for the maximal
//! matching bound (paper §C.4, Theorem 17) and radius-k tree-view
//! extraction (the tree MIS lower bound inside Theorem 16).

use crate::base_graph::LiftedGk;
use localavg_graph::analysis::{bfs_distances, view_is_tree, UNREACHED};
use localavg_graph::{EdgeId, Graph, GraphBuilder, NodeId};

/// The doubled construction of §C.4: two copies of a cluster-tree graph
/// plus a perfect matching joining each node to its twin (same cluster in
/// the other copy). Any maximal matching must eventually take almost all
/// cross edges, but within `k` rounds the indistinguishable cluster edges
/// can only be matched with probability o(1) — Theorem 17.
#[derive(Debug, Clone)]
pub struct DoubledGk {
    /// The doubled graph: nodes `0..n` are copy A, `n..2n` copy B.
    pub graph: Graph,
    /// Nodes per copy.
    pub n_base: usize,
    /// Edge ids of the cross perfect matching, indexed by base node.
    pub cross_edges: Vec<EdgeId>,
}

impl DoubledGk {
    /// Builds the doubled graph from a lifted cluster-tree graph.
    pub fn build(lg: &LiftedGk) -> DoubledGk {
        let g = lg.graph();
        let n = g.n();
        let mut doubled = GraphBuilder::with_edge_capacity(2 * n, 2 * g.m() + n);
        for (_, u, v) in g.edges() {
            doubled.add_edge(u, v).expect("copy A edge");
        }
        for (_, u, v) in g.edges() {
            doubled.add_edge(n + u, n + v).expect("copy B edge");
        }
        let mut cross_edges = Vec::with_capacity(n);
        for v in 0..n {
            cross_edges.push(doubled.add_edge(v, n + v).expect("cross edge"));
        }
        DoubledGk {
            graph: doubled.build(),
            n_base: n,
            cross_edges,
        }
    }

    /// The twin of a node.
    pub fn twin(&self, v: NodeId) -> NodeId {
        if v < self.n_base {
            v + self.n_base
        } else {
            v - self.n_base
        }
    }

    /// Fraction of cross edges present in a matching — the quantity
    /// Theorem 17 tracks (any maximal matching needs `(1-o(1))` of the
    /// `S(c0)`–`S(c0)'` cross edges).
    pub fn cross_fraction(&self, in_matching: &[bool]) -> f64 {
        let hits = self.cross_edges.iter().filter(|&&e| in_matching[e]).count();
        hits as f64 / self.cross_edges.len() as f64
    }
}

/// A radius-`k` tree view extracted as a standalone graph (the paper's
/// tree lower bound takes the view of a tree-like `S(c0)` node and
/// completes it into a tree instance).
#[derive(Debug, Clone)]
pub struct TreeView {
    /// The extracted tree.
    pub tree: Graph,
    /// Root (the image of the original center) — always node 0.
    pub root: NodeId,
    /// Map from tree nodes back to the original graph's nodes.
    pub original: Vec<NodeId>,
}

impl TreeView {
    /// Extracts the radius-`k` view of `center`, which must be tree-like.
    ///
    /// Returns `None` when the view contains a cycle.
    pub fn extract(g: &Graph, center: NodeId, k: usize) -> Option<TreeView> {
        if !view_is_tree(g, center, k) {
            return None;
        }
        let dist = bfs_distances(g, center, k);
        let mut original = Vec::new();
        let mut index = vec![usize::MAX; g.n()];
        for v in g.nodes() {
            if dist[v] != UNREACHED {
                index[v] = original.len();
                original.push(v);
            }
        }
        let mut builder = GraphBuilder::new(original.len());
        for (_, u, v) in g.edges() {
            if dist[u] == UNREACHED || dist[v] == UNREACHED {
                continue;
            }
            if dist[u] == k && dist[v] == k {
                continue; // excluded from the view (paper §C.1)
            }
            builder.add_edge(index[u], index[v]).expect("view edge");
        }
        let tree = builder.build();
        // Relabel so the root is node 0 (swap labels 0 and index[center]).
        let c = index[center];
        if c != 0 {
            // Rebuild with a swapped mapping for a clean root-0 invariant.
            let mut swap: Vec<usize> = (0..original.len()).collect();
            swap.swap(0, c);
            let mut relabeled = GraphBuilder::new(original.len());
            for (_, u, v) in tree.edges() {
                let su = swap.iter().position(|&x| x == u).expect("swapped");
                let sv = swap.iter().position(|&x| x == v).expect("swapped");
                relabeled.add_edge(su, sv).expect("relabel edge");
            }
            let relabeled = relabeled.build();
            let mut orig2 = original.clone();
            orig2.swap(0, c);
            return Some(TreeView {
                tree: relabeled,
                root: 0,
                original: orig2,
            });
        }
        Some(TreeView {
            tree,
            root: 0,
            original,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_graph::{BaseGraph, LiftedGk};
    use localavg_graph::rng::Rng;
    use localavg_graph::{analysis, gen};

    fn lifted(q: usize, seed: u64) -> LiftedGk {
        let base = BaseGraph::build(1, 4, 2_000_000).unwrap();
        let mut rng = Rng::seed_from(seed);
        LiftedGk::build(base, q, &mut rng)
    }

    #[test]
    fn doubled_structure() {
        let lg = lifted(2, 1);
        let d = DoubledGk::build(&lg);
        let n = lg.graph().n();
        assert_eq!(d.graph.n(), 2 * n);
        assert_eq!(d.graph.m(), 2 * lg.graph().m() + n);
        assert_eq!(d.twin(3), n + 3);
        assert_eq!(d.twin(n + 3), 3);
        // Degrees: every node gains exactly one cross edge.
        for v in 0..n {
            assert_eq!(d.graph.degree(v), lg.graph().degree(v) + 1);
        }
    }

    #[test]
    fn doubled_cross_fraction() {
        let lg = lifted(1, 2);
        let d = DoubledGk::build(&lg);
        let mut matching = vec![false; d.graph.m()];
        // The full cross matching is a perfect matching of the doubled graph.
        for &e in &d.cross_edges {
            matching[e] = true;
        }
        assert!(analysis::is_matching(&d.graph, &matching));
        assert!(analysis::is_maximal_matching(&d.graph, &matching));
        assert_eq!(d.cross_fraction(&matching), 1.0);
        matching[d.cross_edges[0]] = false;
        assert!(d.cross_fraction(&matching) < 1.0);
    }

    #[test]
    fn tree_view_of_a_tree_is_everything() {
        let g = gen::binary_tree(15);
        let tv = TreeView::extract(&g, 0, 3).expect("tree views are trees");
        assert_eq!(tv.tree.n(), 15);
        assert!(analysis::is_forest(&tv.tree));
        assert_eq!(tv.root, 0);
        assert_eq!(tv.original[0], 0);
    }

    #[test]
    fn tree_view_respects_radius() {
        let g = gen::path(11);
        let tv = TreeView::extract(&g, 5, 2).expect("path views are trees");
        assert_eq!(tv.tree.n(), 5); // nodes 3..=7
        assert!(analysis::is_connected(&tv.tree));
        assert_eq!(tv.original[tv.root], 5);
    }

    #[test]
    fn tree_view_rejects_cycles() {
        let g = gen::cycle(6);
        assert!(TreeView::extract(&g, 0, 3).is_none());
        assert!(TreeView::extract(&g, 0, 2).is_some());
    }

    #[test]
    fn tree_view_from_lifted_graph() {
        let lg = lifted(16, 3);
        let g = lg.graph();
        let v0 = lg
            .s0()
            .into_iter()
            .find(|&v| analysis::view_is_tree(g, v, 1))
            .expect("tree-like S(c0) node at q=16");
        let tv = TreeView::extract(g, v0, 1).expect("extract");
        assert_eq!(tv.tree.n(), 1 + g.degree(v0));
        assert!(analysis::is_forest(&tv.tree));
        assert_eq!(tv.tree.degree(tv.root), g.degree(v0));
    }
}
